"""T-PARALLEL -- the parallel execution engine vs serial scheduling.

The Figure 11 construction decomposes into ``C(k, 2) x attributes``
independent comparison runs; PR 2/PR 4 proved their protocol messages
schedule-independent, and the parallel engine finally *exploits* that
independence with real worker threads.  The win a deployment cares about
is wall-clock: protocol rounds of a distributed consortium spend their
time in flight, so the network simulates per-message link latency
(:attr:`ProtocolSuiteConfig.link_latency`) and the parallel schedule
overlaps those round trips across (attribute, pair) runs -- on multicore
hardware the GIL-releasing numpy steps overlap too, stacking both wins.

Headline measurements, persisted to ``BENCH_parallel.json`` (required
artifact of ``benchmarks/check_gates.py``):

* **Construction** at k=4 sites x 4 mixed attributes (2 numeric,
  2 alphanumeric; 24 comparison runs, 64 in-flight messages):
  ``construction_schedule="parallel"`` with ``max_workers=4`` must beat
  sequential by >= 2x (the acceptance gate; measured ~3x on one core --
  pure latency overlap -- and more on multicore).  ``max_workers=2``
  rides along with a regression bar.
* **Batch serving**: :meth:`SessionBatch.run_many_parallel` over 8
  datasets with 4 workers vs :meth:`run_many`, same >= wall-clock shape.

Every timing is trusted only after the outputs are asserted
bit-identical across policies -- the determinism contract is what makes
the parallel number *free* rather than a correctness trade.
"""

from __future__ import annotations

import os
import time

from repro.apps.sessions import SessionBatch
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.types import AttributeType

#: Acceptance gate for parallel(w=4) construction vs sequential; CI
#: relaxes via env on noisy shared runners.
SPEEDUP_BAR = float(os.environ.get("PARALLEL_SPEEDUP_BAR", "2.0"))
#: Regression bar for the w=2 point (ideal ~1.9x; keep generous margin).
W2_BAR = float(os.environ.get("PARALLEL_W2_BAR", "1.2"))
#: Bar for concurrent whole-session serving (8 sessions over 4 workers).
BATCH_BAR = float(os.environ.get("PARALLEL_BATCH_BAR", "1.8"))
#: Simulated per-message link delay; latency-bound by design so the
#: measurement is stable on loaded single-core runners.
LINK_LATENCY = float(os.environ.get("PARALLEL_LINK_LATENCY_MS", "8")) / 1e3
BATCH_LATENCY = float(os.environ.get("PARALLEL_BATCH_LATENCY_MS", "5")) / 1e3

SITES = ("A", "B", "C", "D")
SCHEMA = [
    AttributeSpec("age", AttributeType.NUMERIC, precision=0),
    AttributeSpec("score", AttributeType.NUMERIC, precision=2),
    AttributeSpec("dna", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET),
    AttributeSpec("plate", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET),
]


def _construction_partitions(rows_per_site: int = 10):
    def row(i: int):
        return [
            (i * 37) % 90,
            ((i * 91) % 700) / 100.0,
            "ACGT"[(i % 4) :] * 2 + "AC",
            "TGCA"[(i % 3) :] * 2,
        ]

    return {
        site: DataMatrix(
            SCHEMA,
            [row(i) for i in range(s * rows_per_site, (s + 1) * rows_per_site)],
        )
        for s, site in enumerate(SITES)
    }


def _construction_config(policy: str, workers: int) -> SessionConfig:
    return SessionConfig(
        num_clusters=3,
        master_seed=31,
        max_workers=workers,
        suite=ProtocolSuiteConfig(
            construction_schedule=policy, link_latency=LINK_LATENCY
        ),
    )


def _time_construction(batch: SessionBatch, partitions, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        session = batch.session(partitions)
        start = time.perf_counter()
        session.execute_protocol()
        best = min(best, time.perf_counter() - start)
    return best


def test_parallel_construction_speedup(table, bench_store):
    """>= 2x wall-clock for parallel(w=4) construction at k=4, bit-exact."""
    partitions = _construction_partitions()
    variants = {
        ("sequential", 1): None,
        ("parallel", 2): None,
        ("parallel", 4): None,
    }

    # Determinism first: no timing is trusted until every policy lands
    # on identical bits (matrices and traffic totals).
    reference = None
    for policy, workers in variants:
        session = SessionBatch(
            _construction_config(policy, workers), list(SITES)
        ).session(partitions)
        session.execute_protocol()
        state = (
            session.final_matrix().condensed.tobytes(),
            {
                spec.name: session.third_party.attribute_matrix(spec.name)
                .condensed.tobytes()
                for spec in SCHEMA
            },
            session.total_bytes(),
        )
        if reference is None:
            reference = state
        assert state == reference, f"{policy}(w={workers}) diverged"

    for policy, workers in variants:
        batch = SessionBatch(_construction_config(policy, workers), list(SITES))
        variants[(policy, workers)] = _time_construction(batch, partitions)

    sequential = variants[("sequential", 1)]
    speedup_w4 = sequential / variants[("parallel", 4)]
    speedup_w2 = sequential / variants[("parallel", 2)]
    messages = 4 * len(SITES) + 2 * 6 * len(SCHEMA)  # locals + (masked, block) per pair
    table(
        f"T-PARALLEL: k=4 construction, 4 mixed attributes, "
        f"{LINK_LATENCY * 1e3:.0f} ms link latency",
        [
            ("sequential", f"{sequential * 1e3:.0f} ms", "1.0x"),
            (
                "parallel w=2",
                f"{variants[('parallel', 2)] * 1e3:.0f} ms",
                f"{speedup_w2:.1f}x (gate {W2_BAR}x)",
            ),
            (
                "parallel w=4",
                f"{variants[('parallel', 4)] * 1e3:.0f} ms",
                f"{speedup_w4:.1f}x (gate {SPEEDUP_BAR}x)",
            ),
        ],
        ("schedule", "construction", "speedup"),
    )
    bench_store(
        "parallel",
        {
            "construction_k4": {
                "sites": len(SITES),
                "attributes": len(SCHEMA),
                "scheduled_messages": messages,
                "link_latency_ms": LINK_LATENCY * 1e3,
                "sequential_ms": round(sequential * 1e3, 1),
                "parallel_w2_ms": round(variants[("parallel", 2)] * 1e3, 1),
                "parallel_w4_ms": round(variants[("parallel", 4)] * 1e3, 1),
                "speedup_w2": {"speedup": round(speedup_w2, 2), "gate": W2_BAR},
                "speedup": round(speedup_w4, 2),
                "gate": SPEEDUP_BAR,
            }
        },
    )
    assert speedup_w4 >= SPEEDUP_BAR, (
        f"parallel(w=4) construction speedup {speedup_w4:.1f}x below the "
        f"{SPEEDUP_BAR}x bar"
    )
    assert speedup_w2 >= W2_BAR, (
        f"parallel(w=2) construction speedup {speedup_w2:.1f}x below the "
        f"{W2_BAR}x bar"
    )


def test_run_many_parallel_throughput(table, bench_store):
    """Concurrent whole-session serving over one consortium's pool."""
    schema = [AttributeSpec("v", AttributeType.NUMERIC, precision=2)]
    config = SessionConfig(
        num_clusters=2,
        master_seed=7,
        max_workers=4,
        suite=ProtocolSuiteConfig(link_latency=BATCH_LATENCY),
    )
    batch = SessionBatch(config, ["A", "B"])
    datasets = [
        {
            "A": DataMatrix(schema, [[((i * s) % 97) / 4.0] for i in range(10)]),
            "B": DataMatrix(schema, [[((i * s + 13) % 89) / 4.0] for i in range(10)]),
        }
        for s in range(1, 9)
    ]

    sequential_results = batch.run_many(datasets)
    parallel_results = batch.run_many_parallel(datasets)
    assert [r.to_payload() for r in parallel_results] == [
        r.to_payload() for r in sequential_results
    ], "parallel serving diverged from run_many"

    sequential_time = float("inf")
    parallel_time = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        batch.run_many(datasets)
        sequential_time = min(sequential_time, time.perf_counter() - start)
        start = time.perf_counter()
        batch.run_many_parallel(datasets)
        parallel_time = min(parallel_time, time.perf_counter() - start)

    speedup = sequential_time / parallel_time
    throughput = len(datasets) / parallel_time
    table(
        f"T-PARALLEL: batch serving, 8 sessions x 2 sites, "
        f"{BATCH_LATENCY * 1e3:.0f} ms link latency, 4 workers",
        [
            ("run_many (serial)", f"{sequential_time * 1e3:.0f} ms", "1.0x"),
            (
                "run_many_parallel",
                f"{parallel_time * 1e3:.0f} ms",
                f"{speedup:.1f}x (gate {BATCH_BAR}x)",
            ),
            ("throughput", f"{throughput:.0f} sessions/s", ""),
        ],
        ("path", "8 sessions", "speedup"),
    )
    bench_store(
        "parallel",
        {
            "batch_serving": {
                "sessions": len(datasets),
                "workers": 4,
                "link_latency_ms": BATCH_LATENCY * 1e3,
                "run_many_ms": round(sequential_time * 1e3, 1),
                "run_many_parallel_ms": round(parallel_time * 1e3, 1),
                "sessions_per_second": round(throughput, 1),
                "speedup": round(speedup, 2),
                "gate": BATCH_BAR,
            }
        },
    )
    assert speedup >= BATCH_BAR, (
        f"run_many_parallel speedup {speedup:.1f}x below the {BATCH_BAR}x bar"
    )
