"""T-FREQ -- the frequency-analysis attack and its mitigation (Section 4.1).

Paper: limited value ranges + batch processing let the TP "infer input
values of site DHK"; the prescribed fix is "omitting batch processing
... and using unique random numbers for each object pair".  We run the
attack in both modes over a domain-size sweep and report exact-recovery
rates: high under batch+small-domain, collapsing under the mitigation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.frequency import FrequencyAttack
from repro.core.numeric import (
    initiator_mask_batch,
    initiator_mask_per_pair,
    responder_matrix_batch,
    responder_matrix_per_pair,
)
from repro.crypto.prng import make_prng

MASK_BITS = 64


def _residuals(values_j, values_k, batch: bool, seed: int):
    rng_jk = make_prng(f"jk{seed}")
    rng_jt = make_prng(f"jt{seed}")
    if batch:
        masked = initiator_mask_batch(values_j, rng_jk, rng_jt, MASK_BITS)
        matrix = responder_matrix_batch(values_k, masked, make_prng(f"jk{seed}"))
    else:
        masked = initiator_mask_per_pair(
            values_j, len(values_k), rng_jk, rng_jt, MASK_BITS
        )
        matrix = responder_matrix_per_pair(values_k, masked, make_prng(f"jk{seed}"))
    tp = make_prng(f"jt{seed}")
    residuals = []
    for row in matrix:
        residuals.append([entry - tp.next_bits(MASK_BITS) for entry in row])
        if batch:
            tp.reset()
    return np.asarray(residuals, dtype=object).astype(np.int64)


def _skewed_draw(rng: np.random.Generator, domain: int, size: int) -> list[int]:
    """Zipf-skewed values -- the 'enough statistics' the paper posits."""
    weights = np.array([1.0 / (v + 1) ** 1.3 for v in range(domain)])
    weights /= weights.sum()
    return [int(v) for v in rng.choice(domain, size=size, p=weights)]


def _prior(domain: int) -> dict[int, float]:
    return {v: 1.0 / (v + 1) ** 1.3 for v in range(domain)}


def _recovery_rate(domain: int, batch: bool, trials: int = 8) -> float:
    """Mean exact-recovery rate of DHK's vector by a TP that knows the
    public domain bounds and the value distribution (frequency prior)."""
    rng = np.random.default_rng(domain * 2 + int(batch))
    rates = []
    for trial in range(trials):
        values_j = _skewed_draw(rng, domain, 6)
        values_k = _skewed_draw(rng, domain, 12)
        residuals = _residuals(values_j, values_k, batch, seed=trial)
        outcome = FrequencyAttack(0, domain - 1, prior=_prior(domain)).run(residuals)
        rates.append(outcome.exact_recovery_rate(values_k))
    return float(np.mean(rates))


def test_attack_succeeds_in_batch_mode_small_domain(table):
    rows = []
    for domain in (10, 50, 250):
        batch_rate = _recovery_rate(domain, batch=True)
        mitigated_rate = _recovery_rate(domain, batch=False)
        rows.append((domain, f"{batch_rate:.2f}", f"{mitigated_rate:.2f}"))
    table(
        "T-FREQ: exact recovery rate of DHK's private vector by TP",
        rows,
        ("domain size", "batch mode", "unique randoms"),
    )
    assert _recovery_rate(10, batch=True) > 0.9
    assert _recovery_rate(50, batch=True) > 0.9


def test_mitigation_defeats_attack():
    """Residual accuracy under the mitigation is what a prior-only
    guesser achieves (Zipf mass concentrates on small values); the
    column structure the attack exploits is gone."""
    assert _recovery_rate(10, batch=False) < 0.6
    assert _recovery_rate(50, batch=False) < 0.6
    assert _recovery_rate(250, batch=False) < 0.5


def test_mitigation_always_weakly_better():
    for domain in (10, 50):
        assert _recovery_rate(domain, batch=False) <= _recovery_rate(
            domain, batch=True
        )


def test_hypothesis_count_grows_with_domain(table):
    rng = np.random.default_rng(0)
    values_j = [int(v) for v in rng.integers(0, 10, size=4)]
    values_k = [int(v) for v in rng.integers(0, 10, size=6)]
    residuals = _residuals(values_j, values_k, batch=True, seed=0)
    rows = []
    counts = []
    for domain_high in (9, 99, 999):
        outcome = FrequencyAttack(0, domain_high).run(residuals)
        counts.append(outcome.surviving_hypotheses)
        rows.append((domain_high + 1, outcome.surviving_hypotheses))
    table(
        "T-FREQ: surviving hypotheses vs assumed domain size",
        rows,
        ("domain size", "surviving hypotheses"),
    )
    assert counts[0] <= counts[1] <= counts[2]


@pytest.mark.benchmark(group="freq-attack")
def test_bench_attack_run(benchmark):
    rng = np.random.default_rng(1)
    values_j = [int(v) for v in rng.integers(0, 20, size=6)]
    values_k = [int(v) for v in rng.integers(0, 20, size=8)]
    residuals = _residuals(values_j, values_k, batch=True, seed=9)
    attack = FrequencyAttack(0, 19)

    outcome = benchmark(attack.run, residuals)
    assert outcome.recovered is not None
