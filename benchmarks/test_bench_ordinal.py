"""X-ORD -- ordered & hierarchical categorical attributes (extension).

Section 4.3 leaves these "more complex distance functions" as future
work.  Both extensions are validated for exactness against cleartext
references and their communication shapes measured: ordinals ride the
numeric protocol (O(n^2+n) / O(m^2+mn)), taxonomy paths ride the
deterministic-encryption scheme (O(n * depth) per holder).
"""

from __future__ import annotations

import pytest

from repro.core.config import SessionConfig
from repro.core.session import ClusteringSession
from repro.crypto.detenc import DeterministicEncryptor
from repro.data.matrix import DataMatrix
from repro.data.partition import GlobalIndex
from repro.data.synthetic import categorical_column
from repro.distance.local import local_dissimilarity
from repro.ext.ordinal import OrdinalScale
from repro.ext.taxonomy import Taxonomy, third_party_taxonomy_matrix
from repro.network.serialization import serialized_size

SEVERITY = OrdinalScale(["none", "mild", "moderate", "severe", "critical"])

DISEASE_TAXONOMY = Taxonomy(
    {
        "disease": None,
        "viral": "disease",
        "influenza": "viral",
        "h5n1": "influenza",
        "h1n1": "influenza",
        "corona": "viral",
        "bacterial": "disease",
        "strep": "bacterial",
    }
)


def test_ordinal_exactness_through_numeric_protocol(table):
    values = categorical_column(14, SEVERITY.categories, seed=1)
    # Guarantee both extremes so span-normalisation aligns with Fig. 11.
    values[0], values[1] = "none", "critical"
    spec = SEVERITY.attribute_spec("severity")
    partitions = {
        "A": DataMatrix([spec], [[r] for r in SEVERITY.encode_column(values[:8])]),
        "B": DataMatrix([spec], [[r] for r in SEVERITY.encode_column(values[8:])]),
    }
    session = ClusteringSession(SessionConfig(num_clusters=2), partitions)
    reference = local_dissimilarity(values, SEVERITY.distance)
    exact = session.final_matrix().allclose(reference, atol=1e-12)
    table(
        "X-ORD: ordinal ranks through the unchanged numeric protocol",
        [("severity scale, 14 objects, 2 sites", exact)],
        ("workload", "private == cleartext reference"),
    )
    assert exact


def test_taxonomy_exactness(table):
    enc = DeterministicEncryptor(b"k" * 32)
    col_a = ["h5n1", "strep", "corona"]
    col_b = ["h1n1", "influenza"]
    columns = {
        "A": DISEASE_TAXONOMY.encrypt_column(enc, "dx", col_a),
        "B": DISEASE_TAXONOMY.encrypt_column(enc, "dx", col_b),
    }
    matrix = third_party_taxonomy_matrix(columns, GlobalIndex({"A": 3, "B": 2}))
    reference = local_dissimilarity(col_a + col_b, DISEASE_TAXONOMY.distance)
    exact = matrix.allclose(reference)
    table(
        "X-ORD: taxonomy path metric from ciphertext prefixes",
        [("disease taxonomy, 5 objects, 2 sites", exact)],
        ("workload", "private == cleartext reference"),
    )
    assert exact


def test_taxonomy_cost_linear_in_n_and_depth(table):
    enc = DeterministicEncryptor(b"k" * 32)
    rows = []
    for n in (8, 16, 32):
        column = DISEASE_TAXONOMY.encrypt_column(enc, "dx", ["h5n1"] * n)
        rows.append((n, 4, serialized_size(column)))
    table(
        "X-ORD: taxonomy holder upload (O(n * depth), depth 4)",
        rows,
        ("objects", "depth", "bytes"),
    )
    sizes = [r[2] for r in rows]
    assert abs(sizes[1] / sizes[0] - 2.0) < 0.2
    assert abs(sizes[2] / sizes[1] - 2.0) < 0.2


def test_flat_categorical_is_special_case():
    """A depth-1 taxonomy reproduces the paper's 0/1 metric exactly --
    the extension strictly generalises Section 4.3."""
    flat = Taxonomy({"red": None, "blue": None, "green": None})
    assert flat.distance("red", "red") == 0
    assert flat.distance("red", "blue") == 2  # path metric scale: 2 per mismatch
    # Normalising by the max (2) recovers the paper's 0/1 distance.
    enc = DeterministicEncryptor(b"k" * 32)
    columns = {
        "A": flat.encrypt_column(enc, "c", ["red", "blue"]),
        "B": flat.encrypt_column(enc, "c", ["red"]),
    }
    matrix = third_party_taxonomy_matrix(columns, GlobalIndex({"A": 2, "B": 1}))
    normalized = matrix.normalized()
    assert normalized[1, 0] == 1.0
    assert normalized[2, 0] == 0.0


@pytest.mark.benchmark(group="ordinal-taxonomy")
def test_bench_taxonomy_matrix(benchmark):
    enc = DeterministicEncryptor(b"k" * 32)
    values = categorical_column(
        40, ["h5n1", "h1n1", "corona", "strep", "influenza"], seed=2
    )
    columns = {
        "A": DISEASE_TAXONOMY.encrypt_column(enc, "dx", values[:20]),
        "B": DISEASE_TAXONOMY.encrypt_column(enc, "dx", values[20:]),
    }
    index = GlobalIndex({"A": 20, "B": 20})

    matrix = benchmark(third_party_taxonomy_matrix, columns, index)
    assert matrix.num_objects == 40


@pytest.mark.benchmark(group="ordinal-taxonomy")
def test_bench_ordinal_session(benchmark):
    values = categorical_column(24, SEVERITY.categories, seed=3)
    spec = SEVERITY.attribute_spec("severity")
    partitions = {
        "A": DataMatrix([spec], [[r] for r in SEVERITY.encode_column(values[:12])]),
        "B": DataMatrix([spec], [[r] for r in SEVERITY.encode_column(values[12:])]),
    }

    def run():
        session = ClusteringSession(SessionConfig(num_clusters=2), partitions)
        return session.final_matrix()

    matrix = benchmark(run)
    assert matrix.num_objects == 24
