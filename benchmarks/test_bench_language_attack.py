"""X-LANG -- the language-statistics attack (extension experiment).

Section 6 of the paper names "possible attacks using statistics of the
input language" against the alphanumeric protocol as open future work.
This experiment (a) realises the attack against the published Figure 8
masking, quantifying recovery vs corpus size, and (b) shows the
``fresh_string_masks`` extension drives it to chance at identical
communication cost.
"""

from __future__ import annotations

import pytest

from repro.attacks.language import LanguageStatisticsAttack
from repro.core.alphanumeric import (
    initiator_mask_strings,
    initiator_mask_strings_fresh,
)
from repro.crypto.prng import make_prng
from repro.data.alphabet import DNA_ALPHABET
from repro.data.synthetic import skewed_strings
from repro.network.serialization import serialized_size

SKEW = [0.55, 0.25, 0.12, 0.08]
PRIOR = dict(zip("ACGT", SKEW))
LENGTH = 24


def _recovery(num_strings: int, fresh: bool, seed: int = 0) -> float:
    corpus = skewed_strings(num_strings, LENGTH, SKEW, seed=seed)
    rng = make_prng(f"mask{seed}")
    if fresh:
        masked = initiator_mask_strings_fresh(corpus, DNA_ALPHABET, rng)
    else:
        masked = initiator_mask_strings(corpus, DNA_ALPHABET, rng)
    attack = LanguageStatisticsAttack(DNA_ALPHABET, PRIOR)
    return attack.run(masked).character_recovery_rate(corpus)


def test_attack_vs_corpus_size(table):
    rows = []
    for num in (16, 32, 64, 128):
        paper = _recovery(num, fresh=False)
        fresh = _recovery(num, fresh=True)
        rows.append((num, f"{paper:.2f}", f"{fresh:.2f}"))
    table(
        "X-LANG: character recovery rate (skewed DNA, shared vs fresh masks)",
        rows,
        ("corpus size", "paper scheme (Fig. 8)", "fresh masks"),
    )
    assert _recovery(128, fresh=False) > 0.9
    assert _recovery(128, fresh=True) < 0.55


def test_attack_needs_statistics(table):
    """Uniform language -> attack at chance even on the paper scheme;
    the paper's caveat that the analysis 'depends heavily on the
    intrinsic properties of the language' is on point."""
    corpus = skewed_strings(128, LENGTH, [0.25] * 4, seed=3)
    masked = initiator_mask_strings(corpus, DNA_ALPHABET, make_prng("u"))
    attack = LanguageStatisticsAttack(DNA_ALPHABET, dict(zip("ACGT", [0.25] * 4)))
    rate = attack.run(masked).character_recovery_rate(corpus)
    table(
        "X-LANG: uniform-language control",
        [("uniform DNA, 128 strings", f"{rate:.2f}")],
        ("workload", "recovery rate"),
    )
    assert rate < 0.6


def test_defence_is_free_on_the_wire(table):
    corpus = skewed_strings(64, LENGTH, SKEW, seed=4)
    paper_bytes = serialized_size(
        initiator_mask_strings(corpus, DNA_ALPHABET, make_prng(1))
    )
    fresh_bytes = serialized_size(
        initiator_mask_strings_fresh(corpus, DNA_ALPHABET, make_prng(1))
    )
    table(
        "X-LANG: wire cost of the defence",
        [(paper_bytes, fresh_bytes)],
        ("paper scheme bytes", "fresh masks bytes"),
    )
    assert paper_bytes == fresh_bytes


@pytest.mark.benchmark(group="language-attack")
def test_bench_attack(benchmark):
    corpus = skewed_strings(64, LENGTH, SKEW, seed=5)
    masked = initiator_mask_strings(corpus, DNA_ALPHABET, make_prng(2))
    attack = LanguageStatisticsAttack(DNA_ALPHABET, PRIOR)

    outcome = benchmark(attack.run, masked)
    assert outcome.character_recovery_rate(corpus) > 0.8
