"""T-NUM -- numeric protocol communication costs (paper Section 4.1).

Paper claims: initiator DHJ transmits O(n^2 + n) (local dissimilarity
matrix + masked vector); responder DHK transmits O(m^2 + m*n) (local
matrix + comparison matrix).  We measure real wire bytes over a size
sweep and assert the log-log slopes.
"""

from __future__ import annotations

import pytest

from repro.analysis.comm_costs import (
    CostModel,
    fit_loglog_slope,
    measure_numeric_protocol,
)

SIZES = [8, 16, 32, 64, 128]


@pytest.fixture(scope="module")
def sweep():
    return {n: measure_numeric_protocol(n, n) for n in SIZES}


def test_initiator_local_matrix_quadratic(sweep, table):
    costs = [sweep[n]["initiator_local_matrix"] for n in SIZES]
    slope = fit_loglog_slope(SIZES, costs)
    model = CostModel()
    table(
        "T-NUM: DHJ local dissimilarity matrix (O(n^2) term)",
        [
            (n, c, int(model.local_matrix_entries(n) * model.float_bytes))
            for n, c in zip(SIZES, costs)
        ],
        ("n", "measured bytes", "model bytes"),
    )
    assert 1.8 < slope < 2.2, f"slope {slope}"


def test_initiator_masked_vector_linear(table):
    results = {n: measure_numeric_protocol(n, 8) for n in SIZES}
    costs = [results[n]["initiator_masked"] for n in SIZES]
    slope = fit_loglog_slope(SIZES, costs)
    table(
        "T-NUM: DHJ masked vector (O(n) term)",
        [(n, c) for n, c in zip(SIZES, costs)],
        ("n", "measured bytes"),
    )
    assert 0.75 < slope < 1.25, f"slope {slope}"


def test_responder_matrix_bilinear(sweep, table):
    costs = [sweep[n]["responder_matrix"] for n in SIZES]
    slope = fit_loglog_slope(SIZES, costs)
    table(
        "T-NUM: DHK comparison matrix (O(m*n) term, m=n sweep)",
        [(n, c) for n, c in zip(SIZES, costs)],
        ("n=m", "measured bytes"),
    )
    assert 1.8 < slope < 2.2, f"slope {slope}"


def test_responder_matrix_linear_in_each_factor():
    """Fix n, sweep m: the m*n term must become linear."""
    ms = [8, 16, 32, 64]
    costs = [measure_numeric_protocol(8, m)["responder_matrix"] for m in ms]
    slope = fit_loglog_slope(ms, costs)
    assert 0.8 < slope < 1.2, f"slope {slope}"


def test_per_pair_mitigation_cost(table):
    """The Section 4.1 mitigation turns DHJ's O(n) upload into O(m*n)."""
    rows = []
    for n in [8, 16, 32]:
        batch = measure_numeric_protocol(n, n, batch=True)["initiator_masked"]
        per_pair = measure_numeric_protocol(n, n, batch=False)["initiator_masked"]
        rows.append((n, batch, per_pair, f"{per_pair / batch:.1f}x"))
    table(
        "T-NUM: batch vs unique-randoms mitigation (DHJ upload)",
        rows,
        ("n=m", "batch bytes", "per-pair bytes", "factor"),
    )
    n_last, batch_last, per_pair_last, _ = rows[-1]
    assert per_pair_last > (n_last / 2) * batch_last / 2


@pytest.mark.benchmark(group="comm-numeric")
def test_bench_numeric_protocol_run(benchmark):
    result = benchmark(measure_numeric_protocol, 32, 32)
    assert result["grand_total"] > 0
