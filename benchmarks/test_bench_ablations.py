"""X-ABLATE -- ablations over the protocol's design knobs.

The paper fixes several engineering choices implicitly; DESIGN.md calls
them out and this module measures each:

* **mask width** -- the additive-mask bit width trades statistical
  hiding margin against wire bytes,
* **PRNG kind** -- the paper assumes "a high quality pseudo-random
  number generator" without costing it; we compare the hash DRBG against
  fast non-cryptographic generators at equal byte counts,
* **secure channels** -- fixed 48 B/message sealing overhead, amortised
  by batching.
"""

from __future__ import annotations

import pytest

from repro.analysis.comm_costs import measure_numeric_protocol
from repro.core.numeric import initiator_mask_batch
from repro.crypto.prng import available_kinds, make_prng

N = 32


def test_mask_width_vs_bytes(table):
    rows = []
    costs = {}
    for bits in (16, 64, 256, 1024):
        result = measure_numeric_protocol(N, N, mask_bits=bits)
        costs[bits] = result["initiator_masked"]
        rows.append((bits, result["initiator_masked"], result["responder_matrix"]))
    table(
        "X-ABLATE: mask width vs wire bytes (n=m=32)",
        rows,
        ("mask bits", "DHJ masked vector B", "DHK matrix B"),
    )
    # Beyond the value magnitude, bytes grow ~linearly with mask width.
    assert costs[1024] > 3 * costs[256] / 2
    assert costs[64] < costs[256] < costs[1024]


def test_mask_width_correctness_insensitive():
    """Results are identical at every width -- the knob is pure privacy
    margin, never accuracy."""
    reference = None
    for bits in (16, 64, 256):
        result = measure_numeric_protocol(8, 8, mask_bits=bits)
        grand = result["initiator_local_matrix"] + result["responder_local_matrix"]
        if reference is None:
            reference = grand
        # Local matrices (actual distances) identical across widths.
        assert grand == reference


def test_prng_kind_equal_bytes(table):
    rows = []
    byte_counts = set()
    for kind in available_kinds():
        result = measure_numeric_protocol(16, 16, prng_kind=kind, seed=1)
        rows.append((kind, result["grand_total"]))
        byte_counts.add(result["responder_local_matrix"])
    table(
        "X-ABLATE: PRNG kind vs total bytes (content differs, shape equal)",
        rows,
        ("prng", "total bytes"),
    )
    # Local matrices are mask-free, hence byte-identical across kinds.
    assert len(byte_counts) == 1


def test_secure_channel_overhead_amortises(table):
    rows = []
    overheads = []
    for n in (8, 32, 128):
        plain = measure_numeric_protocol(n, n, secure=False)["grand_total"]
        sealed = measure_numeric_protocol(n, n, secure=True)["grand_total"]
        overhead = (sealed - plain) / plain
        overheads.append(overhead)
        rows.append((n, plain, sealed, f"{overhead * 100:.1f}%"))
    table(
        "X-ABLATE: sealing overhead amortisation",
        rows,
        ("n=m", "insecure B", "secured B", "overhead"),
    )
    assert overheads[-1] < overheads[0]
    assert overheads[-1] < 0.05


@pytest.mark.benchmark(group="ablate-prng")
@pytest.mark.parametrize("kind", available_kinds())
def test_bench_masking_throughput_by_prng(benchmark, kind):
    values = list(range(256))
    rng_jk = make_prng(1, kind)
    rng_jt = make_prng(2, kind)

    def run():
        rng_jk.reset()
        rng_jt.reset()
        return initiator_mask_batch(values, rng_jk, rng_jt, 64)

    masked = benchmark(run)
    assert len(masked) == 256


@pytest.mark.benchmark(group="ablate-mask-width")
@pytest.mark.parametrize("bits", [16, 64, 1024])
def test_bench_masking_throughput_by_width(benchmark, bits):
    values = list(range(256))
    rng_jk = make_prng(1)
    rng_jt = make_prng(2)

    def run():
        rng_jk.reset()
        rng_jt.reset()
        return initiator_mask_batch(values, rng_jk, rng_jt, bits)

    masked = benchmark(run)
    assert len(masked) == 256
