"""T-STORAGE -- the sharded condensed-matrix backends at scale.

The storage tentpole's claim is twofold: (1) the float64 memmap backend
is *bit-identical* to the in-memory default -- same dendrograms, same
medoids, digest for digest -- and (2) it decouples peak RSS from the
triangle size, so clustering runs at object counts whose condensed
matrix could never sit in RAM.  This bench runs the synthetic-scale
probe (:mod:`repro.apps.storage_probe`) in subprocesses (one workload
per process, so ``ru_maxrss`` measures exactly that workload) for both
scenarios on both float64 backends, asserts digest equality and the
RSS ceiling, and persists the numbers to ``BENCH_storage.json``.

Scale knobs: ``STORAGE_BENCH_N`` (default 2000 keeps the tier-1 suite
fast) and ``STORAGE_RSS_FLOOR_MB`` (the interpreter+numpy baseline CI
can relax).  Entries persist keyed by ``n`` so a one-time acceptance
run at n=50,000 records alongside -- not instead of -- the everyday
numbers; ``check_gates.py`` re-validates every persisted RSS ceiling.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

STORAGE_BENCH_N = int(os.environ.get("STORAGE_BENCH_N", "2000"))
#: Process floor: interpreter + numpy/scipy imports + probe bookkeeping.
#: Measured ~90 MB locally; shared CI runners pad their allocators.
RSS_FLOOR_MB = float(os.environ.get("STORAGE_RSS_FLOOR_MB", "700"))
#: Shard-block LRU budget the memmap probes run under.
CACHE_BYTES = 256 << 20


def _triangle_mb(n: int) -> float:
    return n * (n - 1) / 2 * 8 / (1 << 20)


def rss_cap_mb(scenario: str, n: int) -> float:
    """The ceiling a memmap run must stay under.

    PAM streams everything, so its cap is *well below* the triangle:
    the block cache plus panel scratch.  Agglomerative keeps its working
    triangle cache-resident by design (refaulting the working set every
    merge is pathological), so its honest cap is ~1.5x the triangle --
    the win over dense is the absent second square materialisation, not
    the working set itself.
    """
    triangle = _triangle_mb(n)
    if scenario == "pam":
        return RSS_FLOOR_MB + CACHE_BYTES / (1 << 20) + 0.2 * triangle
    return RSS_FLOOR_MB + 1.5 * triangle


def _probe(scenario: str, backend: str, n: int, tmp_path) -> dict:
    report_path = os.path.join(str(tmp_path), f"{scenario}-{backend}.json")
    argv = [
        sys.executable,
        "-m",
        "repro.apps.storage_probe",
        "--scenario",
        scenario,
        "--n",
        str(n),
        "--backend",
        backend,
        "--k",
        "4",
        "--json-out",
        report_path,
    ]
    if backend == "memmap":
        argv += ["--cache-bytes", str(CACHE_BYTES), "--store-dir", str(tmp_path)]
    completed = subprocess.run(
        argv,
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    assert completed.returncode == 0, completed.stderr
    with open(report_path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def test_storage_backends_at_scale(tmp_path, table, bench_store):
    """Digest-identical float64 backends; memmap RSS under its ceiling."""
    n = STORAGE_BENCH_N
    #: Above this, the in-memory reference run itself needs the full
    #: triangle in RAM -- the regime the backend exists to escape -- so
    #: acceptance-scale runs record without the cross-backend digest.
    cross_check = n <= 10_000
    entries: dict[str, dict] = {}
    rows = []
    for scenario in ("agglomerative", "pam"):
        report = _probe(scenario, "memmap", n, tmp_path)
        cap = round(rss_cap_mb(scenario, n), 1)
        assert report["peak_rss_mb"] <= cap, (
            f"{scenario} memmap RSS {report['peak_rss_mb']} MB "
            f"over the {cap} MB ceiling"
        )
        if cross_check:
            reference = _probe(scenario, "memory", n, tmp_path)
            assert report["digest"] == reference["digest"], (
                f"{scenario}: memmap diverged from the in-memory reference"
            )
            rows.append(
                (
                    scenario,
                    "memory",
                    reference["seconds"],
                    reference["peak_rss_mb"],
                    "-",
                )
            )
        entries[f"{scenario}_n{n}"] = {
            "n": n,
            "backend": "memmap",
            "seconds": report["seconds"],
            "fill_seconds": report["fill_seconds"],
            "cluster_seconds": report["cluster_seconds"],
            "peak_rss_mb": report["peak_rss_mb"],
            "rss_cap_mb": cap,
            "digest": report["digest"],
            "digest_checked": cross_check,
        }
        rows.append(
            (scenario, "memmap", report["seconds"], report["peak_rss_mb"], cap)
        )
    table(
        f"condensed storage backends, n={n}",
        rows,
        ("scenario", "backend", "seconds", "peak RSS (MB)", "cap (MB)"),
    )
    bench_store("storage", entries)


def test_float32_backend_halves_storage(tmp_path, table, bench_store):
    """The float32 backend is the storage/precision trade: same probe,
    half the bytes per entry, digests allowed to differ."""
    n = min(STORAGE_BENCH_N, 2000)
    report = _probe("pam", "float32", n, tmp_path)
    assert report["backend"] == "float32"
    bench_store(
        "storage",
        {
            f"pam_float32_n{n}": {
                "n": n,
                "backend": "float32",
                "seconds": report["seconds"],
                "peak_rss_mb": report["peak_rss_mb"],
            }
        },
    )
    table(
        f"float32 backend, n={n}",
        [("pam", "float32", report["seconds"], report["peak_rss_mb"])],
        ("scenario", "backend", "seconds", "peak RSS (MB)"),
    )
