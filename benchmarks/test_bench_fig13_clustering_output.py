"""FIG13 -- membership-list publication (paper Figure 13).

Runs the full three-site session on the engineered dataset and checks
the published table matches the paper's: membership lists only,
site-qualified ids, no distances leaked.
"""

from __future__ import annotations

import pytest

from repro.core.config import SessionConfig
from repro.core.session import ClusteringSession
from repro.data.datasets import figure13_toy

EXPECTED_MEMBERSHIP = {
    frozenset({"A1", "A3", "B4", "C3"}),
    frozenset({"B2", "B3", "C1", "C2"}),
    frozenset({"A2", "B1"}),
}


def test_figure13_membership_reproduced(table):
    ds = figure13_toy()
    session = ClusteringSession(SessionConfig(num_clusters=3), ds.partitions)
    result = session.run()
    published = {
        frozenset(
            f"{m.site}{m.local_id + 1}" for m in cluster.members
        )  # 1-based, as printed in the paper
        for cluster in result.clusters
    }
    rows = [
        (f"Cluster{c.cluster_id + 1}", c.format_members())
        for c in result.clusters
    ]
    table("FIG13: published clustering result", rows, ("cluster", "members"))
    assert published == EXPECTED_MEMBERSHIP


def test_publication_contains_no_distances():
    """Section 5: dissimilarity matrices stay secret; the published
    payload carries memberships and aggregate quality only."""
    ds = figure13_toy()
    session = ClusteringSession(SessionConfig(num_clusters=3), ds.partitions)
    result = session.run()
    payload = result.to_payload()
    assert set(payload) == {"clusters", "quality", "linkage", "num_objects"}
    # quality is per-cluster aggregate, not pairwise data
    assert len(payload["quality"]) == len(payload["clusters"])


@pytest.mark.benchmark(group="fig13-session")
def test_bench_full_session(benchmark):
    ds = figure13_toy()

    def run():
        session = ClusteringSession(
            SessionConfig(num_clusters=3), ds.partitions
        )
        return session.run()

    result = benchmark(run)
    assert len(result.clusters) == 3
