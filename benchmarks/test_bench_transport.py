"""T-TRANSPORT -- the throughput-grade transport stack vs the seed.

PR 1 vectorized the protocol arithmetic; after it, a sealed session's
runtime lives in the transport: keystream generation (one ``hmac.new``
per 32 bytes in the seed), the per-byte XOR, paying the whole keystream
*twice* per message (``seal`` then an immediate in-process ``open``),
and the per-element integer wire codec.  This module measures the
rewritten stack against the seed implementations preserved in
:mod:`repro.crypto.reference`:

* **sealed transport** -- what ``Channel.transmit`` pays per message.
  Seed: scalar ``seal`` + scalar ``open``.  New: one shared-keystream
  ``transmit_roundtrip``.  The acceptance bar is >= 5x here, with the
  wire bytes asserted byte-identical.
* **raw seal** -- one-sided sealing throughput (midstate keystream +
  numpy XOR vs ``hmac.new`` + per-byte XOR), reported alongside.
* **end-to-end session** -- a sealed-channel clustering workload run on
  both transports via :class:`repro.apps.sessions.SessionBatch` (DH
  setup amortised out of the comparison), with every frame of every
  link compared byte for byte before the speedup is asserted.

Headline numbers persist to ``BENCH_transport.json`` (uploaded as a CI
artifact) to start the perf trajectory.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.apps.sessions import SessionBatch
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.crypto.prng import make_prng
from repro.crypto.reference import ScalarSymmetricCipher, scalar_transport
from repro.crypto.sym import SymmetricCipher
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.network.channel import Eavesdropper
from repro.network.serialization import deserialize, serialize
from repro.types import AttributeType

KEY = b"\x07" * 32
MESSAGE_BYTES = 1 << 18  # 256 KiB: the scale of an O(n^2) protocol payload

#: The acceptance bar is 5x on an idle machine (measured ~6-7x for the
#: sealed transport).  Wall-clock asserts flake on contended shared
#: runners, so CI lowers the gates via env vars instead of turning red
#: on timing noise; local/acceptance runs keep the full bars.
SPEEDUP_BAR = float(os.environ.get("TRANSPORT_SPEEDUP_BAR", "5.0"))
SESSION_BAR = float(os.environ.get("TRANSPORT_SESSION_BAR", "1.3"))


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _message() -> bytes:
    return bytes(i * 31 % 256 for i in range(MESSAGE_BYTES))


def test_sealed_transport_throughput(table, bench_store):
    """>= 5x on the per-message cost of a secure channel, bytes identical."""
    message = _message()
    fast = SymmetricCipher(KEY)
    seed = ScalarSymmetricCipher(KEY)

    assert fast.seal(message, make_prng(1)) == seed.seal(message, make_prng(1))
    wire, opened = fast.transmit_roundtrip(message, make_prng(2))
    assert wire == seed.seal(message, make_prng(2)) and opened == message

    seed_wire = seed.seal(message, make_prng(3))
    seed_time = _best_of(lambda: (seed.seal(message, make_prng(3)), seed.open(seed_wire)))
    fast_time = _best_of(lambda: fast.transmit_roundtrip(message, make_prng(3)))
    seal_seed_time = _best_of(lambda: seed.seal(message, make_prng(4)), repeats=2)
    seal_fast_time = _best_of(lambda: fast.seal(message, make_prng(4)))

    transport_speedup = seed_time / fast_time
    seal_speedup = seal_seed_time / seal_fast_time
    mib = MESSAGE_BYTES / (1 << 20)
    table(
        "T-TRANSPORT: sealed channel transport (256 KiB message)",
        [
            ("seed seal+open", f"{seed_time * 1e3:.1f} ms", f"{mib / seed_time:.0f} MiB/s"),
            ("shared-keystream roundtrip", f"{fast_time * 1e3:.1f} ms", f"{mib / fast_time:.0f} MiB/s"),
            ("transport speedup", f"{transport_speedup:.1f}x", ""),
            ("raw seal speedup", f"{seal_speedup:.1f}x", ""),
        ],
        ("path", "time", "throughput"),
    )
    bench_store(
        "transport",
        {
            "sealed_transport": {
                "message_bytes": MESSAGE_BYTES,
                "seed_ms": round(seed_time * 1e3, 3),
                "fast_ms": round(fast_time * 1e3, 3),
                "speedup": round(transport_speedup, 2),
                "raw_seal_speedup": round(seal_speedup, 2),
            }
        },
    )
    assert transport_speedup >= SPEEDUP_BAR, (
        f"sealed transport speedup {transport_speedup:.1f}x below the "
        f"{SPEEDUP_BAR}x acceptance bar"
    )
    # The one-sided seal is hashlib-bound (two digest finalizations per
    # 32-byte block are irreducible); guard against regressing to the
    # seed's hmac.new-per-block cost without over-asserting.
    assert seal_speedup >= min(2.0, SPEEDUP_BAR)


def test_codec_int_run_speedup(table, bench_store):
    """Batched integer-run encode/decode vs the seed's per-element loops."""
    import random

    rng = random.Random(5)
    values = [rng.randrange(0, 2**64) for _ in range(65536)]
    wire = serialize(values)
    fast_encode = _best_of(lambda: serialize(values))
    fast_decode = _best_of(lambda: deserialize(wire))
    with scalar_transport():
        assert serialize(values) == wire
        seed_encode = _best_of(lambda: serialize(values))
        seed_decode = _best_of(lambda: deserialize(wire))
    encode_speedup = seed_encode / fast_encode
    decode_speedup = seed_decode / fast_decode
    table(
        "T-TRANSPORT: wire codec, 65536-int run (64-bit magnitudes)",
        [
            ("encode", f"{seed_encode * 1e3:.1f} ms", f"{fast_encode * 1e3:.1f} ms", f"{encode_speedup:.1f}x"),
            ("decode", f"{seed_decode * 1e3:.1f} ms", f"{fast_decode * 1e3:.1f} ms", f"{decode_speedup:.1f}x"),
        ],
        ("path", "seed", "batched", "speedup"),
    )
    bench_store(
        "transport",
        {
            "codec_int_run": {
                "values": len(values),
                "encode_speedup": round(encode_speedup, 2),
                "decode_speedup": round(decode_speedup, 2),
            }
        },
    )
    assert encode_speedup >= min(1.5, SPEEDUP_BAR)
    assert decode_speedup >= min(1.2, SPEEDUP_BAR)


def _workload():
    schema = [
        AttributeSpec("alpha", AttributeType.NUMERIC, precision=2),
        AttributeSpec("beta", AttributeType.NUMERIC, precision=0),
    ]
    rows_per_site = 64
    partitions = {
        site: DataMatrix(
            schema,
            [
                [((seed * 37 + i * 13) % 1000) / 4.0, (seed * 91 + i * 7) % 5000]
                for i in range(rows_per_site)
            ],
        )
        for seed, site in enumerate(("A", "B"), start=1)
    }
    config = SessionConfig(
        num_clusters=3,
        master_seed=17,
        suite=ProtocolSuiteConfig(secure_channels=True),
    )
    return config, partitions


def _run_session(batch: SessionBatch, partitions, with_taps: bool = False):
    session = batch.session(partitions)
    taps = {}
    if with_taps:
        names = sorted(partitions) + ["TP"]
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                tap = Eavesdropper(f"{a}|{b}")
                session.network.attach_tap(a, b, tap)
                taps[(a, b)] = tap
    result = session.run()
    return session, result, taps


def test_end_to_end_session_speedup(table, bench_store):
    """A sealed-channel clustering session, fast vs seed transport.

    DH setup is shared through one :class:`SessionBatch` per transport,
    so the measured delta is construction + transport, not key
    agreement.  Transcripts are compared frame for frame first: the
    speedup claim is only meaningful if the wire is byte-identical.
    """
    config, partitions = _workload()

    batch = SessionBatch(config, sorted(partitions))
    fast_session, fast_result, fast_taps = _run_session(batch, partitions, with_taps=True)
    with scalar_transport():
        seed_batch = SessionBatch(config, sorted(partitions))
        seed_session, seed_result, seed_taps = _run_session(
            seed_batch, partitions, with_taps=True
        )

    assert fast_result.to_payload() == seed_result.to_payload()
    assert fast_session.total_bytes() == seed_session.total_bytes()
    for link, fast_tap in fast_taps.items():
        seed_frames = [(f.kind, f.tag, f.wire) for f in seed_taps[link].frames]
        fast_frames = [(f.kind, f.tag, f.wire) for f in fast_tap.frames]
        assert fast_frames == seed_frames, f"wire transcript diverged on {link}"
    fast_tags = {
        tag: total for tag, total in fast_session.network.bytes_by_tag().items()
    }
    assert fast_tags == seed_session.network.bytes_by_tag()

    fast_time = _best_of(lambda: _run_session(batch, partitions))
    with scalar_transport():
        seed_time = _best_of(lambda: _run_session(seed_batch, partitions), repeats=2)

    speedup = seed_time / fast_time
    table(
        "T-TRANSPORT: end-to-end sealed session (2 sites x 64 rows, 2 numeric attrs)",
        [
            ("seed transport", f"{seed_time * 1e3:.1f} ms"),
            ("fast transport", f"{fast_time * 1e3:.1f} ms"),
            ("speedup", f"{speedup:.2f}x"),
            ("wire bytes", f"{fast_session.total_bytes():,}"),
        ],
        ("configuration", "value"),
    )
    bench_store(
        "transport",
        {
            "end_to_end_session": {
                "sites": 2,
                "rows_per_site": 64,
                "wire_bytes": fast_session.total_bytes(),
                "seed_ms": round(seed_time * 1e3, 2),
                "fast_ms": round(fast_time * 1e3, 2),
                "speedup": round(speedup, 2),
            }
        },
    )
    assert speedup >= SESSION_BAR, (
        f"end-to-end speedup {speedup:.2f}x below the {SESSION_BAR}x bar"
    )


@pytest.mark.benchmark(group="transport")
def test_bench_transmit_roundtrip(benchmark):
    cipher = SymmetricCipher(KEY)
    message = _message()
    wire, _ = benchmark(lambda: cipher.transmit_roundtrip(message, make_prng(1)))
    assert len(wire) == len(message) + SymmetricCipher.OVERHEAD


@pytest.mark.benchmark(group="transport")
def test_bench_int_run_decode(benchmark):
    import random

    rng = random.Random(5)
    values = [rng.randrange(0, 2**64) for _ in range(65536)]
    wire = serialize(values)
    result = benchmark(lambda: deserialize(wire))
    assert result == values
