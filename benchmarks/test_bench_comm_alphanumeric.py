"""T-ALPHA -- alphanumeric protocol communication costs (Section 4.2).

Paper claims: DHJ transmits O(n^2 + n*p); DHK transmits O(m^2 + m*q*n*p)
(n, m = input counts; p, q = string lengths).  Measured wire bytes over
sweeps in each variable must show the claimed exponents.
"""

from __future__ import annotations

import pytest

from repro.analysis.comm_costs import (
    fit_loglog_slope,
    measure_alphanumeric_protocol,
)

COUNTS = [4, 8, 16, 32]
#: Lengths start at 32 so string content dominates per-message framing;
#: below that the measured slope reflects constant overhead, not the
#: O(n*p) term under test.
LENGTHS = [32, 64, 128, 256]
LENGTHS_QUAD = [16, 32, 64, 128]


def test_initiator_masked_strings_linear_in_count(table):
    costs = [
        measure_alphanumeric_protocol(n, 4, length=16)["initiator_masked"]
        for n in COUNTS
    ]
    slope = fit_loglog_slope(COUNTS, costs)
    table(
        "T-ALPHA: DHJ masked strings, n sweep (O(n*p) term)",
        list(zip(COUNTS, costs)),
        ("n", "measured bytes"),
    )
    assert 0.75 < slope < 1.25, f"slope {slope}"


def test_initiator_masked_strings_linear_in_length():
    costs = [
        measure_alphanumeric_protocol(8, 4, length=p)["initiator_masked"]
        for p in LENGTHS
    ]
    slope = fit_loglog_slope(LENGTHS, costs)
    assert 0.75 < slope < 1.25, f"slope {slope}"


def test_responder_ccms_quadratic_in_count(table):
    costs = [
        measure_alphanumeric_protocol(n, n, length=12)["responder_matrix"]
        for n in COUNTS
    ]
    slope = fit_loglog_slope(COUNTS, costs)
    table(
        "T-ALPHA: DHK intermediary CCMs, n=m sweep (O(m*n) factor)",
        list(zip(COUNTS, costs)),
        ("n=m", "measured bytes"),
    )
    assert 1.7 < slope < 2.3, f"slope {slope}"


def test_responder_ccms_quadratic_in_length(table):
    """p and q both scale with `length`, so the m*q*n*p term is
    quadratic in the common string length."""
    costs = [
        measure_alphanumeric_protocol(4, 4, length=p)["responder_matrix"]
        for p in LENGTHS_QUAD
    ]
    slope = fit_loglog_slope(LENGTHS_QUAD, costs)
    table(
        "T-ALPHA: DHK intermediary CCMs, length sweep (O(q*p) factor)",
        list(zip(LENGTHS_QUAD, costs)),
        ("length", "measured bytes"),
    )
    assert 1.7 < slope < 2.3, f"slope {slope}"


def test_ccm_cells_cost_one_byte_each():
    """Honest wire realism: a CCM cell is a single uint8 on the wire, so
    the dominant term's constant is ~1 byte per q*p cell pair."""
    n = m = 4
    length = 32
    result = measure_alphanumeric_protocol(n, m, length=length)
    cells_lower_bound = n * m * (0.8 * length) ** 2  # indels shrink strings
    assert result["responder_matrix"] >= cells_lower_bound


@pytest.mark.benchmark(group="comm-alphanumeric")
def test_bench_alphanumeric_protocol_run(benchmark):
    result = benchmark(measure_alphanumeric_protocol, 8, 8, 16)
    assert result["grand_total"] > 0
