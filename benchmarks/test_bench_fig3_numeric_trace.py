"""FIG3 -- the numeric comparison protocol (paper Figure 3 trace).

Reproduces the worked example (x=3, y=8, R_JK=5, R_JT=7 -> |x-y|=5) and
benchmarks the three protocol legs on realistic batch sizes.
"""

from __future__ import annotations

import pytest

from repro.core.numeric import (
    initiator_mask_batch,
    responder_matrix_batch,
    third_party_unmask_batch,
)
from repro.crypto.prng import make_prng

MASK_BITS = 64
N = 64  # initiator vector size
M = 64  # responder vector size


def _inputs(seed: int = 0):
    import numpy as np

    rng = np.random.default_rng(seed)
    values_j = [int(v) for v in rng.integers(-1000, 1000, size=N)]
    values_k = [int(v) for v in rng.integers(-1000, 1000, size=M)]
    return values_j, values_k


def test_figure3_trace_reproduced(table):
    """The literal trace from the paper."""

    import numpy as np

    class Fixed:
        def __init__(self, parity, mask):
            self._parity, self._mask = parity, mask

        def next_sign_bit(self):
            return self._parity % 2

        def next_bits(self, _):
            return self._mask

        def next_sign_bits(self, count):
            return np.full(count, self._parity % 2, dtype=np.uint64)

        def next_bits_block(self, count, _bits):
            return np.full(count, self._mask, dtype=np.uint64)

        def reset(self):
            pass

    masked = initiator_mask_batch([3], Fixed(5, 0), Fixed(0, 7), MASK_BITS)
    matrix = responder_matrix_batch([8], masked, Fixed(5, 0))
    distances = third_party_unmask_batch(matrix, Fixed(0, 7), MASK_BITS)
    table(
        "FIG3: worked trace (paper values)",
        [
            ("DHJ x'' = R_JT + x*(-1)^(R_JK%2)", "paper: 4", f"measured: {masked[0]}"),
            ("DHK m  = x'' + y*(-1)^((R_JK+1)%2)", "paper: 12", f"measured: {matrix[0][0]}"),
            ("TP |m - R_JT|", "paper: 5", f"measured: {distances[0][0]}"),
        ],
        ("step", "paper", "measured"),
    )
    assert masked == [4]
    assert matrix == [[12]]
    assert distances.tolist() == [[5]]


@pytest.mark.benchmark(group="fig3-numeric")
def test_bench_initiator_masking(benchmark):
    values_j, _ = _inputs()

    def run():
        return initiator_mask_batch(
            values_j, make_prng(1), make_prng(2), MASK_BITS
        )

    masked = benchmark(run)
    assert len(masked) == N


@pytest.mark.benchmark(group="fig3-numeric")
def test_bench_responder_matrix(benchmark):
    values_j, values_k = _inputs()
    masked = initiator_mask_batch(values_j, make_prng(1), make_prng(2), MASK_BITS)

    def run():
        return responder_matrix_batch(values_k, masked, make_prng(1))

    matrix = benchmark(run)
    assert len(matrix) == M and len(matrix[0]) == N


@pytest.mark.benchmark(group="fig3-numeric")
def test_bench_full_round_correctness(benchmark):
    values_j, values_k = _inputs()

    def run():
        masked = initiator_mask_batch(values_j, make_prng(1), make_prng(2), MASK_BITS)
        matrix = responder_matrix_batch(values_k, masked, make_prng(1))
        return third_party_unmask_batch(matrix, make_prng(2), MASK_BITS)

    distances = benchmark(run)
    for m, y in enumerate(values_k):
        for n, x in enumerate(values_j):
            assert distances[m][n] == abs(x - y)
