"""Shared fixtures and reporting helpers for the benchmark suite.

Every module here regenerates one experiment row from DESIGN.md
(paper artifact -> measured reproduction).  Benchmarks both *time* the
operation under ``pytest-benchmark`` and *assert* the paper's claim, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
gate.  Human-readable tables print with ``-s``; EXPERIMENTS.md records
the reference numbers.
"""

from __future__ import annotations

import pytest


def report(title: str, rows: list[tuple], headers: tuple) -> None:
    """Print an aligned table (visible with ``pytest -s``)."""
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def table():
    return report
