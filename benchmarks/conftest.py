"""Shared fixtures and reporting helpers for the benchmark suite.

Every module here regenerates one experiment row from DESIGN.md
(paper artifact -> measured reproduction).  Benchmarks both *time* the
operation under ``pytest-benchmark`` and *assert* the paper's claim, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
gate.  Human-readable tables print with ``-s``; EXPERIMENTS.md records
the reference numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent


def persist_bench(name: str, payload: dict) -> Path:
    """Merge measured numbers into ``BENCH_<name>.json`` at the repo root.

    Benchmarks persist their headline results so the perf trajectory is
    recorded per PR (CI uploads every ``BENCH_*.json`` as an artifact).
    Merging keeps one file per bench module with the latest value under
    each key.
    """
    path = _REPO_ROOT / f"BENCH_{name}.json"
    existing: dict = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    return path


def report(title: str, rows: list[tuple], headers: tuple) -> None:
    """Print an aligned table (visible with ``pytest -s``)."""
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def table():
    return report


@pytest.fixture
def bench_store():
    """The :func:`persist_bench` writer, as a fixture (no package import
    needed from benchmark modules)."""
    return persist_bench
