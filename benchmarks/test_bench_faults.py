"""T-FAULTS -- what fault masking and checkpointing cost.

The fault-tolerance PR's claim is qualitative (any maskable fault
schedule leaves every result bit-identical) but its *price* is
quantitative, and this module pins it:

* **masked-fault efficiency** -- wall-clock of a lossy-preset session
  (drops, duplicates, corruption, delays on every lane; every fault
  recovered by the reliable shim) relative to the same session on
  perfect links with the shim armed.  Results are asserted
  bit-identical first, so the timing compares equal work plus recovery.
* **wire overhead** -- retransmitted bytes on top of the fault-free
  transcript, reported as a ratio (informational, schedule-dependent).
* **checkpoint round-trip** -- ``snapshot()`` + ``restore()`` cost and
  blob size for a standing incremental service.

Headline numbers persist to ``BENCH_faults.json`` (a required gate
artifact; ``check_gates.py`` fails if it goes missing).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.apps.service import ClusteringService
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.network.faults import FaultPlan
from repro.types import AttributeType

SCHEMA = [
    AttributeSpec("age", AttributeType.NUMERIC, precision=0),
    AttributeSpec("dna", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET),
    AttributeSpec("city", AttributeType.CATEGORICAL),
]

#: A lossy session does strictly more work than a clean one (every
#: recovered fault is an extra transmit), so the "speedup" is below 1 by
#: construction; the gate asserts recovery overhead stays bounded --
#: masking must not blow the session up by more than ~4x.  CI relaxes
#: the bar via env var on contended runners.
EFFICIENCY_BAR = float(os.environ.get("FAULTS_EFFICIENCY_BAR", "0.25"))


def _partitions(rows_per_site: int = 6):
    rows = [
        [i * 7 % 90, "ACGT"[i % 4] * (1 + i % 3), f"c{i % 3}"]
        for i in range(3 * rows_per_site)
    ]
    return {
        site: DataMatrix(
            SCHEMA, rows[s * rows_per_site : (s + 1) * rows_per_site]
        )
        for s, site in enumerate(("A", "B", "C"))
    }


def _session(fault_plan: FaultPlan | None) -> ClusteringSession:
    suite = ProtocolSuiteConfig(reliable_delivery=True)
    config = SessionConfig(num_clusters=2, master_seed=17, suite=suite)
    return ClusteringSession(config, _partitions(), fault_plan=fault_plan)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _lossy_plan() -> FaultPlan:
    return FaultPlan.preset("lossy", seed=2025, parties=("A", "B", "C"))


@pytest.mark.benchmark(group="faults")
def test_bench_masked_fault_overhead(table, bench_store):
    # Contract first: the lossy run must land on the clean run's bits.
    clean_session = _session(None)
    clean_result = clean_session.run()
    lossy_session = _session(_lossy_plan())
    lossy_result = lossy_session.run()
    assert lossy_result.to_payload() == clean_result.to_payload()
    assert lossy_session.final_matrix() == clean_session.final_matrix()
    stats = lossy_session.network.reliability_stats()
    assert stats["retransmits"] > 0, "preset injected nothing to recover"
    overhead = lossy_session.total_bytes() / clean_session.total_bytes()

    clean_time = _best_of(lambda: _session(None).run())
    lossy_time = _best_of(lambda: _session(_lossy_plan()).run())
    efficiency = clean_time / lossy_time

    table(
        "T-FAULTS: lossy-preset session vs perfect links (3 sites x 6 rows)",
        [
            ("clean links", f"{clean_time * 1e3:.1f} ms"),
            ("lossy preset", f"{lossy_time * 1e3:.1f} ms"),
            ("efficiency", f"{efficiency:.2f}x"),
            ("wire overhead", f"{overhead:.3f}x"),
            ("retransmits", stats["retransmits"]),
            ("delayed deliveries", stats["delayed_deliveries"]),
            ("corrupt detected", stats["corrupt_detected"]),
            ("duplicates suppressed", stats["duplicates_suppressed"]),
        ],
        ("configuration", "value"),
    )
    bench_store(
        "faults",
        {
            "masked_fault_efficiency": {
                "sites": 3,
                "rows_per_site": 6,
                "clean_ms": round(clean_time * 1e3, 2),
                "lossy_ms": round(lossy_time * 1e3, 2),
                "wire_overhead_ratio": round(overhead, 3),
                "retransmits": stats["retransmits"],
                "speedup": round(efficiency, 3),
                "gate": EFFICIENCY_BAR,
            }
        },
    )
    assert efficiency >= EFFICIENCY_BAR, (
        f"masking overhead blew past the bar: {efficiency:.2f}x < {EFFICIENCY_BAR}x"
    )


@pytest.mark.benchmark(group="faults")
def test_bench_checkpoint_roundtrip(table, bench_store):
    config = SessionConfig(num_clusters=2, master_seed=17)
    service = ClusteringService(config, _partitions())

    blob = service.snapshot()
    snapshot_time = _best_of(service.snapshot)
    restore_time = _best_of(
        lambda: ClusteringService.restore(config, SCHEMA, blob)
    )
    resumed = ClusteringService.restore(config, SCHEMA, blob)
    assert resumed.matrix() == service.matrix()

    table(
        "T-FAULTS: checkpoint round-trip (3 sites x 6 rows)",
        [
            ("blob size", f"{len(blob):,} bytes"),
            ("snapshot", f"{snapshot_time * 1e3:.2f} ms"),
            ("restore", f"{restore_time * 1e3:.2f} ms"),
        ],
        ("operation", "value"),
    )
    bench_store(
        "faults",
        {
            "checkpoint_roundtrip": {
                "sites": 3,
                "rows_per_site": 6,
                "blob_bytes": len(blob),
                "snapshot_ms": round(snapshot_time * 1e3, 3),
                "restore_ms": round(restore_time * 1e3, 3),
            }
        },
    )
