"""T-INCREMENTAL -- delta construction vs full rebuild for arrivals.

The paper's Figure 11 construction is one-shot: a deployment where
records keep arriving would re-run the comparison protocols for *every*
pair on every batch.  The incremental subsystem
(:class:`repro.apps.service.ClusteringService` over
:mod:`repro.core.delta`) runs them only for pairs that touch an arrival
-- for a batch of ``m`` records joining ``n``, that is
``m*(m-1)/2 + m*n`` pairs instead of ``(n+m)*(n+m-1)/2``.

Headline measurement: appending a 10% batch to ``n = 2000`` objects
(arrivals split across both sites), delta ingest vs a from-scratch
construction over the union.  Both paths share one
:class:`~repro.apps.sessions.SessionBatch`'s cached DH secrets, so the
comparison is construction work, not key agreement -- and the measured
ingest state is asserted **bit-identical** to the rebuild's matrix
before any timing is trusted.  The acceptance bar is >= 5x (pair
arithmetic alone predicts ~5.8x at 10%); numbers persist to
``BENCH_incremental.json`` with the gate that was enforced, which
``benchmarks/check_gates.py`` re-checks on every run.

Timing repeats restore the pre-batch state through :meth:`retire` (the
inverse mutation -- itself asserted exact), so each repeat times the
same transition without paying a fresh initial construction.
"""

from __future__ import annotations

import os
import time

from repro.apps.sessions import SessionBatch
from repro.core.config import SessionConfig
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.types import AttributeType

#: Base object count; CI shrinks via env to keep shared runners honest.
TOTAL_OBJECTS = int(os.environ.get("INCREMENTAL_BENCH_N", "2000"))
#: Full bar on idle machines (measured ~6x); CI relaxes via env.
SPEEDUP_BAR = float(os.environ.get("INCREMENTAL_SPEEDUP_BAR", "5.0"))
BATCH_FRACTION = 10  # one tenth of the base population arrives


def _workload():
    schema = [AttributeSpec("v", AttributeType.NUMERIC, precision=2)]
    half = TOTAL_OBJECTS // 2
    rows = [[((i * 37) % 5000) / 4.0] for i in range(TOTAL_OBJECTS)]
    partitions = {
        "A": DataMatrix(schema, rows[:half]),
        "B": DataMatrix(schema, rows[half:]),
    }
    per_site = TOTAL_OBJECTS // BATCH_FRACTION // 2
    arrivals = {
        "A": DataMatrix(schema, [[((i * 91) % 5000) / 4.0] for i in range(per_site)]),
        "B": DataMatrix(schema, [[((i * 53) % 5000) / 4.0] for i in range(per_site)]),
    }
    return SessionConfig(num_clusters=3, master_seed=11), partitions, arrivals


def test_append_batch_speedup(table, bench_store):
    """>= 5x for a 10% append batch vs full reconstruction, bit-exact."""
    config, partitions, arrivals = _workload()
    batch = SessionBatch(config, sorted(partitions))
    service = batch.service(partitions)
    base_sizes = {site: m.num_rows for site, m in partitions.items()}
    added = sum(m.num_rows for m in arrivals.values())
    base_matrix = service.matrix()

    ingest_time = float("inf")
    retire_time = float("inf")
    repeats = 4
    for repeat in range(repeats):
        start = time.perf_counter()
        service.ingest(arrivals, recluster=False)
        ingest_time = min(ingest_time, time.perf_counter() - start)
        if repeat == repeats - 1:
            break  # keep the grown state for the equivalence assert
        removals = {
            site: list(range(base_sizes[site], service.index.size_of(site)))
            for site in arrivals
        }
        start = time.perf_counter()
        service.retire(removals, recluster=False)
        retire_time = min(retire_time, time.perf_counter() - start)
        assert service.matrix() == base_matrix, "retire did not invert ingest"

    rebuild_time = float("inf")
    rebuild = None
    for _ in range(3):
        rebuild = batch.session(service.partitions())
        start = time.perf_counter()
        rebuild.execute_protocol()
        rebuild_time = min(rebuild_time, time.perf_counter() - start)
    assert service.matrix() == rebuild.final_matrix(), (
        "incremental state diverged from the full rebuild"
    )

    total = service.total_objects()
    old_pairs_touched = added * (added - 1) // 2 + added * (total - added)
    all_pairs = total * (total - 1) // 2
    speedup = rebuild_time / ingest_time
    table(
        f"T-INCREMENTAL: 10% append batch at n={TOTAL_OBJECTS} (2 sites)",
        [
            ("full rebuild (union construction)", f"{rebuild_time * 1e3:.0f} ms", f"{all_pairs:,} pairs"),
            ("delta ingest", f"{ingest_time * 1e3:.0f} ms", f"{old_pairs_touched:,} pairs"),
            ("retire (inverse batch)", f"{retire_time * 1e3:.1f} ms", "no protocol rounds"),
            ("speedup", f"{speedup:.1f}x", f"gate {SPEEDUP_BAR}x"),
        ],
        ("path", "time", "work"),
    )
    bench_store(
        "incremental",
        {
            "append_batch": {
                "objects": TOTAL_OBJECTS,
                "batch": added,
                "sites": 2,
                "rebuild_ms": round(rebuild_time * 1e3, 1),
                "ingest_ms": round(ingest_time * 1e3, 1),
                "retire_ms": round(retire_time * 1e3, 2),
                "pairs_full": all_pairs,
                "pairs_delta": old_pairs_touched,
                "speedup": round(speedup, 2),
                "gate": SPEEDUP_BAR,
            }
        },
    )
    assert speedup >= SPEEDUP_BAR, (
        f"delta ingest speedup {speedup:.1f}x below the {SPEEDUP_BAR}x bar"
    )
