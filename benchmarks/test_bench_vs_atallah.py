"""T-EDIT -- CCM protocol vs Atallah et al. [8] (Section 2's rejection).

"[The Atallah et al.] algorithm is not feasible for clustering private
data due to high communication costs."  Both secure edit-distance
protocols run here on identical string pairs; wire bytes are measured
off real serialized messages (Paillier ciphertexts vs uint8 CCM cells).
The shape that must hold: Atallah costs orders of magnitude more, and
the gap *grows* with string length (O(n*m) ciphertexts vs O(n*m) bytes).
"""

from __future__ import annotations

import pytest

from repro.analysis.comm_costs import measure_alphanumeric_protocol
from repro.baselines.atallah import AtallahEditDistance
from repro.crypto.prng import make_prng
from repro.data.alphabet import DNA_ALPHABET
from repro.data.synthetic import dna_clusters
from repro.distance.edit import edit_distance

#: 512-bit keys keep the benchmark quick; the paper-era 1024-bit keys
#: double every ciphertext, widening the reported gap further.
KEY_BITS = 512

LENGTHS = [4, 8, 16]


def _pair(length: int, seed: int = 0) -> tuple[str, str]:
    sequences, _ = dna_clusters([2], length=length, seed=seed)
    return sequences[0], sequences[1]


@pytest.fixture(scope="module")
def atallah():
    return AtallahEditDistance(
        DNA_ALPHABET, make_prng("alice"), make_prng("bob"), key_bits=KEY_BITS
    )


def _ccm_bytes_per_comparison(length: int) -> float:
    result = measure_alphanumeric_protocol(1, 1, length=length)
    return result["initiator_masked"] + result["responder_matrix"]


def test_gap_is_orders_of_magnitude(atallah, table):
    rows = []
    gaps = []
    for length in LENGTHS:
        source, target = _pair(length)
        result = atallah.compute(source, target)
        assert result.distance == edit_distance(source, target)
        ccm_bytes = _ccm_bytes_per_comparison(length)
        gap = result.traffic.total_bytes / max(1.0, ccm_bytes)
        gaps.append(gap)
        rows.append(
            (
                length,
                int(ccm_bytes),
                result.traffic.total_bytes,
                result.traffic.ciphertexts,
                f"{gap:.0f}x",
            )
        )
    table(
        f"T-EDIT: bytes per private comparison (Paillier {KEY_BITS}-bit)",
        rows,
        ("string len", "CCM protocol B", "Atallah B", "ciphertexts", "gap"),
    )
    assert all(g > 50 for g in gaps), gaps
    assert gaps[-1] > gaps[0], "gap must widen with string length"


def test_both_protocols_agree_on_distance(atallah):
    for length in LENGTHS:
        source, target = _pair(length, seed=3)
        assert atallah.compute(source, target).distance == edit_distance(
            source, target
        )


@pytest.mark.benchmark(group="vs-atallah")
def test_bench_atallah_comparison(benchmark):
    proto = AtallahEditDistance(
        DNA_ALPHABET, make_prng("a2"), make_prng("b2"), key_bits=256
    )
    source, target = _pair(8, seed=5)

    def run():
        return proto.compute(source, target)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.distance == edit_distance(source, target)


@pytest.mark.benchmark(group="vs-atallah")
def test_bench_ccm_comparison(benchmark):
    result = benchmark(measure_alphanumeric_protocol, 1, 1, 8)
    assert result["grand_total"] > 0
