"""T-CAT -- categorical protocol communication costs (Section 4.3).

Paper claim: "communication cost for a party with n objects is O(n)"
-- one deterministic ciphertext per object, nothing else.
"""

from __future__ import annotations

import pytest

from repro.analysis.comm_costs import (
    CostModel,
    fit_loglog_slope,
    measure_categorical_protocol,
)

SIZES = [16, 32, 64, 128, 256]


@pytest.fixture(scope="module")
def sweep():
    return {n: measure_categorical_protocol(n) for n in SIZES}


def test_holder_upload_linear(sweep, table):
    costs = [sweep[n]["holder_column"] for n in SIZES]
    slope = fit_loglog_slope(SIZES, costs)
    model = CostModel()
    table(
        "T-CAT: holder upload (O(n))",
        [
            (n, c, int(model.categorical_holder_bytes(n)))
            for n, c in zip(SIZES, costs)
        ],
        ("n", "measured bytes", "model bytes"),
    )
    assert 0.85 < slope < 1.15, f"slope {slope}"


def test_no_cross_party_rounds(sweep):
    """Unlike numeric/alphanumeric, holders talk only to the TP."""
    for n in SIZES:
        result = sweep[n]
        upload = result["holder_column"]
        # Holder J's total = encrypted column + weight vector only;
        # allow small fixed overhead for the weights message.
        assert result["initiator_total"] - upload < 200


def test_ciphertext_size_constant_per_object(sweep):
    per_object = [sweep[n]["holder_column"] / n for n in SIZES]
    assert max(per_object) - min(per_object) < 3.0  # bytes of framing drift


@pytest.mark.benchmark(group="comm-categorical")
def test_bench_categorical_protocol_run(benchmark):
    result = benchmark(measure_categorical_protocol, 64)
    assert result["holder_column"] > 0
