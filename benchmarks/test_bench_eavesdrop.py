"""T-EAVES -- channel security requirement (Section 4.1).

Paper: "the channel between DHJ and DHK must be secured ... this
channel [DHK -> TP] must be secured as well", with an explicit
candidate-set analysis for each eavesdropper.  We run both attacks on
both channel configurations and report recovery.
"""

from __future__ import annotations

import pytest

from repro.attacks.eavesdrop import (
    initiator_eavesdrop_responder_values,
    tp_eavesdrop_initiator_candidates,
    tp_eavesdrop_responder_candidates,
)
from repro.core import labels as label_grammar
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.exceptions import ChannelError
from repro.network.channel import Eavesdropper
from repro.types import AttributeType

TRUTH_J = [13, 42, 7, 99]
TRUTH_K = [20, 5, 64]


def _run_session(secure: bool):
    schema = [AttributeSpec("v", AttributeType.NUMERIC, precision=0)]
    partitions = {
        "J": DataMatrix(schema, [[v] for v in TRUTH_J]),
        "K": DataMatrix(schema, [[v] for v in TRUTH_K]),
    }
    suite = ProtocolSuiteConfig(secure_channels=secure)
    session = ClusteringSession(
        SessionConfig(num_clusters=2, master_seed=6, suite=suite), partitions
    )
    tap = Eavesdropper("mallory")
    session.network.attach_tap("J", "K", tap)
    session.network.attach_tap("K", "TP", tap)
    session.execute_protocol()
    return session, tap


def test_insecure_channels_leak_everything(table):
    session, tap = _run_session(secure=False)
    vector_frame = next(f for f in tap.frames if f.kind == "masked_vector")
    matrix_frame = next(f for f in tap.frames if f.kind == "comparison_matrix")

    rng_jt = session.third_party.secret_with("J").prng(
        label_grammar.numeric_jt("v", "J", "K"), "hash_drbg"
    )
    x_candidates = tp_eavesdrop_initiator_candidates(vector_frame, rng_jt, 64)
    y_candidates = tp_eavesdrop_responder_candidates(
        matrix_frame, x_candidates, rng_jt, 64
    )
    holder = session.holders["J"]
    rng_jk = holder.secret_with("K").prng(
        label_grammar.numeric_jk("v", "J", "K"), "hash_drbg"
    )
    rng_jt_j = holder.secret_with("TP").prng(
        label_grammar.numeric_jt("v", "J", "K"), "hash_drbg"
    )
    exact_y = initiator_eavesdrop_responder_values(
        matrix_frame, TRUTH_J, rng_jk, rng_jt_j, 64
    )

    rows = [
        (
            "TP on DHJ->DHK: x candidates",
            "2 per value, truth included",
            all(x in pair for x, pair in zip(TRUTH_J, x_candidates)),
        ),
        (
            "TP: y candidate sets",
            "<= 4 per value, truth included",
            all(y in c and len(c) <= 4 for y, c in zip(TRUTH_K, y_candidates)),
        ),
        (
            "DHJ on DHK->TP: exact y recovery",
            "exact",
            exact_y == TRUTH_K,
        ),
    ]
    table(
        "T-EAVES: attacks on INSECURE channels",
        rows,
        ("attack", "paper prediction", "holds"),
    )
    assert all(bool(r[2]) for r in rows)


def test_secured_channels_stop_both_attacks(table):
    _session, tap = _run_session(secure=True)
    blocked = 0
    for frame in tap.frames:
        assert frame.sealed
        try:
            frame.try_read_payload()
        except ChannelError:
            blocked += 1
    table(
        "T-EAVES: attacks on SECURED channels",
        [("frames captured", len(tap.frames)), ("frames decodable", len(tap.frames) - blocked)],
        ("quantity", "count"),
    )
    assert blocked == len(tap.frames) > 0


def test_security_overhead_is_modest(table):
    insecure, _ = _run_session(secure=False)
    secure, _ = _run_session(secure=True)
    i_bytes = insecure.total_bytes()
    s_bytes = secure.total_bytes()
    table(
        "T-EAVES: price of securing the channels",
        [(i_bytes, s_bytes, f"{(s_bytes - i_bytes) / i_bytes * 100:.1f}%")],
        ("insecure bytes", "secured bytes", "overhead"),
    )
    assert s_bytes > i_bytes
    assert (s_bytes - i_bytes) / i_bytes < 1.0  # well under 2x on this workload


@pytest.mark.benchmark(group="eavesdrop")
def test_bench_tapped_session(benchmark):
    def run():
        session, tap = _run_session(secure=False)
        return len(tap.frames)

    frames = benchmark(run)
    assert frames > 0
