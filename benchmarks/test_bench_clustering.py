"""T-CLUSTERING -- the rewritten clustering layer vs the seed.

PRs 1-2 made protocol math and transport fast; after them a session's
runtime lives *downstream* of the Figure 11 construction, in the
clustering the paper positions as its main advantage (Section 6).  This
module measures the rewritten matrix consumers against the seed
implementations preserved in :mod:`repro.clustering.reference`:

* **agglomerative** -- seed: O(n^3) global argmin over a dense square.
  New: nearest-neighbor chains in-place on the condensed vector plus a
  canonicalizing replay.  Gate: >= 10x at n >= 1000, with the output
  dendrogram asserted merge-for-merge identical first.
* **k-medoids** -- seed: classic PAM re-scoring every medoid/candidate
  pair per SWAP.  New: FasterPAM-style cached nearest/second-nearest
  arrays with whole-candidate numpy evaluation.  Gate: >= 10x, with
  identical medoids/labels/iterations asserted first.
* **quality metrics** -- seed: nested Python pair loops.  New:
  condensed-array formulations (bincount reductions).  Reported and
  gated lightly; headline numbers ride along.

Headline numbers persist to ``BENCH_clustering.json`` (uploaded as a CI
artifact); every persisted entry carries its gate so
``benchmarks/check_gates.py`` can fail the job on regression.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.clustering import quality
from repro.clustering.kmedoids import k_medoids
from repro.clustering.linkage import agglomerative
from repro.clustering.reference import (
    reference_agglomerative,
    reference_cophenetic_correlation,
    reference_k_medoids,
    reference_pair_counts,
    reference_silhouette_score,
)
from repro.distance.dissimilarity import DissimilarityMatrix

#: The acceptance bar is 10x on an idle machine (measured ~14x
#: agglomerative at n=3500, ~40x PAM at n=1500).  Wall-clock asserts
#: flake on contended shared runners, so CI lowers the gates (and sizes)
#: via env vars instead of turning red on timing noise.
SPEEDUP_BAR = float(os.environ.get("CLUSTERING_SPEEDUP_BAR", "10.0"))
AGGLOMERATIVE_N = int(os.environ.get("CLUSTERING_BENCH_N", "3500"))
PAM_N = int(os.environ.get("CLUSTERING_PAM_N", "1500"))


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _matrix(n: int, seed: int = 42) -> DissimilarityMatrix:
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 4))
    square = np.linalg.norm(points[:, None] - points[None, :], axis=2)
    return DissimilarityMatrix.from_square(square)


def test_agglomerative_speedup(table, bench_store):
    """>= 10x on hierarchical clustering, dendrogram identical."""
    n = AGGLOMERATIVE_N
    matrix = _matrix(n)

    fast = agglomerative(matrix, "average")
    start = time.perf_counter()
    seed_dendrogram = reference_agglomerative(matrix, "average")
    seed_time = time.perf_counter() - start
    assert fast.merges == seed_dendrogram.merges, "dendrogram diverged from seed"
    fast_time = _best_of(lambda: agglomerative(matrix, "average"))

    speedup = seed_time / fast_time
    table(
        f"T-CLUSTERING: agglomerative (average linkage, n={n})",
        [
            ("seed argmin square", f"{seed_time:.2f} s", "O(n^3), full square"),
            ("NN-chain condensed", f"{fast_time:.2f} s", "O(n^2), condensed"),
            ("speedup", f"{speedup:.1f}x", f"gate {SPEEDUP_BAR}x"),
        ],
        ("path", "time", "notes"),
    )
    bench_store(
        "clustering",
        {
            "agglomerative": {
                "n": n,
                "method": "average",
                "seed_s": round(seed_time, 3),
                "fast_s": round(fast_time, 3),
                "speedup": round(speedup, 2),
                "gate": SPEEDUP_BAR,
            }
        },
    )
    assert speedup >= SPEEDUP_BAR, (
        f"agglomerative speedup {speedup:.1f}x below the {SPEEDUP_BAR}x bar"
    )


def test_kmedoids_speedup(table, bench_store):
    """>= 10x on PAM, identical medoids/labels (same SWAP trajectory)."""
    n, k, iterations = PAM_N, 8, 3
    matrix = _matrix(n, seed=7)

    fast = k_medoids(matrix, k, max_iterations=iterations)
    start = time.perf_counter()
    seed_result = reference_k_medoids(matrix, k, max_iterations=iterations)
    seed_time = time.perf_counter() - start
    assert fast.labels == seed_result.labels
    assert fast.medoids == seed_result.medoids
    assert fast.iterations == seed_result.iterations
    assert abs(fast.cost - seed_result.cost) <= 1e-9
    fast_time = _best_of(lambda: k_medoids(matrix, k, max_iterations=iterations))

    speedup = seed_time / fast_time
    table(
        f"T-CLUSTERING: k-medoids (n={n}, k={k}, {iterations} SWAP iterations)",
        [
            ("seed PAM re-scoring", f"{seed_time:.2f} s", "O(k n^2) per iter"),
            ("FasterPAM-style deltas", f"{fast_time:.2f} s", "O(n^2) per iter"),
            ("speedup", f"{speedup:.1f}x", f"gate {SPEEDUP_BAR}x"),
        ],
        ("path", "time", "notes"),
    )
    bench_store(
        "clustering",
        {
            "k_medoids": {
                "n": n,
                "k": k,
                "iterations": iterations,
                "seed_s": round(seed_time, 3),
                "fast_s": round(fast_time, 3),
                "speedup": round(speedup, 2),
                "gate": SPEEDUP_BAR,
            }
        },
    )
    assert speedup >= SPEEDUP_BAR, (
        f"k-medoids speedup {speedup:.1f}x below the {SPEEDUP_BAR}x bar"
    )


def test_quality_metrics_speedup(table, bench_store):
    """Condensed-array metrics vs the seed's nested pair loops."""
    n = min(PAM_N, 1500)
    matrix = _matrix(n, seed=11)
    rng = np.random.default_rng(13)
    labels = [int(x) for x in rng.integers(0, 8, size=n)]
    truth = [int(x) for x in rng.integers(0, 6, size=n)]
    dendrogram = agglomerative(matrix, "average")

    assert quality.silhouette_score(matrix, labels) == pytest.approx(
        reference_silhouette_score(matrix, labels), abs=1e-9
    )
    assert quality._pair_counts(truth, labels) == reference_pair_counts(truth, labels)
    assert quality.cophenetic_correlation(matrix, dendrogram) == pytest.approx(
        reference_cophenetic_correlation(matrix, dendrogram), abs=1e-9
    )

    sil_seed = _best_of(lambda: reference_silhouette_score(matrix, labels), repeats=1)
    sil_fast = _best_of(lambda: quality.silhouette_score(matrix, labels))
    pairs_seed = _best_of(lambda: reference_pair_counts(truth, labels), repeats=1)
    pairs_fast = _best_of(lambda: quality._pair_counts(truth, labels))
    coph_seed = _best_of(
        lambda: reference_cophenetic_correlation(matrix, dendrogram), repeats=1
    )
    coph_fast = _best_of(lambda: quality.cophenetic_correlation(matrix, dendrogram))

    rows = [
        ("silhouette", sil_seed, sil_fast, 2.0),
        ("rand/ARI pair counts", pairs_seed, pairs_fast, 10.0),
        ("cophenetic correlation", coph_seed, coph_fast, 5.0),
    ]
    payload = {}
    printable = []
    for name, seed_time, fast_time, full_gate in rows:
        speedup = seed_time / fast_time
        gate = min(full_gate, SPEEDUP_BAR)
        key = name.split()[0].replace("/", "_")
        payload[key] = {
            "n": n,
            "seed_ms": round(seed_time * 1e3, 2),
            "fast_ms": round(fast_time * 1e3, 2),
            "speedup": round(speedup, 2),
            "gate": gate,
        }
        printable.append(
            (name, f"{seed_time * 1e3:.1f} ms", f"{fast_time * 1e3:.1f} ms",
             f"{speedup:.1f}x", f"{gate}x")
        )
    table(
        f"T-CLUSTERING: quality metrics (n={n})",
        printable,
        ("metric", "seed", "condensed", "speedup", "gate"),
    )
    bench_store("clustering", {"quality": payload})
    for key, entry in payload.items():
        assert entry["speedup"] >= entry["gate"], (
            f"{key} speedup {entry['speedup']}x below the {entry['gate']}x bar"
        )


@pytest.mark.benchmark(group="clustering")
def test_bench_agglomerative_fast_path(benchmark):
    matrix = _matrix(400, seed=3)
    dendrogram = benchmark(lambda: agglomerative(matrix, "ward"))
    assert dendrogram.num_leaves == 400


@pytest.mark.benchmark(group="clustering")
def test_bench_kmedoids_fast_path(benchmark):
    matrix = _matrix(400, seed=5)
    result = benchmark(lambda: k_medoids(matrix, 6))
    assert len(result.medoids) == 6
