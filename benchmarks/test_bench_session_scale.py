"""T-SCALE -- end-to-end costs vs centralized computation (Section 6).

Paper: "the communication costs of our protocols are parallel to the
computation costs of the operations in case of centralized data" -- i.e.
total bytes scale like the number of pairwise comparisons a centralized
computation performs (Theta(N^2) for N global objects), not worse.  We
sweep total objects and holder counts and fit the slope of total bytes
against pairwise-comparison counts.
"""

from __future__ import annotations

import pytest

from repro.analysis.comm_costs import fit_loglog_slope
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.data.partition import horizontal_partition
from repro.data.synthetic import integer_clusters
from repro.types import AttributeType

SUITE = ProtocolSuiteConfig(secure_channels=False)


def _session(total: int, holders: int, seed: int = 0) -> ClusteringSession:
    rows, _ = integer_clusters([total], dim=1, separation=0, spread=1000, seed=seed)
    schema = [AttributeSpec("v", AttributeType.NUMERIC, precision=0)]
    matrix = DataMatrix(schema, rows)
    sites = [chr(ord("A") + i) for i in range(holders)]
    partitions = horizontal_partition(matrix, sites)
    return ClusteringSession(
        SessionConfig(num_clusters=2, master_seed=seed, suite=SUITE), partitions
    )


def test_total_bytes_track_pairwise_comparisons(table):
    totals = [16, 32, 64, 128]
    rows = []
    pair_counts = []
    byte_counts = []
    for total in totals:
        session = _session(total, holders=2)
        session.execute_protocol()
        pairs = total * (total - 1) // 2
        pair_counts.append(pairs)
        byte_counts.append(session.total_bytes())
        rows.append((total, pairs, session.total_bytes()))
    slope = fit_loglog_slope(pair_counts, byte_counts)
    table(
        "T-SCALE: session bytes vs centralized comparison count (k=2)",
        rows,
        ("objects", "pairwise comparisons", "total bytes"),
    )
    # Parallel costs: bytes grow linearly in the comparison count.
    assert 0.85 < slope < 1.15, f"slope {slope}"


def test_holder_count_does_not_change_asymptotics(table):
    total = 60
    rows = []
    counts = []
    for holders in (2, 3, 5, 6):
        session = _session(total, holders=holders)
        session.execute_protocol()
        counts.append(session.total_bytes())
        rows.append((holders, total, session.total_bytes()))
    table(
        "T-SCALE: total bytes vs holder count (fixed 60 objects)",
        rows,
        ("holders", "objects", "total bytes"),
    )
    # Every cross pair is compared exactly once regardless of k, so the
    # spread stays within a small constant factor.
    assert max(counts) / min(counts) < 1.6


def test_every_cross_pair_compared_once():
    """C(k,2) protocol runs per attribute, no duplicated blocks."""
    session = _session(30, holders=3)
    session.execute_protocol()
    matrix = session.final_matrix()
    # Dissimilarity complete: every off-diagonal entry of the integer
    # workload is filled (values drawn from a wide range, ties unlikely
    # to be zero except self-pairs).
    import numpy as np

    zero_fraction = float((matrix.condensed == 0).mean())
    assert zero_fraction < 0.05


@pytest.mark.benchmark(group="session-scale")
@pytest.mark.parametrize("holders", [2, 4])
def test_bench_session_by_holders(benchmark, holders):
    def run():
        session = _session(40, holders=holders, seed=holders)
        session.execute_protocol()
        return session.total_bytes()

    total = benchmark(run)
    assert total > 0
