"""T-NORM -- dissimilarity-matrix normalisation equivalence (Section 2.1).

Paper: normalising the dissimilarity matrix "yields the same effect"
as normalising the data, "without loss of accuracy and the need for
another [min/max] protocol".  For the |x-y| metric this is an exact
identity; we verify it numerically on partitioned workloads where the
partitions deliberately cover different value ranges (the very case
that motivates the design).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SessionConfig
from repro.core.session import ClusteringSession
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.distance.local import local_dissimilarity
from repro.distance.normalize import min_max_normalize_column
from repro.types import AttributeType


def _skewed_partitions():
    """Site A holds low values, site B high ones -- local min/max are
    useless, which is exactly why the paper normalises the matrix."""
    schema = [AttributeSpec("v", AttributeType.NUMERIC, precision=0)]
    return {
        "A": DataMatrix(schema, [[0], [10], [25], [40]]),
        "B": DataMatrix(schema, [[500], [730], [999]]),
    }


def test_matrix_normalisation_equals_data_normalisation(table):
    partitions = _skewed_partitions()
    session = ClusteringSession(SessionConfig(num_clusters=2), partitions)
    private_normalized = session.final_matrix()

    # Reference: a trusted party min-max-normalises the pooled column
    # first, then computes plain |x - y|.
    pooled = [float(v) for site in sorted(partitions) for (v,) in partitions[site].rows]
    scaled = min_max_normalize_column(pooled)
    reference = local_dissimilarity(scaled, lambda a, b: abs(a - b))

    max_diff = float(
        np.abs(private_normalized.condensed - reference.condensed).max()
    )
    table(
        "T-NORM: matrix normalisation vs data normalisation",
        [("skewed two-site workload", len(pooled), max_diff)],
        ("workload", "objects", "max difference"),
    )
    assert private_normalized.allclose(reference, atol=1e-12)


def test_equivalence_across_random_partitions():
    rng = np.random.default_rng(3)
    schema = [AttributeSpec("v", AttributeType.NUMERIC, precision=0)]
    for trial in range(5):
        values = [int(v) for v in rng.integers(-10_000, 10_000, size=12)]
        split = 4 + int(rng.integers(5))
        partitions = {
            "A": DataMatrix(schema, [[v] for v in values[:split]]),
            "B": DataMatrix(schema, [[v] for v in values[split:]]),
        }
        session = ClusteringSession(
            SessionConfig(num_clusters=2, master_seed=trial), partitions
        )
        scaled = min_max_normalize_column([float(v) for v in values])
        reference = local_dissimilarity(scaled, lambda a, b: abs(a - b))
        assert session.final_matrix().allclose(reference, atol=1e-12)


def test_no_minmax_protocol_needed():
    """Structural check: no message kind in the transcript carries global
    min/max negotiation -- normalisation is TP-local."""
    partitions = _skewed_partitions()
    session = ClusteringSession(SessionConfig(num_clusters=2), partitions)
    session.execute_protocol()
    observed_kinds = set()
    for link in (("A", "B"), ("A", "TP"), ("B", "TP")):
        channel = session.network.channel(*link)
        for (s, r, kind), stats in channel._kind_stats.items():
            if stats.messages:
                observed_kinds.add(kind)
    assert observed_kinds <= {
        "local_matrix",
        "masked_vector",
        "masked_matrix",
        "comparison_matrix",
        "weights",
    }


@pytest.mark.benchmark(group="normalization")
def test_bench_normalisation(benchmark):
    from repro.distance.dissimilarity import DissimilarityMatrix

    rng = np.random.default_rng(0)
    matrix = DissimilarityMatrix(
        200, np.abs(rng.normal(size=200 * 199 // 2))
    )
    normalized = benchmark(matrix.normalized)
    assert normalized.max_value() == 1.0
