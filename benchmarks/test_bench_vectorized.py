"""T-VEC -- vectorized protocol engine vs the scalar reference.

The protocol construction phase (mask, respond, unmask -- the paper's
Figures 4-6 and 8-10) is rewritten as array operations over block-drawn
randomness; :mod:`repro.core.reference` preserves the original
per-element implementation as the executable specification.  This module
times both on identical inputs and asserts the acceptance bar: at least
a 5x speedup on protocol construction, with byte-identical messages
(the equivalence itself is pinned by ``tests/test_vectorized_equivalence``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import alphanumeric as alnum_vec
from repro.core import numeric as num_vec
from repro.core import reference as ref
from repro.crypto.prng import make_prng
from repro.data.alphabet import DNA_ALPHABET
from repro.distance.edit import edit_distance_from_ccm

MASK_BITS = 64
N = 256  # initiator/responder vector sizes for the numeric phase
STRINGS = 16  # per-site string counts for the alphanumeric phase
LENGTH = 32

#: The acceptance bar is 5x on an idle machine (measured 8x numeric,
#: 80x+ alphanumeric).  Wall-clock asserts flake on contended shared
#: runners, so CI lowers the gate via this env var instead of turning
#: red on timing noise; local/acceptance runs keep the full bar.
SPEEDUP_BAR = float(os.environ.get("VECTORIZED_SPEEDUP_BAR", "5.0"))


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _numeric_inputs():
    rng = np.random.default_rng(7)
    values_j = [int(v) for v in rng.integers(-10_000, 10_000, size=N)]
    values_k = [int(v) for v in rng.integers(-10_000, 10_000, size=N)]
    return values_j, values_k


def _numeric_construction(module, values_j, values_k):
    masked = module.initiator_mask_batch(
        values_j, make_prng(1), make_prng(2), MASK_BITS
    )
    matrix = module.responder_matrix_batch(values_k, masked, make_prng(1))
    return module.third_party_unmask_batch(matrix, make_prng(2), MASK_BITS)


def _dna_strings(seed: int):
    rng = np.random.default_rng(seed)
    return [
        "".join("ACGT"[i] for i in rng.integers(0, 4, size=LENGTH))
        for _ in range(STRINGS)
    ]


def test_numeric_construction_speedup(table):
    values_j, values_k = _numeric_inputs()
    scalar = _best_of(lambda: _numeric_construction(ref, values_j, values_k))
    vectorized = _best_of(lambda: _numeric_construction(num_vec, values_j, values_k))
    speedup = scalar / vectorized
    table(
        "T-VEC: numeric construction phase (batch mode, n=m=256, 64-bit masks)",
        [
            ("scalar reference", f"{scalar * 1e3:.1f} ms"),
            ("vectorized engine", f"{vectorized * 1e3:.1f} ms"),
            ("speedup", f"{speedup:.1f}x"),
        ],
        ("engine", "time"),
    )
    assert speedup >= SPEEDUP_BAR, (
        f"speedup {speedup:.1f}x below the {SPEEDUP_BAR}x acceptance bar"
    )


def test_alphanumeric_construction_speedup(table):
    strings_j = _dna_strings(1)
    strings_k = _dna_strings(2)

    def scalar_run():
        masked = ref.initiator_mask_strings(strings_j, DNA_ALPHABET, make_prng(1))
        matrices = alnum_vec.responder_ccm_matrices(strings_k, masked, DNA_ALPHABET)
        tp = make_prng(1)
        return [
            [
                edit_distance_from_ccm(
                    ref.third_party_decode_ccm(m, DNA_ALPHABET, tp)
                )
                for m in row
            ]
            for row in matrices
        ]

    def vectorized_run():
        masked = alnum_vec.initiator_mask_strings(
            strings_j, DNA_ALPHABET, make_prng(1)
        )
        matrices = alnum_vec.responder_ccm_matrices(strings_k, masked, DNA_ALPHABET)
        return alnum_vec.third_party_distances(matrices, DNA_ALPHABET, make_prng(1))

    assert np.asarray(scalar_run()).tolist() == vectorized_run().tolist()
    scalar = _best_of(scalar_run, repeats=2)
    vectorized = _best_of(vectorized_run)
    speedup = scalar / vectorized
    table(
        "T-VEC: alphanumeric construction phase (16x16 DNA strings, length 32)",
        [
            ("scalar reference", f"{scalar * 1e3:.1f} ms"),
            ("vectorized engine", f"{vectorized * 1e3:.1f} ms"),
            ("speedup", f"{speedup:.1f}x"),
        ],
        ("engine", "time"),
    )
    assert speedup >= SPEEDUP_BAR, (
        f"speedup {speedup:.1f}x below the {SPEEDUP_BAR}x acceptance bar"
    )


def test_block_draw_speedup_hash_drbg(table):
    """Block word generation vs scalar draws for the default DRBG."""
    count = 50_000

    def scalar_run():
        g = make_prng("bench")
        for _ in range(count):
            g.next_uint64()

    def block_run():
        make_prng("bench").next_words(count)

    scalar = _best_of(scalar_run, repeats=2)
    block = _best_of(block_run)
    speedup = scalar / block
    table(
        "T-VEC: HashDRBG word generation (50k words)",
        [
            ("scalar draws", f"{scalar * 1e3:.1f} ms"),
            ("block draw", f"{block * 1e3:.1f} ms"),
            ("speedup", f"{speedup:.1f}x"),
        ],
        ("path", "time"),
    )
    # Locally ~4x; the loose bound only guards against the block path
    # regressing to scalar speed, without flaking on contended CI runners.
    assert speedup >= min(1.5, SPEEDUP_BAR)


@pytest.mark.benchmark(group="vectorized")
def test_bench_numeric_construction_vectorized(benchmark):
    values_j, values_k = _numeric_inputs()
    result = benchmark(lambda: _numeric_construction(num_vec, values_j, values_k))
    assert result.shape == (N, N)


@pytest.mark.benchmark(group="vectorized")
def test_bench_alphanumeric_distances_vectorized(benchmark):
    strings_j = _dna_strings(3)
    strings_k = _dna_strings(4)
    masked = alnum_vec.initiator_mask_strings(strings_j, DNA_ALPHABET, make_prng(1))
    matrices = alnum_vec.responder_ccm_matrices(strings_k, masked, DNA_ALPHABET)
    result = benchmark(
        lambda: alnum_vec.third_party_distances(matrices, DNA_ALPHABET, make_prng(1))
    )
    assert result.shape == (STRINGS, STRINGS)
