"""T-CLUST -- hierarchical vs partitioning methods (Section 2's argument).

Paper: "We primarily focus on hierarchical clustering methods ... rather
than partitioning methods that tend to result in spherical clusters.
Hierarchical methods can both discover clusters of arbitrary shapes and
deal with different data types.  For example, partitioning algorithms
can not handle string data type for which a 'mean' is not defined."

Two experiments substantiate this on privately-built matrices:
* concentric rings -- single linkage recovers them, PAM splits them;
* DNA strings -- hierarchical clustering works directly on the edit-
  distance matrix (where a k-means "mean string" does not even exist;
  PAM is the strongest partitioning fallback and is reported alongside).
"""

from __future__ import annotations

import pytest

from repro.clustering.kmedoids import k_medoids
from repro.clustering.linkage import agglomerative
from repro.clustering.quality import adjusted_rand_index, silhouette_score
from repro.core.config import SessionConfig
from repro.core.session import ClusteringSession
from repro.data.datasets import bird_flu, rings


@pytest.fixture(scope="module")
def ring_matrix():
    ds = rings(num_sites=2, per_ring=30)
    session = ClusteringSession(
        SessionConfig(num_clusters=2, master_seed=2), ds.partitions
    )
    return session.final_matrix(), ds.labels_in_global_order()


@pytest.fixture(scope="module")
def dna_matrix():
    ds = bird_flu(num_institutions=2, per_cluster=6, num_strains=3)
    session = ClusteringSession(
        SessionConfig(num_clusters=3, master_seed=2), ds.partitions
    )
    return session.final_matrix(), ds.labels_in_global_order()


def test_rings_hierarchical_beats_partitioning(ring_matrix, table):
    matrix, truth = ring_matrix
    single = agglomerative(matrix, "single").cut_at_k(2)
    pam = k_medoids(matrix, 2)
    ari_single = adjusted_rand_index(truth, single)
    ari_pam = adjusted_rand_index(truth, pam.labels)
    table(
        "T-CLUST: concentric rings (non-spherical clusters)",
        [
            ("single-linkage hierarchical", f"{ari_single:.3f}"),
            ("k-medoids (PAM)", f"{ari_pam:.3f}"),
        ],
        ("method", "ARI vs ground truth"),
    )
    assert ari_single == 1.0
    assert ari_pam < 0.5


def test_dna_hierarchical_recovers_strains(dna_matrix, table):
    matrix, truth = dna_matrix
    rows = []
    aris = {}
    for method in ("single", "complete", "average"):
        labels = agglomerative(matrix, method).cut_at_k(3)
        aris[method] = adjusted_rand_index(truth, labels)
        rows.append((method, f"{aris[method]:.3f}"))
    pam = k_medoids(matrix, 3)
    rows.append(("k-medoids (PAM)", f"{adjusted_rand_index(truth, pam.labels):.3f}"))
    table(
        "T-CLUST: DNA strains in edit-distance space (k-means undefined)",
        rows,
        ("method", "ARI vs ground truth"),
    )
    assert max(aris.values()) > 0.8


def test_silhouette_confirms_ring_structure(ring_matrix):
    matrix, truth = ring_matrix
    single = agglomerative(matrix, "single").cut_at_k(2)
    # Silhouette (a spherical-bias metric) is low even for the correct
    # ring partition -- the reason partitioning objectives fail here.
    assert silhouette_score(matrix, single) < 0.6
    assert adjusted_rand_index(truth, single) == 1.0


@pytest.mark.benchmark(group="linkage-vs-partitioning")
def test_bench_single_linkage(benchmark, ring_matrix):
    matrix, _ = ring_matrix
    dendrogram = benchmark(agglomerative, matrix, "single")
    assert dendrogram.num_leaves == matrix.num_objects


@pytest.mark.benchmark(group="linkage-vs-partitioning")
def test_bench_kmedoids(benchmark, ring_matrix):
    matrix, _ = ring_matrix
    result = benchmark(k_medoids, matrix, 2)
    assert len(result.labels) == matrix.num_objects
