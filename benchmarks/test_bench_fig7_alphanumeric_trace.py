"""FIG7 -- the alphanumeric comparison protocol (paper Figure 7 trace).

Reproduces the worked example (s='abc', t='bd', R=(0,1,3), alphabet
{a,b,c,d}) and benchmarks the CCM pipeline on DNA-scale workloads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.alphanumeric import (
    initiator_mask_strings,
    responder_ccm_matrices,
    third_party_decode_ccm,
    third_party_distances,
)
from repro.crypto.prng import make_prng
from repro.data.alphabet import DNA_ALPHABET, FIGURE7_ALPHABET
from repro.data.synthetic import dna_clusters
from repro.distance.edit import edit_distance


class SequenceRng:
    def __init__(self, offsets):
        self._offsets = list(offsets)
        self._pos = 0

    def next_below(self, _bound):
        value = self._offsets[self._pos % len(self._offsets)]
        self._pos += 1
        return value

    def next_below_block(self, count, bound):
        return np.asarray(
            [self.next_below(bound) for _ in range(count)], dtype=np.int64
        )

    def reset(self):
        self._pos = 0


def test_figure7_trace_reproduced(table):
    masked = initiator_mask_strings(["abc"], FIGURE7_ALPHABET, SequenceRng([0, 1, 3]))
    matrices = responder_ccm_matrices(["bd"], masked, FIGURE7_ALPHABET)
    ccm = third_party_decode_ccm(
        matrices[0][0], FIGURE7_ALPHABET, SequenceRng([0, 1, 3])
    )
    table(
        "FIG7: worked trace (paper values)",
        [
            ("DHJ s' = s + R", "paper: acb", f"measured: {masked[0]}"),
            ("TP CCM[0]", "paper: [1,0,1]", f"measured: {ccm[0].tolist()}"),
            ("TP CCM[1]", "paper: [1,1,1]", f"measured: {ccm[1].tolist()}"),
            (
                "edit distance",
                f"reference: {edit_distance('abc', 'bd')}",
                f"measured: {third_party_distances(matrices, FIGURE7_ALPHABET, SequenceRng([0, 1, 3]))[0][0]}",
            ),
        ],
        ("step", "paper", "measured"),
    )
    assert masked == ["acb"]
    assert ccm.tolist() == [[1, 0, 1], [1, 1, 1]]


def _dna(n: int, length: int, seed: int = 0):
    sequences, _ = dna_clusters([n], length=length, seed=seed)
    return sequences


@pytest.mark.benchmark(group="fig7-alphanumeric")
def test_bench_initiator_masking(benchmark):
    strings = _dna(32, 40)

    def run():
        return initiator_mask_strings(strings, DNA_ALPHABET, make_prng(1))

    masked = benchmark(run)
    assert len(masked) == 32


@pytest.mark.benchmark(group="fig7-alphanumeric")
def test_bench_responder_ccms(benchmark):
    strings_j = _dna(8, 40, seed=1)
    strings_k = _dna(8, 40, seed=2)
    masked = initiator_mask_strings(strings_j, DNA_ALPHABET, make_prng(1))

    def run():
        return responder_ccm_matrices(strings_k, masked, DNA_ALPHABET)

    matrices = benchmark(run)
    assert len(matrices) == 8


@pytest.mark.benchmark(group="fig7-alphanumeric")
def test_bench_tp_decode_and_dp(benchmark):
    strings_j = _dna(6, 30, seed=3)
    strings_k = _dna(6, 30, seed=4)
    masked = initiator_mask_strings(strings_j, DNA_ALPHABET, make_prng(5))
    matrices = responder_ccm_matrices(strings_k, masked, DNA_ALPHABET)

    def run():
        return third_party_distances(matrices, DNA_ALPHABET, make_prng(5))

    distances = benchmark(run)
    for m, t in enumerate(strings_k):
        for n, s in enumerate(strings_j):
            assert distances[m][n] == edit_distance(s, t)
