"""T-ACC -- the zero-accuracy-loss claim (Sections 1, 2 and 5).

"There is no loss of accuracy as is the case in [3]": the privately
constructed dissimilarity matrix must equal the trusted-aggregator
matrix bit-for-bit, and clustering outputs must be identical -- across
attribute types, linkage methods and protocol modes.  The sanitization
baseline is run alongside to exhibit the accuracy-vs-privacy trade-off
the paper's approach avoids.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.centralized import centralized_pipeline
from repro.baselines.sanitization import RotationSanitizer
from repro.clustering.linkage import agglomerative
from repro.clustering.quality import adjusted_rand_index
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.data.datasets import bird_flu, customer_segmentation, gaussian_numeric
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.types import LinkageMethod

DATASETS = {
    "gaussian_numeric": gaussian_numeric(per_cluster=8),
    "bird_flu": bird_flu(per_cluster=5),
    "customer_mixed": customer_segmentation(per_segment=6),
}


@pytest.mark.parametrize("name", list(DATASETS))
def test_private_matrix_equals_centralized(name, table):
    ds = DATASETS[name]
    session = ClusteringSession(
        SessionConfig(num_clusters=ds.num_clusters), ds.partitions
    )
    private = session.final_matrix()
    central, _, _, _ = centralized_pipeline(ds.partitions)
    max_diff = float(np.abs(private.condensed - central.condensed).max())
    table(
        f"T-ACC: matrix exactness on {name}",
        [(name, ds.index.total_objects, max_diff)],
        ("dataset", "objects", "max |private - central|"),
    )
    assert private.allclose(central, atol=0.0)


@pytest.mark.parametrize("linkage", list(LinkageMethod))
def test_clustering_identical_for_every_linkage(linkage):
    ds = DATASETS["gaussian_numeric"]
    session = ClusteringSession(
        SessionConfig(num_clusters=ds.num_clusters, linkage=linkage),
        ds.partitions,
    )
    result = session.run()
    _, _, central_labels, index = centralized_pipeline(
        ds.partitions, linkage=linkage, num_clusters=ds.num_clusters
    )
    private_labels = result.labels_for(list(index.refs()))
    assert adjusted_rand_index(central_labels, private_labels) == 1.0


def test_per_pair_mode_also_exact():
    ds = DATASETS["customer_mixed"]
    suite = ProtocolSuiteConfig(batch_numeric=False)
    session = ClusteringSession(
        SessionConfig(num_clusters=ds.num_clusters, suite=suite), ds.partitions
    )
    central, _, _, _ = centralized_pipeline(ds.partitions)
    assert session.final_matrix().allclose(central, atol=0.0)


def test_sanitization_loses_accuracy_where_protocol_does_not(table):
    """The contrast the paper draws against the sanitization family."""
    ds = DATASETS["gaussian_numeric"]
    truth = ds.labels_in_global_order()

    session = ClusteringSession(
        SessionConfig(num_clusters=ds.num_clusters), ds.partitions
    )
    private_labels = session.run().labels_for(list(ds.index.refs()))
    _, _, central_labels, _ = centralized_pipeline(
        ds.partitions, num_clusters=ds.num_clusters
    )
    ari_protocol_vs_central = adjusted_rand_index(central_labels, private_labels)

    rows = [("paper protocol", "exact", f"{ari_protocol_vs_central:.3f}")]
    from repro.data.partition import merge_partitions

    pooled, _ = merge_partitions(ds.partitions)
    degradations = []
    for noise in (0.5, 2.0, 8.0, 32.0):
        sanitized = RotationSanitizer(noise_scale=noise, seed=7).sanitize(pooled)
        data = np.asarray([[float(v) for v in r] for r in sanitized.rows])
        square = np.linalg.norm(data[:, None] - data[None, :], axis=2)
        labels = agglomerative(
            DissimilarityMatrix.from_square(square), "average"
        ).cut_at_k(ds.num_clusters)
        ari = adjusted_rand_index(central_labels, labels)
        degradations.append(ari)
        rows.append((f"sanitized noise={noise}", "approximate", f"{ari:.3f}"))
    table(
        "T-ACC: protocol vs sanitization (ARI against centralized clustering)",
        rows,
        ("pipeline", "fidelity", "ARI"),
    )
    assert ari_protocol_vs_central == 1.0
    assert min(degradations) < 1.0  # sanitization does lose accuracy
    assert degradations[-1] <= degradations[0] + 1e-9 or degradations[-1] < 1.0


@pytest.mark.benchmark(group="accuracy")
def test_bench_private_pipeline(benchmark):
    ds = DATASETS["gaussian_numeric"]

    def run():
        session = ClusteringSession(
            SessionConfig(num_clusters=ds.num_clusters), ds.partitions
        )
        return session.final_matrix()

    matrix = benchmark(run)
    assert matrix.num_objects == ds.index.total_objects


@pytest.mark.benchmark(group="accuracy")
def test_bench_centralized_pipeline(benchmark):
    ds = DATASETS["gaussian_numeric"]

    def run():
        return centralized_pipeline(ds.partitions)[0]

    matrix = benchmark(run)
    assert matrix.num_objects == ds.index.total_objects
