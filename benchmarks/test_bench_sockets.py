"""T-SOCKETS -- multi-process socket sessions vs the threaded mesh.

PR 8 made the transport pluggable: the same session spec runs either as
three socket endpoints on threads inside one interpreter, or as three
separate party processes under :class:`repro.apps.cluster.ClusterSupervisor`.
This module prices that choice:

* **threaded mesh** -- every endpoint a thread over unix domain
  sockets; one interpreter, shared imports, no spawn cost.
* **process cluster** -- the supervisor spawns one interpreter per
  party, each paying startup + import + handshake before construction.

Process isolation is what the crash-recovery story buys (SIGKILL a
party and the others survive), so it is expected to *cost* wall-clock,
not win it: the gated number is an **isolation efficiency** ratio
(threaded time / process time).  The bar guards the supervisor's
spawn-and-handshake path against degenerating into retry/backoff stalls
-- a healthy run is dominated by interpreter startup, a sick one by
reconnect timers -- without pretending processes should beat threads on
a workload this small.  Both runs are also checked bit-identical to
each other and to the in-process simulator before any timing is read.

Headline numbers persist to ``BENCH_sockets.json`` (required by
``benchmarks/check_gates.py``) to start the transport's perf record.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time

from repro.apps.cluster import ClusterSupervisor, unix_addresses
from repro.core.config import SessionConfig
from repro.core.session import ClusteringSession
from repro.data.matrix import AttributeSpec, DataMatrix, Schema
from repro.network.channel import Eavesdropper
from repro.parties.runner import PartyRunner, encode_spec
from repro.types import AttributeType

#: Isolation-efficiency floor: a process cluster may cost at most
#: 1/bar times the threaded mesh (0.01 -> at most 100x; measured
#: ~0.03x, i.e. ~30x, on an idle machine).  The ratio is spawn-bound
#: when healthy; the bar only trips when the supervisor path stalls in
#: reconnect backoff or handshake timeouts, which costs whole retry
#: deadlines rather than interpreter startups.  CI relaxes it further
#: -- shared runners fork slowly.
EFFICIENCY_BAR = float(os.environ.get("SOCKETS_EFFICIENCY_BAR", "0.01"))
ROWS_PER_SITE = int(os.environ.get("SOCKETS_BENCH_ROWS", "16"))

SCHEMA = Schema(
    [
        AttributeSpec("load", AttributeType.NUMERIC, precision=2),
        AttributeSpec("tier", AttributeType.CATEGORICAL),
    ]
)
PARTIES = ["siteA", "siteB", "TP"]


def _rows(seed: int) -> list[list]:
    tiers = ["gold", "silver", "bronze"]
    return [
        [((seed * 37 + i * 13) % 997) / 4.0, tiers[(seed + i) % 3]]
        for i in range(ROWS_PER_SITE)
    ]


def _workload():
    rows = {"siteA": _rows(1), "siteB": _rows(2)}
    config = SessionConfig(num_clusters=3, master_seed=61)
    return config, rows


def _best_of(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run_threaded(spec: bytes) -> dict[str, dict]:
    runners = {p: PartyRunner(spec, p) for p in PARTIES}
    reports: dict[str, dict] = {}
    errors: dict[str, BaseException] = {}

    def drive(party: str) -> None:
        try:
            reports[party] = runners[party].run()
        except BaseException as exc:  # surfaced below, never swallowed
            errors[party] = exc

    threads = [threading.Thread(target=drive, args=(p,)) for p in PARTIES]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    for runner in runners.values():
        runner.close()
    assert not errors, f"party errors: {errors}"
    return reports


def _fresh_run_dir(root, tag: str):
    path = root / tag
    path.mkdir()
    return path


def _spec_for(run_dir, config, rows) -> bytes:
    spec = encode_spec(config, SCHEMA, rows, unix_addresses(PARTIES, str(run_dir)))
    (run_dir / "session.spec").write_bytes(spec)
    return spec


def _run_processes(run_dir) -> dict[str, dict]:
    supervisor = ClusterSupervisor(str(run_dir / "session.spec"), str(run_dir))
    return supervisor.run()


def _lanes(reports) -> dict:
    lanes: dict[tuple[str, str], list[tuple[str, str, str]]] = {}
    for party, report in reports.items():
        for _era, recipient, kind, tag, digest in report["transcript"]:
            lanes.setdefault((party, recipient), []).append((kind, tag, digest))
    return lanes


def _simulator_reference(config, rows):
    partitions = {s: DataMatrix(SCHEMA, [tuple(r) for r in rs]) for s, rs in rows.items()}
    session = ClusteringSession(config, partitions, tp_name="TP")
    tap = Eavesdropper("ref")
    for i, a in enumerate(PARTIES):
        for b in PARTIES[i + 1 :]:
            session.network.channel(a, b).attach_tap(tap)
    result = session.run()
    lanes: dict[tuple[str, str], list[tuple[str, str, str]]] = {}
    for frame in tap.frames:
        lanes.setdefault((frame.sender, frame.recipient), []).append(
            (frame.kind, frame.tag, hashlib.sha256(frame.wire).hexdigest())
        )
    return lanes, result


def test_processes_vs_threads_throughput(tmp_path, table, bench_store):
    """Threaded mesh vs supervised process cluster on one session spec.

    Equality first (three-way: simulator, threads, processes), timing
    second; the efficiency gate reads only the timed runs.
    """
    config, rows = _workload()
    ref_lanes, ref_result = _simulator_reference(config, rows)
    payload = ref_result.to_payload()

    check_dir = _fresh_run_dir(tmp_path, "check-threads")
    threaded_reports = _run_threaded(_spec_for(check_dir, config, rows))
    assert _lanes(threaded_reports) == ref_lanes
    assert all(threaded_reports[p]["result"] == payload for p in PARTIES)

    proc_dir = _fresh_run_dir(tmp_path, "check-procs")
    _spec_for(proc_dir, config, rows)
    process_reports = _run_processes(proc_dir)
    assert _lanes(process_reports) == ref_lanes
    assert all(process_reports[p]["result"] == payload for p in PARTIES)

    counter = iter(range(100))

    def timed_threads() -> None:
        run_dir = _fresh_run_dir(tmp_path, f"threads-{next(counter)}")
        _run_threaded(_spec_for(run_dir, config, rows))

    def timed_processes() -> None:
        run_dir = _fresh_run_dir(tmp_path, f"procs-{next(counter)}")
        _spec_for(run_dir, config, rows)
        _run_processes(run_dir)

    threads_time = _best_of(timed_threads)
    process_time = _best_of(timed_processes)
    efficiency = threads_time / process_time

    total_rows = sum(len(r) for r in rows.values())
    table(
        "T-SOCKETS: one session, 3 endpoints (2 sites x "
        f"{ROWS_PER_SITE} rows, unix sockets)",
        [
            ("threaded mesh", f"{threads_time * 1e3:.0f} ms", f"{1 / threads_time:.2f}/s"),
            ("process cluster", f"{process_time * 1e3:.0f} ms", f"{1 / process_time:.2f}/s"),
            ("isolation efficiency", f"{efficiency:.3f}x", f"(gate {EFFICIENCY_BAR}x)"),
        ],
        ("path", "session time", "sessions"),
    )
    bench_store(
        "sockets",
        {
            "processes_vs_threads": {
                "parties": len(PARTIES),
                "rows_total": total_rows,
                "threaded_ms": round(threads_time * 1e3, 1),
                "process_ms": round(process_time * 1e3, 1),
                "threaded_sessions_per_second": round(1 / threads_time, 2),
                "process_sessions_per_second": round(1 / process_time, 2),
                "speedup": round(efficiency, 4),
                "gate": EFFICIENCY_BAR,
            }
        },
    )
    assert efficiency >= EFFICIENCY_BAR, (
        f"process cluster cost {1 / efficiency:.0f}x the threaded mesh "
        f"(efficiency {efficiency:.3f}x, gate {EFFICIENCY_BAR}x): the "
        "supervisor spawn/handshake path is stalling"
    )
