"""Fail if any persisted benchmark measurement regressed past its gate.

Walks every ``BENCH_*.json`` at the repo root; any JSON object carrying
both a ``speedup`` and a ``gate`` key is a gated measurement, and the
recorded speedup must meet the recorded gate.  Objects carrying both
``peak_rss_mb`` and ``rss_cap_mb`` are gated the other way around: the
recorded peak RSS must stay under the recorded ceiling (the storage
bench's memory-bound runs).  Benchmarks persist the gate they actually
ran under (CI relaxes the bars via env vars for noisy shared runners),
so this check is consistent in both environments while still catching a
bench that silently recorded a regression.

Usage: ``python benchmarks/check_gates.py`` (exit code 1 on regression).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Artifacts that must exist for the gate check to pass: a bench that
#: silently stopped persisting would otherwise "pass" by absence.
REQUIRED_BENCH_FILES = (
    "BENCH_clustering.json",
    "BENCH_faults.json",
    "BENCH_incremental.json",
    "BENCH_parallel.json",
    "BENCH_sockets.json",
    "BENCH_storage.json",
    "BENCH_transport.json",
)


def gated_entries(node, path=""):
    """Yield (path, speedup, gate) for every gated object in the tree."""
    if isinstance(node, dict):
        if "speedup" in node and "gate" in node:
            yield path, float(node["speedup"]), float(node["gate"])
        for key, value in node.items():
            yield from gated_entries(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from gated_entries(value, f"{path}[{index}]")


def rss_entries(node, path=""):
    """Yield (path, peak_rss_mb, rss_cap_mb) for every RSS-gated object."""
    if isinstance(node, dict):
        if "peak_rss_mb" in node and "rss_cap_mb" in node:
            yield path, float(node["peak_rss_mb"]), float(node["rss_cap_mb"])
        for key, value in node.items():
            yield from rss_entries(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from rss_entries(value, f"{path}[{index}]")


def main() -> int:
    failures = []
    checked = 0
    for required in REQUIRED_BENCH_FILES:
        if not (REPO_ROOT / required).exists():
            failures.append(f"{required}: missing (bench stopped persisting?)")
    for bench_file in sorted(REPO_ROOT.glob("BENCH_*.json")):
        try:
            payload = json.loads(bench_file.read_text())
        except (OSError, ValueError) as error:
            failures.append(f"{bench_file.name}: unreadable ({error})")
            continue
        for path, speedup, gate in gated_entries(payload):
            checked += 1
            status = "ok" if speedup >= gate else "REGRESSED"
            print(f"{bench_file.name}:{path}: {speedup}x (gate {gate}x) {status}")
            if speedup < gate:
                failures.append(
                    f"{bench_file.name}:{path}: {speedup}x below gate {gate}x"
                )
        for path, peak, cap in rss_entries(payload):
            checked += 1
            status = "ok" if peak <= cap else "REGRESSED"
            print(
                f"{bench_file.name}:{path}: {peak} MB RSS (cap {cap} MB) {status}"
            )
            if peak > cap:
                failures.append(
                    f"{bench_file.name}:{path}: {peak} MB RSS over cap {cap} MB"
                )
    if not checked:
        print("no gated benchmark entries found")
    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
