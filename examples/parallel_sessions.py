"""Parallel execution: real worker threads for construction and serving.

A consortium of four insurers clusters pooled claims.  The comparison
protocol runs of one session are independent per (attribute, holder
pair), so the construction scheduler can execute them on a worker pool
-- and a batch of whole sessions can be served concurrently.  The
network simulates per-message link latency here, because that is what a
deployed consortium actually pays per protocol round trip; the parallel
schedule overlaps those round trips (and, on multicore hardware, the
numpy work too).  The headline guarantee: every matrix, dendrogram and
published result is bit-identical to the sequential schedule's, for any
worker count.
"""

import time

from repro.apps.sessions import SessionBatch
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.types import AttributeType

SCHEMA = [
    AttributeSpec("claim_amount", AttributeType.NUMERIC, precision=2),
    AttributeSpec("customer_age", AttributeType.NUMERIC, precision=0),
]
SITES = ["acme", "birlik", "corex", "delta"]


def partitions(shift: int = 0):
    return {
        site: DataMatrix(
            SCHEMA,
            [
                [((i * 37 + s * 11 + shift) % 500) / 4.0, (i * 7 + s) % 80]
                for i in range(8)
            ],
        )
        for s, site in enumerate(SITES)
    }


def timed(label: str, fn):
    start = time.perf_counter()
    out = fn()
    print(f"{label}: {(time.perf_counter() - start) * 1e3:.0f} ms")
    return out


# 2 ms simulated latency per protocol message, as a WAN deployment pays.
def config(schedule: str) -> SessionConfig:
    return SessionConfig(
        num_clusters=3,
        master_seed=99,
        max_workers=4,
        suite=ProtocolSuiteConfig(
            construction_schedule=schedule, link_latency=0.002
        ),
    )


# One session: sequential vs parallel construction, identical bits.
sequential_batch = SessionBatch(config("sequential"), SITES)
parallel_batch = SessionBatch(config("parallel"), SITES)
seq_session = sequential_batch.session(partitions())
par_session = parallel_batch.session(partitions())
seq_result = timed("sequential construction", seq_session.run)
par_result = timed("parallel construction (4 workers)", par_session.run)
print(
    "parallel result identical to sequential: "
    f"{par_result.to_payload() == seq_result.to_payload()}"
)
print(
    "merged matrices bit-identical: "
    f"{par_session.final_matrix() == seq_session.final_matrix()}"
)

# Heavy traffic: six datasets served concurrently over one worker pool
# (Diffie-Hellman setup already amortised by the batch).
datasets = [partitions(shift) for shift in range(6)]
serial_results = timed("run_many (serial)", lambda: sequential_batch.run_many(datasets))
pooled_results = timed(
    "run_many_parallel (4 workers)",
    lambda: sequential_batch.run_many_parallel(datasets),
)
identical = [r.to_payload() for r in pooled_results] == [
    r.to_payload() for r in serial_results
]
print(f"batch results identical to serial serving: {identical}")
