"""Executable security analysis: the attacks of Section 4.1 and their
defences.

Three demonstrations:
1. an eavesdropper on *unsecured* channels recovers private inputs
   exactly as the paper's analysis predicts,
2. securing the channels (the paper's requirement) blinds the same
   eavesdropper completely,
3. the third party's frequency-analysis attack succeeds against the
   batched numeric protocol over a small value domain, and collapses
   under the paper's own mitigation (unique randoms per pair).

Run:  python examples/attack_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AttributeSpec,
    AttributeType,
    ClusteringSession,
    DataMatrix,
    SessionConfig,
)
from repro.attacks.eavesdrop import (
    initiator_eavesdrop_responder_values,
    tp_eavesdrop_initiator_candidates,
)
from repro.attacks.frequency import FrequencyAttack
from repro.core import labels as label_grammar
from repro.core.config import ProtocolSuiteConfig
from repro.core.numeric import (
    initiator_mask_batch,
    responder_matrix_batch,
)
from repro.crypto.prng import make_prng
from repro.exceptions import ChannelError
from repro.network.channel import Eavesdropper

SECRET_J = [13, 42, 7]
SECRET_K = [20, 5]


def _tapped_session(secure: bool):
    schema = [AttributeSpec("v", AttributeType.NUMERIC, precision=0)]
    partitions = {
        "J": DataMatrix(schema, [[v] for v in SECRET_J]),
        "K": DataMatrix(schema, [[v] for v in SECRET_K]),
    }
    suite = ProtocolSuiteConfig(secure_channels=secure)
    session = ClusteringSession(
        SessionConfig(num_clusters=2, master_seed=3, suite=suite), partitions
    )
    tap = Eavesdropper("mallory")
    session.network.attach_tap("J", "K", tap)
    session.network.attach_tap("K", "TP", tap)
    session.execute_protocol()
    return session, tap


def demo_eavesdropping_insecure() -> None:
    print("=" * 70)
    print("1. Eavesdropping on UNSECURED channels (paper Section 4.1)")
    print("=" * 70)
    session, tap = _tapped_session(secure=False)
    vector_frame = next(f for f in tap.frames if f.kind == "masked_vector")
    matrix_frame = next(f for f in tap.frames if f.kind == "comparison_matrix")

    rng_jt = session.third_party.secret_with("J").prng(
        label_grammar.numeric_jt("v", "J", "K"), "hash_drbg"
    )
    candidates = tp_eavesdrop_initiator_candidates(vector_frame, rng_jt, 64)
    print(f"  DHJ's secret inputs:        {SECRET_J}")
    print(f"  TP's candidate pairs:       {candidates}")
    print("  -> the paper's prediction: x is (x''-r) or (r-x''); truth is")
    print("     always one of the two candidates.")

    holder = session.holders["J"]
    rng_jk = holder.secret_with("K").prng(
        label_grammar.numeric_jk("v", "J", "K"), "hash_drbg"
    )
    rng_jt_j = holder.secret_with("TP").prng(
        label_grammar.numeric_jt("v", "J", "K"), "hash_drbg"
    )
    recovered = initiator_eavesdrop_responder_values(
        matrix_frame, SECRET_J, rng_jk, rng_jt_j, 64
    )
    print(f"  DHK's secret inputs:        {SECRET_K}")
    print(f"  DHJ recovers them EXACTLY:  {recovered}")
    print()


def demo_eavesdropping_secured() -> None:
    print("=" * 70)
    print("2. Same attacks with SECURED channels (the paper's requirement)")
    print("=" * 70)
    _session, tap = _tapped_session(secure=True)
    blocked = 0
    for frame in tap.frames:
        try:
            frame.try_read_payload()
        except ChannelError:
            blocked += 1
    print(f"  frames captured: {len(tap.frames)}")
    print(f"  frames the eavesdropper could decode: {len(tap.frames) - blocked}")
    print("  -> authenticated encryption reduces the tap to traffic analysis.")
    print()


def demo_frequency_attack() -> None:
    print("=" * 70)
    print("3. The TP's frequency-analysis attack on batched comparisons")
    print("=" * 70)
    rng = np.random.default_rng(5)
    domain = (0, 9)
    values_j = [int(v) for v in rng.integers(0, 10, size=6)]
    values_k = [int(v) for v in rng.integers(0, 10, size=8)]

    rng_jk, rng_jt = make_prng("jk"), make_prng("jt")
    masked = initiator_mask_batch(values_j, rng_jk, rng_jt, 64)
    matrix = responder_matrix_batch(values_k, masked, make_prng("jk"))
    tp_rng = make_prng("jt")
    residuals = []
    for row in matrix:
        residuals.append([entry - tp_rng.next_bits(64) for entry in row])
        tp_rng.reset()

    outcome = FrequencyAttack(*domain).run(
        np.asarray(residuals, dtype=object).astype(np.int64)
    )
    print(f"  DHK's secret vector: {tuple(values_k)}")
    print(f"  TP recovers:         {outcome.recovered}")
    rate = outcome.exact_recovery_rate(values_k)
    print(f"  exact recovery rate: {rate:.0%}  (batch mode, domain {domain})")
    print("  -> mitigation: ProtocolSuiteConfig(batch_numeric=False) uses a")
    print("     unique random per pair; see benchmarks/test_bench_freq_attack.py")
    print("     for the measured collapse of this attack.")
    print()


def main() -> None:
    demo_eavesdropping_insecure()
    demo_eavesdropping_secured()
    demo_frequency_attack()


if __name__ == "__main__":
    main()
