"""Streaming arrivals: a standing consortium absorbing records.

Three hospitals cluster their pooled patients without sharing records.
Instead of re-running the whole construction when new patients register
(or leave), the consortium keeps one ClusteringService alive: arrival
batches run the comparison protocols only for the new pairs, departures
just shrink the matrices, and every published result is bit-identical
to what a from-scratch session over the current population would emit.
"""

from repro.apps.service import ClusteringService
from repro.core.config import SessionConfig
from repro.core.session import ClusteringSession
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.types import AttributeType

SCHEMA = [
    AttributeSpec("age", AttributeType.NUMERIC, precision=0),
    AttributeSpec("blood_marker", AttributeType.NUMERIC, precision=2),
]

initial = {
    "mercy": DataMatrix(SCHEMA, [[34, 1.25], [71, 9.5], [36, 1.5]]),
    "north": DataMatrix(SCHEMA, [[38, 1.0], [67, 9.12]]),
    "west": DataMatrix(SCHEMA, [[40, 2.0], [69, 8.75], [33, 1.12]]),
}

config = SessionConfig(num_clusters=2, master_seed=77)
service = ClusteringService(config, initial)
result = service.recluster()
print(f"day 0: {service.total_objects()} patients, "
      f"clusters {[len(c.members) for c in result.clusters]}")

# Day 1: two new patients at mercy, one at west -- protocols run only
# for pairs that touch an arrival.
bytes_before = service.total_bytes()
result = service.ingest({
    "mercy": DataMatrix(SCHEMA, [[52, 5.5], [29, 1.0]]),
    "west": DataMatrix(SCHEMA, [[70, 9.25]]),
})
print(f"day 1: ingested 3 arrivals with "
      f"{service.total_bytes() - bytes_before:,} protocol bytes, "
      f"clusters {[len(c.members) for c in result.clusters]}")

# Day 2: a patient leaves north -- no protocol rounds at all, the
# matrices just shrink.
bytes_before = service.total_bytes()
result = service.retire({"north": [0]})
print(f"day 2: retired 1 record with "
      f"{service.total_bytes() - bytes_before:,} protocol bytes")

# The incremental state is exactly what a from-scratch run would build.
rebuild = ClusteringSession(config, service.partitions())
identical = service.matrix() == rebuild.final_matrix()
print(f"incremental matrix identical to full rebuild: {identical}")
