"""Private outlier detection -- the second §6 application.

Two banks hold disjoint transaction profiles.  Jointly they can spot
accounts whose behaviour is anomalous *relative to the combined
population* -- something neither bank can see alone -- without
exchanging a single raw value.  The third party scores each object by
its k-nearest-neighbour distance in the privately constructed
dissimilarity matrix.

Run:  python examples/outlier_detection.py
"""

from __future__ import annotations

from repro import AttributeSpec, AttributeType, DataMatrix, SessionConfig
from repro.apps.sessions import run_private_outlier_detection


def main() -> None:
    schema = [
        AttributeSpec("monthly_volume", AttributeType.NUMERIC, precision=2),
        AttributeSpec("avg_txn", AttributeType.NUMERIC, precision=2),
    ]
    # Normal accounts cluster around (3k, 45) and (12k, 260); the
    # planted anomaly at BANK_B sits far from both blobs -- but close
    # enough to BANK_B's *local* population mean that B alone might
    # not flag it.
    bank_a = DataMatrix(
        schema,
        [
            [3100.50, 44.10],
            [2900.25, 47.80],
            [3250.00, 42.30],
            [12100.00, 255.00],
            [11800.75, 262.40],
        ],
    )
    bank_b = DataMatrix(
        schema,
        [
            [3050.00, 45.90],
            [12350.50, 258.10],
            [7600.00, 151.00],  # the anomaly: between both blobs
            [2980.10, 46.50],
        ],
    )

    report, session = run_private_outlier_detection(
        {"BANK_A": bank_a, "BANK_B": bank_b},
        k=2,
        top_n=1,
        config=SessionConfig(num_clusters=2, master_seed=13),
    )

    print("k-NN outlier scores (k=2), global order:")
    for ref, score in zip(session.index.refs(), report.scores):
        marker = "  <-- flagged" if ref in report.flagged else ""
        print(f"  {ref}: {score:.4f}{marker}")
    print()
    print(f"Flagged: {[str(r) for r in report.flagged]}")
    print(f"Total protocol traffic: {session.total_bytes():,} bytes")


if __name__ == "__main__":
    main()
