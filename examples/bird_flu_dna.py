"""The paper's Section 1 motivating scenario: multi-institution DNA
clustering for disease diagnosis.

"Several institutions are gathering DNA data of individuals infected
with bird flu and want to cluster this data in order to diagnose the
disease.  Since DNA data is private, these institutions can not simply
aggregate their data for processing but should run a privacy preserving
clustering protocol."

This example synthesises three viral strains, distributes infected
individuals' sequences across three institutions, runs the full
protocol (edit distance via the CCM masking protocol of Section 4.2)
and evaluates how well the published clusters recover the strains.

Run:  python examples/bird_flu_dna.py
"""

from __future__ import annotations

from repro import ClusteringSession, SessionConfig
from repro.clustering.linkage import agglomerative
from repro.clustering.quality import adjusted_rand_index, cophenetic_correlation, purity
from repro.clustering.render import render_dendrogram
from repro.data.datasets import bird_flu


def main() -> None:
    dataset = bird_flu(
        num_institutions=3, per_cluster=8, num_strains=3, length=40, seed=11
    )
    print("Institutions and their (private) partition sizes:")
    for site, matrix in sorted(dataset.partitions.items()):
        example = matrix.rows[0][0]
        print(f"  institution {site}: {matrix.num_rows} sequences "
              f"(e.g. {example[:24]}...)")
    print()

    config = SessionConfig(num_clusters=3, linkage="average", master_seed=11)
    session = ClusteringSession(config, dataset.partitions)
    result = session.run()

    print("Published clusters (site-qualified ids only -- no sequences,")
    print("no distances leave the third party):")
    print(result.format_figure13())
    print()

    refs = list(dataset.index.refs())
    truth = dataset.labels_in_global_order()
    predicted = result.labels_for(refs)
    print("Strain recovery against (withheld) ground truth:")
    print(f"  adjusted Rand index: {adjusted_rand_index(truth, predicted):.3f}")
    print(f"  purity:              {purity(truth, predicted):.3f}")
    print()
    print(f"Total protocol traffic: {session.total_bytes():,} bytes")
    print("Per-institution upload:")
    for site in dataset.index.sites:
        print(f"  {site}: {session.network.bytes_sent_by(site):,} bytes")
    print()

    # TP-side inspection (never published -- Section 5 keeps distances
    # secret): the strain tree over anonymous ids, plus its Newick
    # export for phylogenetic tooling.
    matrix = session.final_matrix()
    dendrogram = agglomerative(matrix, "average")
    ids = [str(ref) for ref in refs]
    print("Third-party-side strain dendrogram (internal, anonymous ids):")
    print(render_dendrogram(dendrogram, ids, width=48))
    print()
    print(f"Cophenetic correlation: {cophenetic_correlation(matrix, dendrogram):.3f}")
    print("Newick export (first 100 chars):")
    print(" ", dendrogram.to_newick(ids)[:100] + "...")


if __name__ == "__main__":
    main()
