"""Quickstart: two hospitals cluster patient data without sharing it.

Each hospital holds a horizontal partition (its own patients).  A third
party coordinates the privacy-preserving protocols of İnan et al.
(ICDEW 2006), builds the global dissimilarity matrix without ever seeing
a raw value, clusters it, and publishes membership lists only.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AttributeSpec,
    AttributeType,
    ClusteringSession,
    DataMatrix,
    SessionConfig,
)


def main() -> None:
    # The pre-agreed attribute list (paper Section 3): both data holders
    # and the third party know the schema, never the values.
    schema = [
        AttributeSpec("age", AttributeType.NUMERIC, precision=0),
        AttributeSpec("bmi", AttributeType.NUMERIC, precision=1),
    ]

    hospital_a = DataMatrix(
        schema,
        [
            [34, 22.5],
            [71, 27.1],
            [36, 23.0],
            [68, 29.4],
        ],
    )
    hospital_b = DataMatrix(
        schema,
        [
            [38, 21.9],
            [67, 28.2],
            [40, 24.3],
        ],
    )

    config = SessionConfig(num_clusters=2, linkage="average", master_seed=7)
    session = ClusteringSession(config, {"A": hospital_a, "B": hospital_b})
    result = session.run()

    print("Published clustering result (paper Figure 13 format):")
    print(result.format_figure13())
    print()
    print("Per-cluster avg squared distance (the quality statistic the")
    print("third party may publish, Section 5):")
    for cluster_id, value in sorted(result.quality.items()):
        print(f"  Cluster{cluster_id + 1}: {value:.4f}")
    print()
    print(f"Total protocol traffic: {session.total_bytes()} bytes")
    print(f"  hospital A sent: {session.network.bytes_sent_by('A')} bytes")
    print(f"  hospital B sent: {session.network.bytes_sent_by('B')} bytes")
    print(f"  third party sent: {session.network.bytes_sent_by('TP')} bytes")


if __name__ == "__main__":
    main()
