"""Private record linkage -- the application Sections 1 and 6 point to.

Two organisations suspect they share customers but cannot exchange
records.  The paper's protocols give the third party exactly the
cross-site distance block it needs to link records, without either side
revealing a value.  Matching runs on the privately-built dissimilarity
matrix; results name record *ids*, not contents.

Run:  python examples/record_linkage.py
"""

from __future__ import annotations

from repro import (
    AttributeSpec,
    AttributeType,
    ClusteringSession,
    DataMatrix,
    SessionConfig,
)
from repro.apps.linkage import private_record_linkage
from repro.data.alphabet import PRINTABLE_ALPHABET


def main() -> None:
    schema = [
        AttributeSpec("name", AttributeType.ALPHANUMERIC, alphabet=PRINTABLE_ALPHABET),
        AttributeSpec("birth_year", AttributeType.NUMERIC, precision=0),
    ]
    # Three true shared entities (with typos/transcription noise) plus
    # distractors on both sides.
    bank = DataMatrix(
        schema,
        [
            ["Jane Doe", 1984],
            ["Johann Weiss", 1972],
            ["Maria Rossi", 1990],
            ["Arthur Pendragon", 1960],
        ],
    )
    insurer = DataMatrix(
        schema,
        [
            ["Jane  Do", 1984],       # typo'd duplicate of bank record 0
            ["Maria Rosi", 1990],      # typo'd duplicate of bank record 2
            ["Johan Weiss", 1972],     # typo'd duplicate of bank record 1
            ["Lancelot du Lac", 1955],
        ],
    )

    session = ClusteringSession(
        SessionConfig(num_clusters=2, master_seed=31),
        {"BANK": bank, "INS": insurer},
    )
    matrix = session.final_matrix()

    matches = private_record_linkage(
        matrix, session.index, "BANK", "INS", threshold=0.35, strategy="optimal"
    )
    print("Linked record pairs (ids only -- neither side saw the other's data):")
    for match in matches:
        print(
            f"  {match.left} <-> {match.right}   distance={match.distance:.4f}"
        )
    print()
    expected = {(0, 0), (2, 1), (1, 2)}
    found = {(m.left.local_id, m.right.local_id) for m in matches}
    print(f"True duplicates found: {len(found & expected)}/3, "
          f"false links: {len(found - expected)}")
    print(f"Total protocol traffic: {session.total_bytes():,} bytes")


if __name__ == "__main__":
    main()
