"""Cross-company customer segmentation over mixed attribute types.

Two companies hold disjoint customer bases (horizontal partitions) with
numeric (age, spend), categorical (plan) and alphanumeric (visit
pattern) attributes -- exercising all three comparison protocols of the
paper in a single session.  It also demonstrates Section 5's
per-holder weighting: "Every data holder can impose a different weight
vector", receiving its own clustering of the joint customer base.

Run:  python examples/customer_segmentation.py
"""

from __future__ import annotations

from repro import ClusteringSession, SessionConfig
from repro.clustering.quality import adjusted_rand_index
from repro.data.datasets import customer_segmentation


def main() -> None:
    dataset = customer_segmentation(
        num_companies=2, per_segment=10, num_segments=3, seed=23
    )
    print("Schema (agreed by all parties in advance, Section 3):")
    for spec in dataset.schema:
        extra = ""
        if spec.alphabet is not None:
            extra = f", alphabet size {spec.alphabet.size}"
        print(f"  {spec.name}: {spec.attr_type.value}{extra}")
    print()

    # Company A cares mostly about spend; company B about behaviour.
    config = SessionConfig(
        num_clusters=3,
        linkage="average",
        master_seed=23,
        per_holder_weights={
            "A": [0.5, 3.0, 0.5, 0.5],
            "B": [0.5, 0.5, 0.5, 3.0],
        },
    )
    session = ClusteringSession(config, dataset.partitions)
    per_holder = session.run_per_holder()

    truth = dataset.labels_in_global_order()
    refs = list(dataset.index.refs())
    for site, result in sorted(per_holder.items()):
        predicted = result.labels_for(refs)
        ari = adjusted_rand_index(truth, predicted)
        print(f"Company {site}'s result (its own weight vector):")
        print(result.format_figure13())
        print(f"  segment recovery (ARI): {ari:.3f}")
        print()

    print(f"Total protocol traffic: {session.total_bytes():,} bytes")


if __name__ == "__main__":
    main()
