"""Analytic communication-cost model and measurement harness.

The paper's per-protocol analyses (Sections 4.1-4.3):

* numeric  -- initiator DHJ: ``O(n^2 + n)`` (local matrix + masked
  vector); responder DHK: ``O(m^2 + m*n)`` (local matrix + comparison
  matrix),
* alphanumeric -- DHJ: ``O(n^2 + n*p)``; DHK: ``O(m^2 + m*q*n*p)``
  (p, q = string lengths),
* categorical -- each holder: ``O(n)``.

:class:`CostModel` states those formulas in *element counts* with
explicit byte constants; the ``measure_*`` functions run the real
protocols through the simulated network and return measured wire bytes
broken down the same way, so benchmarks can both eyeball the constants
and assert the asymptotic slopes via :func:`fit_loglog_slope`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.session import ClusteringSession
from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.data.synthetic import dna_clusters, integer_clusters
from repro.exceptions import ConfigurationError
from repro.types import AttributeType


@dataclass(frozen=True)
class CostModel:
    """Element-count predictions with byte constants.

    ``value_bytes`` approximates the serialized size of one masked
    numeric value (mask width / 8 plus framing); ``char_bytes`` the cost
    of one CCM cell (uint8); ``ciphertext_bytes`` one deterministic
    ciphertext.
    """

    value_bytes: float = 15.0
    char_bytes: float = 1.0
    ciphertext_bytes: float = 17.0
    float_bytes: float = 9.0

    # Element counts straight from the paper's terms.

    @staticmethod
    def local_matrix_entries(n: int) -> int:
        """Condensed local dissimilarity matrix: n(n-1)/2 entries."""
        return n * (n - 1) // 2

    def numeric_initiator_bytes(self, n: int) -> float:
        """DHJ's O(n^2 + n): local matrix to TP + masked vector to DHK."""
        return (
            self.local_matrix_entries(n) * self.float_bytes
            + n * self.value_bytes
        )

    def numeric_responder_bytes(self, m: int, n: int) -> float:
        """DHK's O(m^2 + m*n): local matrix + comparison matrix."""
        return (
            self.local_matrix_entries(m) * self.float_bytes
            + m * n * self.value_bytes
        )

    def alnum_initiator_bytes(self, n: int, p: int) -> float:
        """DHJ's O(n^2 + n*p): local matrix + masked strings."""
        return (
            self.local_matrix_entries(n) * self.float_bytes
            + n * p * self.char_bytes
        )

    def alnum_responder_bytes(self, m: int, n: int, p: int, q: int) -> float:
        """DHK's O(m^2 + m*q*n*p): local matrix + intermediary CCMs."""
        return (
            self.local_matrix_entries(m) * self.float_bytes
            + m * q * n * p * self.char_bytes
        )

    def categorical_holder_bytes(self, n: int) -> float:
        """Each holder's O(n): one ciphertext per object."""
        return n * self.ciphertext_bytes


def fit_loglog_slope(sizes: Sequence[float], costs: Sequence[float]) -> float:
    """Least-squares slope of log(cost) against log(size).

    The benchmarks assert these against the paper's exponents (2 for the
    quadratic terms, 1 for the linear ones).
    """
    if len(sizes) != len(costs) or len(sizes) < 2:
        raise ConfigurationError("need >= 2 aligned (size, cost) points")
    xs = np.log(np.asarray(sizes, dtype=np.float64))
    ys = np.log(np.asarray(costs, dtype=np.float64))
    slope, _intercept = np.polyfit(xs, ys, 1)
    return float(slope)


def _two_party_session(
    schema: list[AttributeSpec],
    rows_j: list[list],
    rows_k: list[list],
    batch: bool,
    secure: bool,
    seed: int,
    mask_bits: int = 64,
    prng_kind: str | None = None,
) -> ClusteringSession:
    kwargs = {}
    if prng_kind is not None:
        kwargs["prng_kind"] = prng_kind
    suite = ProtocolSuiteConfig(
        batch_numeric=batch,
        secure_channels=secure,
        mask_bits=mask_bits,
        **kwargs,
    )
    config = SessionConfig(num_clusters=2, master_seed=seed, suite=suite)
    partitions = {
        "J": DataMatrix(schema, rows_j),
        "K": DataMatrix(schema, rows_k),
    }
    return ClusteringSession(config, partitions)


def _breakdown(session: ClusteringSession) -> dict[str, int]:
    net = session.network
    return {
        "initiator_local_matrix": net.bytes_of_kind("J", "TP", "local_matrix"),
        "initiator_masked": (
            net.bytes_of_kind("J", "K", "masked_vector")
            + net.bytes_of_kind("J", "K", "masked_matrix")
            + net.bytes_of_kind("J", "K", "masked_strings")
        ),
        "responder_local_matrix": net.bytes_of_kind("K", "TP", "local_matrix"),
        "responder_matrix": (
            net.bytes_of_kind("K", "TP", "comparison_matrix")
            + net.bytes_of_kind("K", "TP", "ccm_matrices")
        ),
        "initiator_total": net.bytes_sent_by("J"),
        "responder_total": net.bytes_sent_by("K"),
        "grand_total": net.total_bytes(),
    }


def measure_numeric_protocol(
    n_initiator: int,
    m_responder: int,
    batch: bool = True,
    secure: bool = False,
    seed: int = 0,
    mask_bits: int = 64,
    prng_kind: str | None = None,
) -> dict[str, int]:
    """Run the numeric protocol for sizes (n, m); return measured bytes.

    ``secure=False`` by default so byte counts reflect pure protocol
    content (the paper's analysis); secure mode adds the constant
    48-byte seal overhead per message.  ``mask_bits`` and ``prng_kind``
    exist for the ablation benchmarks.
    """
    total = n_initiator + m_responder
    rows, _ = integer_clusters([total], dim=1, separation=0, spread=500, seed=seed)
    schema = [AttributeSpec("value", AttributeType.NUMERIC, precision=0)]
    session = _two_party_session(
        schema,
        rows[:n_initiator],
        rows[n_initiator:],
        batch,
        secure,
        seed,
        mask_bits=mask_bits,
        prng_kind=prng_kind,
    )
    session.execute_protocol()
    return _breakdown(session)


def measure_alphanumeric_protocol(
    n_initiator: int,
    m_responder: int,
    length: int,
    secure: bool = False,
    seed: int = 0,
) -> dict[str, int]:
    """Run the alphanumeric protocol with strings of ~``length`` chars."""
    total = n_initiator + m_responder
    sequences, _ = dna_clusters(
        [total], length=length, within_rate=0.05, between_rate=0.5, seed=seed
    )
    schema = [
        AttributeSpec("dna", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET)
    ]
    rows = [[s] for s in sequences]
    session = _two_party_session(
        schema, rows[:n_initiator], rows[n_initiator:], True, secure, seed
    )
    session.execute_protocol()
    return _breakdown(session)


def measure_categorical_protocol(
    n_per_site: int,
    secure: bool = False,
    seed: int = 0,
) -> dict[str, int]:
    """Run the categorical protocol; returns per-holder upload bytes."""
    categories = [f"c{i}" for i in range(8)]
    rng = np.random.default_rng(seed)
    rows = [[categories[int(rng.integers(len(categories)))]] for _ in range(2 * n_per_site)]
    schema = [AttributeSpec("label", AttributeType.CATEGORICAL)]
    session = _two_party_session(
        schema, rows[:n_per_site], rows[n_per_site:], True, secure, seed
    )
    session.execute_protocol()
    net = session.network
    return {
        "holder_column": net.bytes_of_kind("J", "TP", "encrypted_column"),
        "initiator_total": net.bytes_sent_by("J"),
        "responder_total": net.bytes_sent_by("K"),
        "grand_total": net.total_bytes(),
    }
