"""Communication-cost models and empirical fits.

The paper's evaluation consists of per-protocol cost analyses (the
"Analysis of communication costs and privacy" subsections).  This
package turns them into checkable artefacts:

* :mod:`repro.analysis.comm_costs` -- the analytic O(.) formulas with
  explicit constants, plus tooling that fits log-log slopes to measured
  byte counts so the benchmarks can assert the claimed exponents.
"""

from repro.analysis.comm_costs import (
    CostModel,
    fit_loglog_slope,
    measure_numeric_protocol,
    measure_alphanumeric_protocol,
    measure_categorical_protocol,
)

__all__ = [
    "CostModel",
    "fit_loglog_slope",
    "measure_numeric_protocol",
    "measure_alphanumeric_protocol",
    "measure_categorical_protocol",
]
