"""The data holder role (``DH_J`` / ``DH_K`` in the paper).

A holder owns one horizontal partition.  Per attribute it (a) computes
and ships its local dissimilarity matrix (Figure 12 -- pairs inside one
site need no privacy machinery), and (b) participates in the pairwise
comparison protocol with every other holder, as initiator or responder
(Section 4: the protocol runs once per holder pair per attribute).
"""

from __future__ import annotations

import numpy as np

from repro.core import alphanumeric as alnum_protocol
from repro.core import categorical as cat_protocol
from repro.core import labels
from repro.core import numeric as num_protocol
from repro.core.config import ProtocolSuiteConfig
from repro.crypto.detenc import DeterministicEncryptor
from repro.crypto.keys import fresh_group_key
from repro.crypto.prng import ReseedablePRNG
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.distance.dissimilarity import DissimilarityMatrix, condensed_tail_indices
from repro.distance.edit import pairwise_edit_distance_rows, pairwise_edit_distances
from repro.distance.local import local_dissimilarity
from repro.distance.numeric import FixedPointCodec
from repro.exceptions import ProtocolError
from repro.network.transport import Transport
from repro.parties.base import Party
from repro.types import AttributeType


#: Encoded magnitudes below 2^51 keep ``|a - b|`` under 2^52, where the
#: float64 descaling is exact, so the broadcast local matrix matches the
#: scalar Figure 12 loop bit for bit.
_EXACT_LOCAL_BOUND = 1 << 51


def _numeric_condensed(encoded: list[int], codec: FixedPointCodec) -> np.ndarray | None:
    """Condensed ``|a - b|`` distances via broadcasting, or ``None`` when
    magnitudes force the exact scalar fallback."""
    try:
        arr = np.asarray(encoded, dtype=np.int64)
    except (OverflowError, TypeError, ValueError):
        return None
    if arr.size and int(np.abs(arr).max()) >= _EXACT_LOCAL_BOUND:
        return None
    i, j = np.tril_indices(arr.size, -1)
    return codec.decode_distance_array(np.abs(arr[i] - arr[j]))


def _numeric_condensed_tail(
    encoded: list[int], old_size: int, codec: FixedPointCodec
) -> np.ndarray:
    """New condensed rows (``old_size`` onward) of the local matrix.

    Every entry is the exact ``|a - b|`` decode either way -- the int64
    broadcast and the arbitrary-precision fallback emit bitwise the same
    floats -- so the delta tail matches the corresponding segment of a
    full :func:`_numeric_condensed` recomputation bit for bit.
    """
    i, j = condensed_tail_indices(old_size, len(encoded))
    try:
        arr = np.asarray(encoded, dtype=np.int64)
    except (OverflowError, TypeError, ValueError):
        arr = None
    if arr is not None and (
        not arr.size or int(np.abs(arr).max()) < _EXACT_LOCAL_BOUND
    ):
        return codec.decode_distance_array(np.abs(arr[i] - arr[j]))
    exact = np.empty(i.size, dtype=object)
    exact[:] = [abs(int(encoded[a]) - int(encoded[b])) for a, b in zip(i, j)]
    return codec.decode_distance_array(exact)


class DataHolder(Party):
    """A semi-honest data holder participating in the session."""

    def __init__(
        self,
        name: str,
        matrix: DataMatrix,
        network: Transport,
        suite: ProtocolSuiteConfig,
        entropy: ReseedablePRNG,
    ) -> None:
        super().__init__(name, network)
        self.matrix = matrix
        self._suite = suite
        self._entropy = entropy
        self._group_key: bytes | None = None

    # -- helpers ---------------------------------------------------------

    def _codec(self, spec: AttributeSpec) -> FixedPointCodec:
        return FixedPointCodec(spec.precision)

    def _column(self, spec: AttributeSpec) -> list:
        return self.matrix.column_by_name(spec.name)

    def _tag(self, spec: AttributeSpec) -> str:
        return labels.attribute_tag(spec)

    # -- local dissimilarity (Figure 12) -----------------------------------

    def local_matrix(self, spec: AttributeSpec) -> DissimilarityMatrix:
        """Local per-attribute dissimilarity over this site's objects.

        Numeric distances go through the fixed-point codec so local and
        cross-site entries follow the *identical* comparison function --
        the precondition for the paper's zero-accuracy-loss property.
        """
        column = self._column(spec)
        if spec.attr_type is AttributeType.NUMERIC:
            codec = self._codec(spec)
            encoded = codec.encode_column(column)
            condensed = _numeric_condensed(encoded, codec)
            if condensed is not None:
                return DissimilarityMatrix(len(encoded), condensed)
            return local_dissimilarity(
                encoded, lambda a, b: codec.decode_distance(abs(a - b))
            )
        if spec.attr_type is AttributeType.ALPHANUMERIC:
            return DissimilarityMatrix(
                len(column), pairwise_edit_distances(column).astype(np.float64)
            )
        raise ProtocolError(
            f"local matrices are not built for {spec.attr_type.value} attributes; "
            "the third party constructs the categorical matrix globally"
        )

    def send_local_matrix(self, tp_name: str, spec: AttributeSpec) -> None:
        """Ship the condensed local matrix to the third party."""
        condensed = self.local_matrix(spec).condensed
        self.send(
            tp_name,
            kind="local_matrix",
            payload={"attribute": spec.name, "condensed": np.asarray(condensed)},
            tag=self._tag(spec),
        )

    # -- incremental sessions (delta construction) --------------------------

    def ingest_rows(self, rows: DataMatrix) -> None:
        """Append an arrival batch to this site's partition.

        Arrivals take the next local ids, so every existing record's
        position inside the site is stable -- the property the delta
        label grammar and the differential-equivalence guarantee rest on.
        """
        self.matrix = self.matrix.concat(rows)

    def retire_rows(self, local_ids: list[int]) -> None:
        """Drop records; survivors compact while keeping relative order."""
        drop = set(local_ids)
        keep = [i for i in range(self.matrix.num_rows) if i not in drop]
        self.matrix = self.matrix.take(keep)

    def announce_retirement(self, tp_name: str, local_ids: list[int]) -> None:
        """Tell the third party which local records left this site.

        Local ids reveal nothing beyond the (public) partition sizes; the
        TP needs them to shrink its matrices in the right rows.
        """
        self.send(
            tp_name,
            kind="retire_records",
            payload={"local_ids": sorted(int(i) for i in local_ids)},
            tag="delta",
        )

    def send_local_delta(self, tp_name: str, spec: AttributeSpec, old_size: int) -> None:
        """Ship the new condensed rows of this site's local matrix.

        Covers every pair touching an arrival *within* this site (each
        new record against all earlier locals plus the new-new triangle)
        at O(added * size) cost -- the already-shipped triangle is never
        recomputed or resent.
        """
        column = self._column(spec)
        if not 0 <= old_size <= len(column):
            raise ProtocolError(
                f"local delta old_size {old_size} out of range for "
                f"{len(column)} objects"
            )
        if spec.attr_type is AttributeType.NUMERIC:
            codec = self._codec(spec)
            tail = _numeric_condensed_tail(codec.encode_column(column), old_size, codec)
        elif spec.attr_type is AttributeType.ALPHANUMERIC:
            tail = pairwise_edit_distance_rows(column, old_size).astype(np.float64)
        else:
            raise ProtocolError(
                f"local matrices are not built for {spec.attr_type.value} attributes; "
                "the third party patches the categorical matrix globally"
            )
        self.send(
            tp_name,
            kind="local_matrix_delta",
            payload={
                "attribute": spec.name,
                "old_size": old_size,
                "condensed_tail": np.asarray(tail),
            },
            tag=self._tag(spec),
        )

    def _delta_prng(self, peer: str, label: str):
        return self.secret_with(peer).prng(label, self._suite.prng_kind)

    def numeric_initiate_delta(
        self,
        spec: AttributeSpec,
        responder: str,
        tp_name: str,
        part: str,
        epoch: int,
        own_range: tuple[int, int],
        responder_size: int,
    ) -> None:
        """DHJ's step for one delta run: mask a sub-column only.

        ``own_range`` selects the initiator rows the run covers (its
        arrivals for ``"grow"``, its pre-existing records for
        ``"base"``); the protocol itself is the unmodified Figure 4 over
        that slice, under epoch-and-part-scoped generators.
        """
        suite = self._suite
        rng_jk = self._delta_prng(
            responder, labels.numeric_jk_delta(spec.name, self.name, responder, epoch, part)
        )
        rng_jt = self._delta_prng(
            tp_name, labels.numeric_jt_delta(spec.name, self.name, responder, epoch, part)
        )
        lo, hi = own_range
        encoded = self._codec(spec).encode_column(self._column(spec)[lo:hi])
        meta = {"attribute": spec.name, "part": part, "epoch": epoch}
        if suite.batch_numeric:
            masked = num_protocol.initiator_mask_batch(
                encoded, rng_jk, rng_jt, suite.mask_bits
            )
            self.send(
                responder,
                kind="masked_vector",
                payload={**meta, "values": masked},
                tag=self._tag(spec),
            )
        else:
            masked_matrix = num_protocol.initiator_mask_per_pair(
                encoded, responder_size, rng_jk, rng_jt, suite.mask_bits
            )
            self.send(
                responder,
                kind="masked_matrix",
                payload={**meta, "rows": masked_matrix},
                tag=self._tag(spec),
            )

    def _check_delta_payload(self, payload, spec: AttributeSpec, part: str, epoch: int) -> None:
        got = (payload.get("attribute"), payload.get("part"), payload.get("epoch"))
        if got != (spec.name, part, epoch):
            raise ProtocolError(
                f"expected delta input for {(spec.name, part, epoch)}, got {got}"
            )

    def numeric_respond_delta(
        self,
        spec: AttributeSpec,
        initiator: str,
        tp_name: str,
        part: str,
        epoch: int,
        own_range: tuple[int, int],
    ) -> None:
        """DHK's step for one delta run over its scheduled sub-column."""
        suite = self._suite
        rng_jk = self._delta_prng(
            initiator, labels.numeric_jk_delta(spec.name, initiator, self.name, epoch, part)
        )
        lo, hi = own_range
        encoded = self._codec(spec).encode_column(self._column(spec)[lo:hi])
        if suite.batch_numeric:
            message = self.receive(
                kind="masked_vector", sender=initiator, tag=self._tag(spec)
            )
            self._check_delta_payload(message.payload, spec, part, epoch)
            matrix = num_protocol.responder_matrix_batch(
                encoded, message.payload["values"], rng_jk
            )
        else:
            message = self.receive(
                kind="masked_matrix", sender=initiator, tag=self._tag(spec)
            )
            self._check_delta_payload(message.payload, spec, part, epoch)
            matrix = num_protocol.responder_matrix_per_pair(
                encoded, message.payload["rows"], rng_jk
            )
        self.send(
            tp_name,
            kind="comparison_matrix",
            payload={
                "attribute": spec.name,
                "initiator": initiator,
                "part": part,
                "epoch": epoch,
                "matrix": matrix,
            },
            tag=self._tag(spec),
        )

    def alnum_initiate_delta(
        self,
        spec: AttributeSpec,
        responder: str,
        tp_name: str,
        part: str,
        epoch: int,
        own_range: tuple[int, int],
    ) -> None:
        """DHJ's delta step: mask only the run's sub-column of strings."""
        assert spec.alphabet is not None
        rng_jt = self._delta_prng(
            tp_name, labels.alnum_jt_delta(spec.name, self.name, responder, epoch, part)
        )
        lo, hi = own_range
        strings = self._column(spec)[lo:hi]
        if self._suite.fresh_string_masks:
            masked = alnum_protocol.initiator_mask_strings_fresh(
                strings, spec.alphabet, rng_jt
            )
        else:
            masked = alnum_protocol.initiator_mask_strings(
                strings, spec.alphabet, rng_jt
            )
        self.send(
            responder,
            kind="masked_strings",
            payload={
                "attribute": spec.name,
                "part": part,
                "epoch": epoch,
                "strings": masked,
            },
            tag=self._tag(spec),
        )

    def alnum_respond_delta(
        self,
        spec: AttributeSpec,
        initiator: str,
        tp_name: str,
        part: str,
        epoch: int,
        own_range: tuple[int, int],
    ) -> None:
        """DHK's delta step: intermediary CCMs for the scheduled slice."""
        assert spec.alphabet is not None
        message = self.receive(
            kind="masked_strings", sender=initiator, tag=self._tag(spec)
        )
        self._check_delta_payload(message.payload, spec, part, epoch)
        lo, hi = own_range
        matrices = alnum_protocol.responder_ccm_matrices(
            self._column(spec)[lo:hi], message.payload["strings"], spec.alphabet
        )
        self.send(
            tp_name,
            kind="ccm_matrices",
            payload={
                "attribute": spec.name,
                "initiator": initiator,
                "part": part,
                "epoch": epoch,
                "matrices": matrices,
            },
            tag=self._tag(spec),
        )

    def send_categorical_delta(
        self, spec: AttributeSpec, tp_name: str, old_size: int
    ) -> None:
        """Encrypt and ship only the arrivals' categorical values."""
        if self._group_key is None:
            raise ProtocolError(
                f"{self.name!r} has no categorical group key; run key distribution"
            )
        column = self._column(spec)
        if not 0 <= old_size <= len(column):
            raise ProtocolError(
                f"categorical delta old_size {old_size} out of range for "
                f"{len(column)} objects"
            )
        encryptor = DeterministicEncryptor(
            self._group_key, digest_size=self._suite.categorical_digest_size
        )
        fresh = column[old_size:]
        if spec.taxonomy is not None:
            ciphertexts: list = spec.taxonomy.encrypt_column(encryptor, spec.name, fresh)
        else:
            ciphertexts = cat_protocol.holder_encrypt_column(encryptor, spec.name, fresh)
        self.send(
            tp_name,
            kind="encrypted_column_delta",
            payload={
                "attribute": spec.name,
                "old_size": old_size,
                "ciphertexts": ciphertexts,
            },
            tag=self._tag(spec),
        )

    # -- numeric protocol (Section 4.1) -------------------------------------

    def numeric_initiate(
        self, spec: AttributeSpec, responder: str, tp_name: str, responder_size: int
    ) -> None:
        """Act as DHJ for one (attribute, responder) pairing."""
        suite = self._suite
        rng_jk = self.secret_with(responder).prng(
            labels.numeric_jk(spec.name, self.name, responder), suite.prng_kind
        )
        rng_jt = self.secret_with(tp_name).prng(
            labels.numeric_jt(spec.name, self.name, responder), suite.prng_kind
        )
        encoded = self._codec(spec).encode_column(self._column(spec))
        if suite.batch_numeric:
            masked = num_protocol.initiator_mask_batch(
                encoded, rng_jk, rng_jt, suite.mask_bits
            )
            self.send(
                responder,
                kind="masked_vector",
                payload={"attribute": spec.name, "values": masked},
                tag=self._tag(spec),
            )
        else:
            masked_matrix = num_protocol.initiator_mask_per_pair(
                encoded, responder_size, rng_jk, rng_jt, suite.mask_bits
            )
            self.send(
                responder,
                kind="masked_matrix",
                payload={"attribute": spec.name, "rows": masked_matrix},
                tag=self._tag(spec),
            )

    def numeric_respond(
        self, spec: AttributeSpec, initiator: str, tp_name: str
    ) -> None:
        """Act as DHK: consume the masked input, ship matrix ``s`` to TP."""
        suite = self._suite
        rng_jk = self.secret_with(initiator).prng(
            labels.numeric_jk(spec.name, initiator, self.name), suite.prng_kind
        )
        encoded = self._codec(spec).encode_column(self._column(spec))
        if suite.batch_numeric:
            message = self.receive(
                kind="masked_vector", sender=initiator, tag=self._tag(spec)
            )
            masked = message.payload["values"]
            matrix = num_protocol.responder_matrix_batch(encoded, masked, rng_jk)
        else:
            message = self.receive(
                kind="masked_matrix", sender=initiator, tag=self._tag(spec)
            )
            matrix = num_protocol.responder_matrix_per_pair(
                encoded, message.payload["rows"], rng_jk
            )
        # Bind the harmless scalar before raising: exception text must
        # never interpolate the payload mapping itself.
        attribute = message.payload["attribute"]
        if attribute != spec.name:
            raise ProtocolError(
                f"expected masked input for {spec.name!r}, got {attribute!r}"
            )
        self.send(
            tp_name,
            kind="comparison_matrix",
            payload={
                "attribute": spec.name,
                "initiator": initiator,
                "matrix": matrix,
            },
            tag=self._tag(spec),
        )

    # -- alphanumeric protocol (Section 4.2) ----------------------------------

    def alnum_initiate(
        self, spec: AttributeSpec, responder: str, tp_name: str
    ) -> None:
        """Act as DHJ: mask every string with the shared random vector."""
        assert spec.alphabet is not None
        rng_jt = self.secret_with(tp_name).prng(
            labels.alnum_jt(spec.name, self.name, responder), self._suite.prng_kind
        )
        if self._suite.fresh_string_masks:
            masked = alnum_protocol.initiator_mask_strings_fresh(
                self._column(spec), spec.alphabet, rng_jt
            )
        else:
            masked = alnum_protocol.initiator_mask_strings(
                self._column(spec), spec.alphabet, rng_jt
            )
        self.send(
            responder,
            kind="masked_strings",
            payload={"attribute": spec.name, "strings": masked},
            tag=self._tag(spec),
        )

    def alnum_respond(self, spec: AttributeSpec, initiator: str, tp_name: str) -> None:
        """Act as DHK: build intermediary CCMs, ship them to TP."""
        assert spec.alphabet is not None
        message = self.receive(
            kind="masked_strings", sender=initiator, tag=self._tag(spec)
        )
        attribute = message.payload["attribute"]
        if attribute != spec.name:
            raise ProtocolError(
                f"expected masked strings for {spec.name!r}, got {attribute!r}"
            )
        matrices = alnum_protocol.responder_ccm_matrices(
            self._column(spec), message.payload["strings"], spec.alphabet
        )
        self.send(
            tp_name,
            kind="ccm_matrices",
            payload={
                "attribute": spec.name,
                "initiator": initiator,
                "matrices": matrices,
            },
            tag=self._tag(spec),
        )

    # -- categorical protocol (Section 4.3) -------------------------------------

    def distribute_group_key(self, other_holders: list[str]) -> None:
        """As group leader, mint and share the categorical encryption key.

        The paper assumes the holders "share a secret key"; the leader
        (lexicographically first holder) realises that by generating one
        and sending it over the *secured* holder-holder channels.  The
        third party never sees it (non-collusion, Section 3).
        """
        key = fresh_group_key(self._entropy)
        self._group_key = key
        for peer in other_holders:
            self.send(peer, kind="group_key", payload=key, tag="setup")

    def receive_group_key(self, leader: str) -> None:
        """Receive the group key from the leader."""
        message = self.receive(kind="group_key", sender=leader)
        self._group_key = message.payload

    def group_key_bytes(self) -> bytes | None:
        """The categorical group key, for session checkpoints only.

        Checkpoints stay inside the holder trust domain (the TP never
        sees them), so exporting the key here does not widen Section 3's
        threat model.
        """
        return self._group_key

    def install_group_key(self, value: bytes) -> None:
        """Restore a checkpointed group key without re-running distribution."""
        self._group_key = value

    def entropy_draws(self) -> int:
        """Words drawn from this holder's private entropy (checkpointing)."""
        return self._entropy.draws

    def advance_entropy(self, target: int) -> None:
        """Fast-forward this holder's entropy to a checkpointed position."""
        behind = target - self._entropy.draws
        if behind < 0:
            raise ProtocolError(
                f"cannot rewind {self.name!r} entropy from "
                f"{self._entropy.draws} to {target} draws"
            )
        if behind:
            self._entropy.next_words(behind)

    def send_categorical(self, spec: AttributeSpec, tp_name: str) -> None:
        """Encrypt this site's column deterministically and ship it.

        Flat categoricals send one ciphertext per object (Section 4.3);
        taxonomy-typed categoricals send the ciphertexts of every root
        path prefix (the hierarchical extension, O(n * depth)).
        """
        if self._group_key is None:
            raise ProtocolError(
                f"{self.name!r} has no categorical group key; run key distribution"
            )
        encryptor = DeterministicEncryptor(
            self._group_key, digest_size=self._suite.categorical_digest_size
        )
        if spec.taxonomy is not None:
            ciphertexts: list = spec.taxonomy.encrypt_column(
                encryptor, spec.name, self._column(spec)
            )
        else:
            ciphertexts = cat_protocol.holder_encrypt_column(
                encryptor, spec.name, self._column(spec)
            )
        self.send(
            tp_name,
            kind="encrypted_column",
            payload={"attribute": spec.name, "ciphertexts": ciphertexts},
            tag=self._tag(spec),
        )

    # -- weights and results ------------------------------------------------------

    def send_weights(self, tp_name: str, weights: list[float]) -> None:
        """Send this holder's attribute weight vector (Section 5)."""
        if len(weights) != self.matrix.num_attributes:
            raise ProtocolError(
                f"{len(weights)} weights for {self.matrix.num_attributes} attributes"
            )
        self.send(tp_name, kind="weights", payload=list(map(float, weights)), tag="setup")

    def receive_result(self, tp_name: str):
        """Receive the published clustering result."""
        from repro.core.results import ClusteringResult

        message = self.receive(kind="result", sender=tp_name)
        return ClusteringResult.from_payload(message.payload)
