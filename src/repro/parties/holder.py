"""The data holder role (``DH_J`` / ``DH_K`` in the paper).

A holder owns one horizontal partition.  Per attribute it (a) computes
and ships its local dissimilarity matrix (Figure 12 -- pairs inside one
site need no privacy machinery), and (b) participates in the pairwise
comparison protocol with every other holder, as initiator or responder
(Section 4: the protocol runs once per holder pair per attribute).
"""

from __future__ import annotations

import numpy as np

from repro.core import alphanumeric as alnum_protocol
from repro.core import categorical as cat_protocol
from repro.core import labels
from repro.core import numeric as num_protocol
from repro.core.config import ProtocolSuiteConfig
from repro.crypto.detenc import DeterministicEncryptor
from repro.crypto.prng import ReseedablePRNG
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.distance.edit import pairwise_edit_distances
from repro.distance.local import local_dissimilarity
from repro.distance.numeric import FixedPointCodec
from repro.exceptions import ProtocolError
from repro.network.simulator import Network
from repro.parties.base import Party
from repro.types import AttributeType


#: Encoded magnitudes below 2^51 keep ``|a - b|`` under 2^52, where the
#: float64 descaling is exact, so the broadcast local matrix matches the
#: scalar Figure 12 loop bit for bit.
_EXACT_LOCAL_BOUND = 1 << 51


def _numeric_condensed(encoded: list[int], codec: FixedPointCodec) -> np.ndarray | None:
    """Condensed ``|a - b|`` distances via broadcasting, or ``None`` when
    magnitudes force the exact scalar fallback."""
    try:
        arr = np.asarray(encoded, dtype=np.int64)
    except (OverflowError, TypeError, ValueError):
        return None
    if arr.size and int(np.abs(arr).max()) >= _EXACT_LOCAL_BOUND:
        return None
    i, j = np.tril_indices(arr.size, -1)
    return codec.decode_distance_array(np.abs(arr[i] - arr[j]))


class DataHolder(Party):
    """A semi-honest data holder participating in the session."""

    def __init__(
        self,
        name: str,
        matrix: DataMatrix,
        network: Network,
        suite: ProtocolSuiteConfig,
        entropy: ReseedablePRNG,
    ) -> None:
        super().__init__(name, network)
        self.matrix = matrix
        self._suite = suite
        self._entropy = entropy
        self._group_key: bytes | None = None

    # -- helpers ---------------------------------------------------------

    def _codec(self, spec: AttributeSpec) -> FixedPointCodec:
        return FixedPointCodec(spec.precision)

    def _column(self, spec: AttributeSpec) -> list:
        return self.matrix.column_by_name(spec.name)

    def _tag(self, spec: AttributeSpec) -> str:
        return f"{spec.attr_type.value}/{spec.name}"

    # -- local dissimilarity (Figure 12) -----------------------------------

    def local_matrix(self, spec: AttributeSpec) -> DissimilarityMatrix:
        """Local per-attribute dissimilarity over this site's objects.

        Numeric distances go through the fixed-point codec so local and
        cross-site entries follow the *identical* comparison function --
        the precondition for the paper's zero-accuracy-loss property.
        """
        column = self._column(spec)
        if spec.attr_type is AttributeType.NUMERIC:
            codec = self._codec(spec)
            encoded = codec.encode_column(column)
            condensed = _numeric_condensed(encoded, codec)
            if condensed is not None:
                return DissimilarityMatrix(len(encoded), condensed)
            return local_dissimilarity(
                encoded, lambda a, b: codec.decode_distance(abs(a - b))
            )
        if spec.attr_type is AttributeType.ALPHANUMERIC:
            return DissimilarityMatrix(
                len(column), pairwise_edit_distances(column).astype(np.float64)
            )
        raise ProtocolError(
            f"local matrices are not built for {spec.attr_type.value} attributes; "
            "the third party constructs the categorical matrix globally"
        )

    def send_local_matrix(self, tp_name: str, spec: AttributeSpec) -> None:
        """Ship the condensed local matrix to the third party."""
        condensed = self.local_matrix(spec).condensed
        self.send(
            tp_name,
            kind="local_matrix",
            payload={"attribute": spec.name, "condensed": np.asarray(condensed)},
            tag=self._tag(spec),
        )

    # -- numeric protocol (Section 4.1) -------------------------------------

    def numeric_initiate(
        self, spec: AttributeSpec, responder: str, tp_name: str, responder_size: int
    ) -> None:
        """Act as DHJ for one (attribute, responder) pairing."""
        suite = self._suite
        rng_jk = self.secret_with(responder).prng(
            labels.numeric_jk(spec.name, self.name, responder), suite.prng_kind
        )
        rng_jt = self.secret_with(tp_name).prng(
            labels.numeric_jt(spec.name, self.name, responder), suite.prng_kind
        )
        encoded = self._codec(spec).encode_column(self._column(spec))
        if suite.batch_numeric:
            masked = num_protocol.initiator_mask_batch(
                encoded, rng_jk, rng_jt, suite.mask_bits
            )
            self.send(
                responder,
                kind="masked_vector",
                payload={"attribute": spec.name, "values": masked},
                tag=self._tag(spec),
            )
        else:
            masked_matrix = num_protocol.initiator_mask_per_pair(
                encoded, responder_size, rng_jk, rng_jt, suite.mask_bits
            )
            self.send(
                responder,
                kind="masked_matrix",
                payload={"attribute": spec.name, "rows": masked_matrix},
                tag=self._tag(spec),
            )

    def numeric_respond(
        self, spec: AttributeSpec, initiator: str, tp_name: str
    ) -> None:
        """Act as DHK: consume the masked input, ship matrix ``s`` to TP."""
        suite = self._suite
        rng_jk = self.secret_with(initiator).prng(
            labels.numeric_jk(spec.name, initiator, self.name), suite.prng_kind
        )
        encoded = self._codec(spec).encode_column(self._column(spec))
        if suite.batch_numeric:
            message = self.receive(kind="masked_vector", sender=initiator)
            masked = message.payload["values"]
            matrix = num_protocol.responder_matrix_batch(encoded, masked, rng_jk)
        else:
            message = self.receive(kind="masked_matrix", sender=initiator)
            matrix = num_protocol.responder_matrix_per_pair(
                encoded, message.payload["rows"], rng_jk
            )
        if message.payload["attribute"] != spec.name:
            raise ProtocolError(
                f"expected masked input for {spec.name!r}, "
                f"got {message.payload['attribute']!r}"
            )
        self.send(
            tp_name,
            kind="comparison_matrix",
            payload={
                "attribute": spec.name,
                "initiator": initiator,
                "matrix": matrix,
            },
            tag=self._tag(spec),
        )

    # -- alphanumeric protocol (Section 4.2) ----------------------------------

    def alnum_initiate(
        self, spec: AttributeSpec, responder: str, tp_name: str
    ) -> None:
        """Act as DHJ: mask every string with the shared random vector."""
        assert spec.alphabet is not None
        rng_jt = self.secret_with(tp_name).prng(
            labels.alnum_jt(spec.name, self.name, responder), self._suite.prng_kind
        )
        if self._suite.fresh_string_masks:
            masked = alnum_protocol.initiator_mask_strings_fresh(
                self._column(spec), spec.alphabet, rng_jt
            )
        else:
            masked = alnum_protocol.initiator_mask_strings(
                self._column(spec), spec.alphabet, rng_jt
            )
        self.send(
            responder,
            kind="masked_strings",
            payload={"attribute": spec.name, "strings": masked},
            tag=self._tag(spec),
        )

    def alnum_respond(self, spec: AttributeSpec, initiator: str, tp_name: str) -> None:
        """Act as DHK: build intermediary CCMs, ship them to TP."""
        assert spec.alphabet is not None
        message = self.receive(kind="masked_strings", sender=initiator)
        if message.payload["attribute"] != spec.name:
            raise ProtocolError(
                f"expected masked strings for {spec.name!r}, "
                f"got {message.payload['attribute']!r}"
            )
        matrices = alnum_protocol.responder_ccm_matrices(
            self._column(spec), message.payload["strings"], spec.alphabet
        )
        self.send(
            tp_name,
            kind="ccm_matrices",
            payload={
                "attribute": spec.name,
                "initiator": initiator,
                "matrices": matrices,
            },
            tag=self._tag(spec),
        )

    # -- categorical protocol (Section 4.3) -------------------------------------

    def distribute_group_key(self, other_holders: list[str]) -> None:
        """As group leader, mint and share the categorical encryption key.

        The paper assumes the holders "share a secret key"; the leader
        (lexicographically first holder) realises that by generating one
        and sending it over the *secured* holder-holder channels.  The
        third party never sees it (non-collusion, Section 3).
        """
        key = self._entropy.next_bits(256).to_bytes(32, "big")
        self._group_key = key
        for peer in other_holders:
            self.send(peer, kind="group_key", payload=key, tag="setup")

    def receive_group_key(self, leader: str) -> None:
        """Receive the group key from the leader."""
        message = self.receive(kind="group_key", sender=leader)
        self._group_key = message.payload

    def send_categorical(self, spec: AttributeSpec, tp_name: str) -> None:
        """Encrypt this site's column deterministically and ship it.

        Flat categoricals send one ciphertext per object (Section 4.3);
        taxonomy-typed categoricals send the ciphertexts of every root
        path prefix (the hierarchical extension, O(n * depth)).
        """
        if self._group_key is None:
            raise ProtocolError(
                f"{self.name!r} has no categorical group key; run key distribution"
            )
        encryptor = DeterministicEncryptor(
            self._group_key, digest_size=self._suite.categorical_digest_size
        )
        if spec.taxonomy is not None:
            ciphertexts: list = spec.taxonomy.encrypt_column(
                encryptor, spec.name, self._column(spec)
            )
        else:
            ciphertexts = cat_protocol.holder_encrypt_column(
                encryptor, spec.name, self._column(spec)
            )
        self.send(
            tp_name,
            kind="encrypted_column",
            payload={"attribute": spec.name, "ciphertexts": ciphertexts},
            tag=self._tag(spec),
        )

    # -- weights and results ------------------------------------------------------

    def send_weights(self, tp_name: str, weights: list[float]) -> None:
        """Send this holder's attribute weight vector (Section 5)."""
        if len(weights) != self.matrix.num_attributes:
            raise ProtocolError(
                f"{len(weights)} weights for {self.matrix.num_attributes} attributes"
            )
        self.send(tp_name, kind="weights", payload=list(map(float, weights)), tag="setup")

    def receive_result(self, tp_name: str):
        """Receive the published clustering result."""
        from repro.core.results import ClusteringResult

        message = self.receive(kind="result", sender=tp_name)
        return ClusteringResult.from_payload(message.payload)
