"""Protocol role implementations.

:class:`DataHolder` and :class:`ThirdParty` wire the pure protocol steps
of :mod:`repro.core` to the simulated network: holders mask and exchange,
the third party unmasks, assembles the global dissimilarity matrix,
clusters it and publishes membership lists (paper Section 3's trust
model: all parties semi-honest and non-colluding; the TP contributes
computation and storage but owns no data).
"""

from repro.parties.base import Party
from repro.parties.holder import DataHolder
from repro.parties.third_party import ThirdParty

__all__ = ["Party", "DataHolder", "ThirdParty"]
