"""Per-process party driver for multi-process socket sessions.

A single-process :class:`~repro.core.session.ClusteringSession` holds
every party in one interpreter and walks the Figure 11 construction as
one serial program.  :class:`PartyRunner` is the same choreography cut
along party lines: each OS process runs *one* party (a data holder or
the third party) against a :class:`~repro.network.tcp.SocketTransport`,
executes exactly its own slice of the construction step graph
(:meth:`repro.core.scheduler.ConstructionScheduler.party_plan`), and
arrives at the same bytes -- the socket gate test pins every per-lane
sealed frame byte-identical to the in-process simulator run of the same
session spec.

Determinism rests on three properties:

* **Key schedule.** :class:`SessionLinkSecurity` derives the DH entropy
  and per-link channel ciphers from the session's master seed under the
  exact labels :class:`~repro.core.session.ClusteringSession` uses, so
  the socket handshake agrees on the very secrets the simulator derives
  out-of-band.
* **Serial per-party plans.** Registration order of the step graph is
  the sequential policy's global order; each party executing its own
  steps in that order, with blocking receives, produces and consumes
  every lane's frames in the simulator's order.
* **Nonce lockstep.** Each link endpoint advances its nonce-stream copy
  once per sealed frame (:class:`~repro.network.handshake.LinkCipher`),
  so sealed wire bytes match the simulator's shared-stream channel.

Crash recovery: after the group-key phase every party checkpoints
(group key, holder-entropy draw position, per-link nonce positions).
When a peer is killed and supervisor-restarted with a bumped
incarnation, survivors observe :class:`~repro.exceptions.SessionResetError`,
restore their in-memory checkpoint, re-enter the transport's new era and
re-run construction from the post-setup state -- the final era's
transcript is byte-identical to an uninterrupted run's construction
phase, and the published results are bit-identical.
"""

from __future__ import annotations

import hashlib
import os
import signal
from typing import Any, Mapping

from repro.core import labels
from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.scheduler import ConstructionScheduler, Step
from repro.core.session import session_entropy
from repro.crypto.keys import PairwiseSecret
from repro.crypto.prng import ReseedablePRNG
from repro.data.matrix import AttributeSpec, DataMatrix, Schema
from repro.data.partition import GlobalIndex
from repro.exceptions import (
    ConfigurationError,
    LaneTimeoutError,
    PartyCrashError,
    ProtocolError,
    SessionResetError,
)
from repro.network.handshake import LinkCipher
from repro.network.retry import RetryPolicy
from repro.network.serialization import deserialize, serialize
from repro.network.tcp import DEAD, SocketTransport
from repro.parties.holder import DataHolder
from repro.parties.third_party import ThirdParty
from repro.types import AttributeType, LinkageMethod

#: Version tag of the session spec / checkpoint blob layouts.
SPEC_FORMAT = 1
CHECKPOINT_FORMAT = 1

#: Failures a tolerant socket run degrades on (same set as the
#: in-process scheduler's).
_FAULT_ERRORS = (PartyCrashError, LaneTimeoutError)


class SessionLinkSecurity:
    """Session key schedule for one party process.

    Implements the :class:`~repro.network.handshake.LinkSecurity`
    protocol from the session master seed, reproducing exactly the
    derivations :meth:`repro.core.session.ClusteringSession._setup_parties`
    performs in-process: DH entropy under ``"dh|<name>"``, channel keys
    under :func:`repro.core.labels.channel_key`, nonce streams under
    ``"nonce|<a>|<b>"`` (sorted pair).
    """

    def __init__(self, master_seed: int, local: str, secure_channels: bool = True) -> None:
        self._master_seed = master_seed
        self._local = local
        self._secure = secure_channels

    def dh_entropy(self) -> ReseedablePRNG:
        return session_entropy(self._master_seed, f"dh|{self._local}")

    def link_cipher(self, local: str, peer: str, shared: bytes) -> LinkCipher:
        a, b = sorted((local, peer))
        if not self._secure:
            return LinkCipher((a, b))
        secret = PairwiseSecret(pair=(a, b), secret=shared)
        return LinkCipher(
            (a, b),
            key=secret.key(labels.channel_key(a, b)),
            entropy=session_entropy(self._master_seed, f"nonce|{a}|{b}"),
        )


class _RemoteHolder:
    """Placeholder for a holder living in another process.

    The step graph binds every step to a party object at build time;
    steps owned by remote parties are never executed locally, so any
    attribute access beyond ``name`` is a wiring bug and fails loudly.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def __getattr__(self, item: str) -> Any:
        raise ProtocolError(
            f"step for remote party {self.name!r} executed locally "
            f"(attribute {item!r}); the plan slicing is broken"
        )


# -- session spec ------------------------------------------------------------


def spec_fingerprint(spec_bytes: bytes) -> bytes:
    """Digest identifying one session spec; all processes must agree."""
    return hashlib.sha256(b"repro.session-spec|" + spec_bytes).digest()


def encode_spec(
    config: SessionConfig,
    schema: Schema,
    partitions: Mapping[str, list],
    addresses: Mapping[str, str],
    tp_name: str = "TP",
    transport: Mapping[str, Any] | None = None,
) -> bytes:
    """Serialize a multi-process session spec to its on-disk form."""
    attrs = []
    for spec in schema:
        if spec.taxonomy is not None:
            raise ConfigurationError(
                f"attribute {spec.name!r} uses a taxonomy; taxonomy metrics "
                f"are not supported over socket transports"
            )
        attrs.append(
            {
                "name": spec.name,
                "type": spec.attr_type.value,
                "precision": spec.precision,
                "alphabet": spec.alphabet.characters if spec.alphabet else None,
            }
        )
    linkage = config.linkage
    suite = config.suite
    if suite.construction_schedule != "sequential":
        raise ConfigurationError(
            "socket sessions support the sequential construction schedule "
            f"only, got {suite.construction_schedule!r}"
        )
    return serialize(
        {
            "format": SPEC_FORMAT,
            "master_seed": config.master_seed,
            "num_clusters": config.num_clusters,
            "linkage": linkage.value if isinstance(linkage, LinkageMethod) else linkage,
            "weights": list(config.weights) if config.weights is not None else None,
            "suite": {
                "prng_kind": suite.prng_kind,
                "mask_bits": suite.mask_bits,
                "batch_numeric": suite.batch_numeric,
                "secure_channels": suite.secure_channels,
                "categorical_digest_size": suite.categorical_digest_size,
                "fresh_string_masks": suite.fresh_string_masks,
                "tolerate_faults": suite.tolerate_faults,
                "store_backend": suite.store_backend,
                "store_block_entries": suite.store_block_entries,
                "store_cache_bytes": suite.store_cache_bytes,
                "store_dir": suite.store_dir,
            },
            "tp_name": tp_name,
            "schema": attrs,
            "partitions": {
                site: [list(row) for row in rows] for site, rows in partitions.items()
            },
            "addresses": dict(addresses),
            "transport": dict(transport) if transport is not None else {},
        }
    )


def decode_spec(spec_bytes: bytes) -> dict[str, Any]:
    """Parse and validate a session spec blob."""
    spec = deserialize(spec_bytes)
    if not isinstance(spec, dict) or spec.get("format") != SPEC_FORMAT:
        raise ConfigurationError("unsupported session spec blob")
    if spec["tp_name"] in spec["partitions"]:
        raise ConfigurationError("third party name collides with a data holder")
    parties = sorted(spec["partitions"]) + [spec["tp_name"]]
    for party in parties:
        if party not in spec["addresses"]:
            raise ConfigurationError(f"spec assigns no address to party {party!r}")
    return spec


def _schema_from_spec(spec: Mapping[str, Any]) -> Schema:
    specs = []
    for attr in spec["schema"]:
        attr_type = AttributeType(attr["type"])
        kwargs: dict[str, Any] = {"precision": attr["precision"]}
        if attr_type is AttributeType.ALPHANUMERIC and attr["alphabet"] is not None:
            from repro.data.alphabet import Alphabet

            kwargs["alphabet"] = Alphabet(attr["alphabet"])
        specs.append(AttributeSpec(attr["name"], attr_type, **kwargs))
    return Schema(specs)


def _config_from_spec(spec: Mapping[str, Any]) -> SessionConfig:
    return SessionConfig(
        num_clusters=int(spec["num_clusters"]),
        linkage=LinkageMethod(spec["linkage"]),
        weights=spec["weights"],
        master_seed=int(spec["master_seed"]),
        suite=ProtocolSuiteConfig(**spec["suite"]),
    )


# -- the runner --------------------------------------------------------------


class PartyRunner:
    """Drives one party process through a full socket session.

    Parameters
    ----------
    spec_bytes:
        The serialized session spec (shared verbatim by every process;
        its digest is the handshake fingerprint).
    party:
        Which party this process runs (a site name or the TP name).
    incarnation:
        Supervisor-issued launch counter; a restart announces a higher
        one, which is what resets the surviving peers' era.
    restore_blob:
        A prior :meth:`checkpoint_blob` to resume from (restart path).
    checkpoint_path:
        Where to persist the post-setup checkpoint for a later restart.
    exit_after_step:
        Test hook: SIGKILL this process right after the named own
        construction step completes (first era only -- the supervisor
        strips the flag on restart).
    """

    def __init__(
        self,
        spec_bytes: bytes,
        party: str,
        *,
        incarnation: int = 1,
        restore_blob: bytes | None = None,
        checkpoint_path: str | None = None,
        exit_after_step: str | None = None,
    ) -> None:
        self._spec = decode_spec(spec_bytes)
        self._fingerprint = spec_fingerprint(spec_bytes)
        self._party = party
        self._incarnation = incarnation
        self._restore_blob = restore_blob
        self._checkpoint_path = checkpoint_path
        self._exit_after = exit_after_step

        self._config = _config_from_spec(self._spec)
        self._schema = _schema_from_spec(self._spec)
        if self._config.suite.construction_schedule != "sequential":
            raise ConfigurationError(
                "socket sessions support the sequential construction "
                "schedule only (per-party serial plans)"
            )
        self._tp_name: str = self._spec["tp_name"]
        self._sizes = {
            site: len(rows) for site, rows in self._spec["partitions"].items()
        }
        self._index = GlobalIndex(self._sizes)
        self._sites = list(self._index.sites)
        if party != self._tp_name and party not in self._sizes:
            raise ConfigurationError(f"party {party!r} is not named by the spec")

        tuning = dict(self._spec.get("transport") or {})
        self._connect_timeout = float(tuning.pop("connect_timeout", 30.0))
        reconnect = None
        if "reconnect_attempts" in tuning:
            reconnect = RetryPolicy(
                max_attempts=int(tuning.pop("reconnect_attempts")),
                backoff_base=float(tuning.pop("reconnect_backoff_base", 0.05)),
                backoff_cap=float(tuning.pop("reconnect_backoff_cap", 0.5)),
            )
        receive_deadline = float(tuning.pop("receive_deadline", 60.0))
        heartbeat_interval = float(tuning.pop("heartbeat_interval", 0.2))
        dead_after = float(tuning.pop("dead_after", 15.0))
        if tuning:
            # Reject before the transport spins up its event loop, so a
            # typoed spec cannot leak a live endpoint.
            raise ConfigurationError(
                f"unknown transport tuning keys {sorted(tuning)}"
            )
        self.transport = SocketTransport(
            party,
            self._spec["addresses"],
            SessionLinkSecurity(
                self._config.master_seed,
                party,
                secure_channels=self._config.suite.secure_channels,
            ),
            self._fingerprint,
            incarnation=incarnation,
            reconnect=reconnect,
            receive_deadline=receive_deadline,
            heartbeat_interval=heartbeat_interval,
            dead_after=dead_after,
        )
        self._secrets: dict[str, PairwiseSecret] = {}
        self._checkpoint: dict[str, Any] | None = None
        self._holder: DataHolder | None = None
        self._tp: ThirdParty | None = None
        self._plan: list[Step] = []
        self._broken_steps: dict[str, str] = {}
        self._cancelled_steps: list[str] = []
        self._unreachable: list[str] = []

    # -- party / plan construction ----------------------------------------

    def _build_parties(self) -> None:
        """(Re)create the local party objects and this party's plan.

        Called once per era: the objects carry per-era protocol state
        (TP matrices, holder entropy position), so a reset rebuilds them
        from scratch and the checkpoint re-primes them.
        """
        suite = self._config.suite
        transport = self.transport
        self._tp = ThirdParty(
            self._tp_name, transport, self._schema, self._index, suite
        )
        holders: dict[str, Any] = {}
        self._holder = None
        for site in self._sites:
            if site == self._party:
                matrix = DataMatrix(
                    self._schema,
                    [tuple(row) for row in self._spec["partitions"][site]],
                )
                self._holder = DataHolder(
                    site,
                    matrix,
                    transport,
                    suite,
                    entropy=session_entropy(
                        self._config.master_seed, f"holder|{site}"
                    ),
                )
                holders[site] = self._holder
            else:
                holders[site] = _RemoteHolder(site)
        local = self._holder if self._holder is not None else self._tp
        assert local is not None
        for peer, secret in self._secrets.items():
            local.set_secret(peer, secret)
        scheduler = ConstructionScheduler(holders, self._tp, policy="sequential")
        for spec in self._schema:
            scheduler.add_attribute(spec)
        self._plan = scheduler.party_plan(self._party)
        self._broken_steps = {}
        self._cancelled_steps = []
        self._unreachable = []

    def _derive_secrets(self) -> None:
        """Turn the transport's DH shared secrets into the key schedule."""
        self._secrets = {
            peer: PairwiseSecret(
                pair=tuple(sorted((self._party, peer))), secret=shared
            )
            for peer, shared in self.transport.shared_secrets().items()
        }

    @property
    def needs_group_key(self) -> bool:
        return any(
            spec.attr_type is AttributeType.CATEGORICAL for spec in self._schema
        )

    # -- checkpointing -----------------------------------------------------

    def _setup_cipher_positions(self) -> dict[str, int]:
        """Per-pair nonce positions at the post-setup boundary.

        Deliberately *not* read from the live ciphers: the transport
        loop opens inbound frames on arrival, so a peer that has raced
        ahead into construction advances the local cipher before this
        party takes its checkpoint -- a rollback to such a position
        seals the final era at shifted nonces and breaks transcript
        equality.  The boundary position is instead a pure function of
        the spec: :data:`~repro.network.handshake.LinkCipher.NONCE_WORDS`
        per group-key frame on the leader's holder pairs, zero on every
        other link.
        """
        if not self._config.suite.secure_channels:
            return {}
        parties = self._sites + [self._tp_name]
        positions: dict[str, int] = {}
        for i, a in enumerate(parties):
            for b in parties[i + 1 :]:
                x, y = sorted((a, b))
                positions[f"{x}|{y}"] = 0
        if self.needs_group_key:
            leader = self._sites[0]
            for site in self._sites[1:]:
                x, y = sorted((leader, site))
                positions[f"{x}|{y}"] = LinkCipher.NONCE_WORDS
        return positions

    def checkpoint_blob(self) -> bytes:
        """Serialize this party's post-setup resumable state."""
        state = {
            "format": CHECKPOINT_FORMAT,
            "party": self._party,
            "fingerprint": self._fingerprint,
            "group_key": (
                self._holder.group_key_bytes() if self._holder is not None else None
            ),
            "holder_entropy": (
                self._holder.entropy_draws() if self._holder is not None else None
            ),
            "cipher_positions": self._setup_cipher_positions(),
        }
        return serialize(state)

    def _take_checkpoint(self) -> None:
        blob = self.checkpoint_blob()
        self._checkpoint = deserialize(blob)
        if self._checkpoint_path is not None:
            tmp = self._checkpoint_path + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, self._checkpoint_path)

    def _load_checkpoint(self, blob: bytes) -> dict[str, Any]:
        state = deserialize(blob)
        if not isinstance(state, dict) or state.get("format") != CHECKPOINT_FORMAT:
            raise ConfigurationError("unsupported party checkpoint blob")
        if state.get("party") != self._party:
            raise ConfigurationError(
                f"checkpoint belongs to party {state.get('party')!r}, "
                f"not {self._party!r}"
            )
        if state.get("fingerprint") != self._fingerprint:
            raise ConfigurationError(
                "checkpoint was taken under a different session spec"
            )
        return state

    def _restore_from(self, state: Mapping[str, Any]) -> None:
        """Re-prime freshly built party objects from checkpointed state."""
        if self._holder is not None:
            if state["group_key"] is not None:
                self._holder.install_group_key(state["group_key"])
            if state["holder_entropy"] is not None:
                self._holder.advance_entropy(int(state["holder_entropy"]))

    # -- phases ------------------------------------------------------------

    def _group_key_phase(self) -> None:
        if not self.needs_group_key or self._holder is None:
            return
        leader = self._sites[0]
        if self._party == leader:
            self._holder.distribute_group_key(self._sites[1:])
        else:
            self._holder.receive_group_key(leader)

    def _maybe_exit_after(self, step_name: str) -> None:
        if self._exit_after is not None and step_name == self._exit_after:
            # Deterministic crash injection: die exactly here, without
            # unwinding (SIGKILL cannot be caught), like a power loss.
            os.kill(os.getpid(), signal.SIGKILL)

    def _construction_phase(self) -> None:
        tolerate = self._config.suite.tolerate_faults
        for step in self._plan:
            if any(dep in self._broken_steps for dep in step.deps) or any(
                dep in self._cancelled_steps for dep in step.deps
            ):
                # Transitive local cancellation; deps owned by remote
                # parties are assumed fine (a missing frame surfaces as
                # PartyCrashError/LaneTimeoutError on the receive).
                self._cancelled_steps.append(step.name)
                continue
            try:
                step.run()
            except _FAULT_ERRORS as error:
                if not tolerate:
                    raise
                self._broken_steps[step.name] = f"{type(error).__name__}: {error}"
                continue
            self._maybe_exit_after(step.name)

    def _failed_attributes(self) -> list[str]:
        failed = {name.split(":", 1)[0] for name in self._broken_steps}
        failed.update(name.split(":", 1)[0] for name in self._cancelled_steps)
        return [spec.name for spec in self._schema if spec.name in failed]

    def _completed_attributes(self) -> list[str]:
        failed = set(self._failed_attributes())
        return [spec.name for spec in self._schema if spec.name not in failed]

    def _weights(self) -> list[float]:
        if self._config.weights is not None:
            return list(self._config.weights)
        return [1.0] * len(self._schema)

    def _result_phase(self) -> dict[str, Any] | None:
        """Exchange weights, cluster, publish; returns the result payload."""
        tolerate = self._config.suite.tolerate_faults
        if self._holder is not None:
            try:
                self._holder.send_weights(self._tp_name, self._weights())
                result = self._holder.receive_result(self._tp_name)
            except _FAULT_ERRORS:
                if not tolerate:
                    raise
                return None
            return dict(result.to_payload())
        tp = self._tp
        assert tp is not None
        for site in self._sites:
            try:
                tp.receive_weights(site)
            except _FAULT_ERRORS:
                if not tolerate:
                    raise
                self._unreachable.append(site)
        reachable = [
            site
            for site in self._sites
            if site not in self._unreachable
            and self.transport.liveness(site) != DEAD
        ]
        failed = self._failed_attributes()
        degraded = bool(failed or self._unreachable)
        linkage = self._config.linkage
        assert isinstance(linkage, LinkageMethod)
        result = tp.cluster_and_publish(
            reachable,
            self._config.num_clusters,
            linkage,
            attributes=self._completed_attributes() if degraded else None,
        )
        return dict(result.to_payload())

    # -- top-level driver --------------------------------------------------

    def run(self) -> dict[str, Any]:
        """Execute the whole session for this party; returns its report.

        The report carries everything the supervisor and the gate tests
        need: the final era, the published/received result payload, the
        sender-side transcript (per-era), and the degradation record.
        """
        self.transport.connect_all(timeout=self._connect_timeout)
        self._derive_secrets()
        if self._restore_blob is not None:
            state = self._load_checkpoint(self._restore_blob)
            self._checkpoint = dict(state)
            self._build_parties()
            self._restore_from(state)
            self.transport.advance_cipher_positions(state["cipher_positions"])
        else:
            self._build_parties()
            self._group_key_phase()
            self._take_checkpoint()

        result: dict[str, Any] | None = None
        while True:
            try:
                self._construction_phase()
                result = self._result_phase()
                break
            except SessionResetError:
                state = self._checkpoint
                if state is None:
                    raise
                self._build_parties()
                self._restore_from(state)
                self.transport.begin_era(state["cipher_positions"])
        self.transport.drain()
        return {
            "party": self._party,
            "era": self.transport.era,
            "result": result,
            "transcript": [list(entry) for entry in self.transport.transcript()],
            "failed_attributes": self._failed_attributes(),
            "completed_attributes": self._completed_attributes(),
            "unreachable": sorted(set(self._unreachable)),
            "liveness": [list(entry) for entry in self.transport.liveness_log()],
        }

    def close(self) -> None:
        self.transport.close()
