"""Common machinery for protocol participants."""

from __future__ import annotations

from typing import Any

from repro.crypto.keys import PairwiseSecret
from repro.exceptions import ProtocolError
from repro.network.message import Message
from repro.network.transport import Transport


class Party:
    """A named participant bound to a session transport.

    Subclasses add role behaviour; this base provides messaging plus the
    pairwise-secret store every role needs (Section 4.1: each relevant
    pair of parties shares a secret number).  The transport may be the
    in-process simulator or a per-process socket endpoint
    (:mod:`repro.network.tcp`) -- protocol code cannot tell the
    difference.
    """

    def __init__(self, name: str, network: Transport) -> None:
        if not name:
            raise ProtocolError("party name must be non-empty")
        self.name = name
        self._network = network
        self._secrets: dict[str, PairwiseSecret] = {}

    @property
    def network(self) -> Transport:
        """The session transport this party is bound to.

        The construction scheduler peeks delivery queues through this to
        gate receive steps; parties themselves only send/receive.
        """
        return self._network

    # -- secrets -----------------------------------------------------------

    def set_secret(self, peer: str, secret: PairwiseSecret) -> None:
        """Install the shared secret with ``peer`` (from key agreement)."""
        if peer == self.name:
            raise ProtocolError("cannot share a secret with oneself")
        if set(secret.pair) != {self.name, peer}:
            raise ProtocolError(
                f"secret binds {secret.pair}, not ({self.name!r}, {peer!r})"
            )
        self._secrets[peer] = secret

    def secret_with(self, peer: str) -> PairwiseSecret:
        """The shared secret with ``peer``; raises if never established."""
        try:
            return self._secrets[peer]
        except KeyError:
            raise ProtocolError(
                f"{self.name!r} holds no shared secret with {peer!r}"
            ) from None

    # -- messaging ---------------------------------------------------------

    def send(self, recipient: str, kind: str, payload: Any, tag: str = "") -> None:
        """Transmit a protocol message over the (possibly secured) channel."""
        self._network.send(self.name, recipient, kind, payload, tag=tag)

    def receive(
        self,
        kind: str | None = None,
        sender: str | None = None,
        tag: str | None = None,
    ) -> Message:
        """Receive the next queued message, asserting kind/sender.

        With ``tag``, pops the head of the ``(sender, kind, tag)``
        delivery lane instead of the global FIFO head -- the form every
        scheduler-driven protocol step uses, so concurrent runs on other
        attributes or pairs can never be mis-delivered to this one.
        """
        return self._network.receive(self.name, kind=kind, sender=sender, tag=tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
