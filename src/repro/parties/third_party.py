"""The third party role (``TP`` in the paper).

Section 3: "The third party ... does not have any data but serves as a
means of computation power and storage space.  Third party's duty in the
protocol is to govern the communication between data holders, construct
the dissimilarity matrix and publish clustering results."

The TP assembles, per attribute, a *global* dissimilarity matrix from

* diagonal blocks -- the holders' local matrices (Figure 12 outputs),
* off-diagonal blocks -- comparison-protocol outputs it unmasks itself
  (Figures 6 and 10), or, for categoricals, the matrix it builds over
  merged ciphertexts (Section 4.3),

then normalises each attribute matrix to [0, 1], merges them with the
holders' weight vector (Figure 11) and runs hierarchical clustering.
Only membership lists and aggregate quality statistics are published;
the matrices themselves stay private to the TP (Section 5).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.clustering.linkage import agglomerative
from repro.clustering.quality import average_square_distance
from repro.core import alphanumeric as alnum_protocol
from repro.core import categorical as cat_protocol
from repro.core import labels
from repro.core import numeric as num_protocol
from repro.core.config import ProtocolSuiteConfig
from repro.core.results import ClusteringResult, result_from_labels
from repro.data.matrix import AttributeSpec, Schema
from repro.data.partition import GlobalIndex
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.distance.merge import merge_weighted
from repro.distance.numeric import FixedPointCodec
from repro.exceptions import ProtocolError
from repro.network.transport import Transport
from repro.parties.base import Party
from repro.types import AttributeType, LinkageMethod


class ThirdParty(Party):
    """The semi-trusted aggregator that never holds raw data."""

    def __init__(
        self,
        name: str,
        network: Transport,
        schema: Schema,
        index: GlobalIndex,
        suite: ProtocolSuiteConfig,
    ) -> None:
        super().__init__(name, network)
        self.schema = schema
        self.index = index
        self._suite = suite
        #: Storage backend for every global matrix this TP holds; resolved
        #: once so one session never mixes backends across attributes.
        self._store_spec = suite.store_spec()
        # guarded-by: self._storage_lock
        self._raw: dict[str, DissimilarityMatrix] = {}
        # guarded-by: self._storage_lock
        self._normalized: dict[str, DissimilarityMatrix] = {}
        # guarded-by: self._storage_lock
        self._pending_categorical: dict[str, dict[str, list[bytes]]] = {}
        # guarded-by: self._storage_lock
        self._weights: dict[str, list[float]] = {}
        #: Guards first-touch creation of per-attribute storage: under the
        #: parallel construction schedule, several receive steps of one
        #: attribute run concurrently and must agree on a single matrix
        #: object (their block writes are disjoint; creation is not).
        self._storage_lock = threading.Lock()
        #: The currently open ingest epoch's :class:`repro.core.delta.DeltaPlan`.
        self._delta_plan = None

    @property
    def suite(self) -> ProtocolSuiteConfig:
        """Protocol suite configuration (read by the scheduler to know
        which message kinds a comparison run exchanges)."""
        return self._suite

    # -- storage helpers ------------------------------------------------------

    def _matrix_for(self, attribute: str) -> DissimilarityMatrix:
        if attribute not in self._raw:
            with self._storage_lock:
                if attribute not in self._raw:
                    self._raw[attribute] = DissimilarityMatrix.zeros(
                        self.index.total_objects, store_spec=self._store_spec
                    )
        return self._raw[attribute]

    def _adopt_backend(self, matrix: DissimilarityMatrix) -> DissimilarityMatrix:
        """Re-home a protocol-built matrix onto the session's backend.

        The categorical/taxonomy constructors build plain matrices; when
        the session runs sharded storage, their outputs are converted on
        publication so every attribute matrix lives on one backend.
        """
        if matrix.store_kind == self._store_spec.backend:
            return matrix
        return DissimilarityMatrix(
            matrix.num_objects, matrix.condensed, store_spec=self._store_spec
        )

    def _spec(self, attribute: str) -> AttributeSpec:
        return self.schema.spec(attribute)

    # -- diagonal blocks --------------------------------------------------------

    def receive_local_matrix(self, holder: str, tag: str | None = None) -> None:
        """Place one holder's local matrix on the attribute's diagonal block."""
        message = self.receive(kind="local_matrix", sender=holder, tag=tag)
        attribute = message.payload["attribute"]
        condensed = np.asarray(message.payload["condensed"], dtype=np.float64)
        size = self.index.size_of(holder)
        local = DissimilarityMatrix(size, condensed)
        self._matrix_for(attribute).set_diagonal_block(
            self.index.offset_of(holder), local
        )

    # -- numeric cross blocks (Figure 6) -------------------------------------------

    def receive_numeric_block(self, responder: str, tag: str | None = None) -> None:
        """Unmask one comparison matrix into its off-diagonal block."""
        message = self.receive(kind="comparison_matrix", sender=responder, tag=tag)
        attribute = message.payload["attribute"]
        initiator = message.payload["initiator"]
        matrix = message.payload["matrix"]
        spec = self._spec(attribute)
        if spec.attr_type is not AttributeType.NUMERIC:
            raise ProtocolError(
                f"comparison matrix for non-numeric attribute {attribute!r}"
            )
        rng_jt = self.secret_with(initiator).prng(
            labels.numeric_jt(attribute, initiator, responder), self._suite.prng_kind
        )
        if self._suite.batch_numeric:
            encoded = num_protocol.third_party_unmask_batch(
                matrix, rng_jt, self._suite.mask_bits
            )
        else:
            encoded = num_protocol.third_party_unmask_per_pair(
                matrix, rng_jt, self._suite.mask_bits
            )
        codec = FixedPointCodec(spec.precision)
        block = codec.decode_distance_array(encoded)
        rows, cols = self.index.block(responder, initiator)
        self._matrix_for(attribute).set_block(list(rows), list(cols), block)

    # -- alphanumeric cross blocks (Figure 10) ---------------------------------------

    def receive_alnum_block(self, responder: str, tag: str | None = None) -> None:
        """Decode CCMs, run the edit-distance DP, place the block."""
        message = self.receive(kind="ccm_matrices", sender=responder, tag=tag)
        attribute = message.payload["attribute"]
        initiator = message.payload["initiator"]
        matrices = message.payload["matrices"]
        spec = self._spec(attribute)
        if spec.attr_type is not AttributeType.ALPHANUMERIC:
            raise ProtocolError(f"CCMs for non-alphanumeric attribute {attribute!r}")
        assert spec.alphabet is not None
        rng_jt = self.secret_with(initiator).prng(
            labels.alnum_jt(attribute, initiator, responder), self._suite.prng_kind
        )
        if self._suite.fresh_string_masks:
            distances = alnum_protocol.third_party_distances_fresh(
                matrices, spec.alphabet, rng_jt
            )
        else:
            distances = alnum_protocol.third_party_distances(
                matrices, spec.alphabet, rng_jt
            )
        block = distances.astype(np.float64)
        rows, cols = self.index.block(responder, initiator)
        self._matrix_for(attribute).set_block(list(rows), list(cols), block)

    # -- categorical (Section 4.3) -----------------------------------------------------

    def receive_encrypted_column(self, holder: str, tag: str | None = None) -> None:
        """Collect one site's deterministic ciphertext column."""
        message = self.receive(kind="encrypted_column", sender=holder, tag=tag)
        attribute = message.payload["attribute"]
        spec = self._spec(attribute)
        if spec.attr_type is not AttributeType.CATEGORICAL:
            raise ProtocolError(
                f"encrypted column for non-categorical attribute {attribute!r}"
            )
        with self._storage_lock:
            columns = self._pending_categorical.setdefault(attribute, {})
            if holder in columns:
                raise ProtocolError(f"duplicate encrypted column from {holder!r}")
            columns[holder] = list(message.payload["ciphertexts"])

    def finalize_categorical(self, attribute: str) -> None:
        """Merge ciphertext columns and build the global matrix.

        Flat categoricals get the 0/1 equality matrix (Section 4.3);
        taxonomy-typed ones the hierarchical path-metric matrix.
        """
        columns = self._pending_categorical.get(attribute)
        if columns is None:
            raise ProtocolError(f"no encrypted columns received for {attribute!r}")
        if self._spec(attribute).taxonomy is not None:
            from repro.ext.taxonomy import third_party_taxonomy_matrix

            matrix = third_party_taxonomy_matrix(columns, self.index)
        else:
            matrix = cat_protocol.third_party_categorical_matrix(columns, self.index)
        # Build outside, publish under the lock: the matrix construction is
        # O(n^2) and must not serialise unrelated finalize steps.
        matrix = self._adopt_backend(matrix)
        with self._storage_lock:
            self._raw[attribute] = matrix

    # -- incremental sessions (delta construction) ----------------------------------------

    def begin_delta(self, plan, new_index: GlobalIndex) -> None:
        """Open one ingest epoch: grow every raw matrix to the new frame.

        Surviving pairs keep their exact entries through one fancy-indexed
        condensed remap (:meth:`DissimilarityMatrix.insert_objects`); the
        vacated rows are then filled by the epoch's local tails and
        sub-column protocol blocks.  Normalised matrices go stale here and
        are refreshed per attribute by the scheduler's finalize steps.
        """
        missing = [a.name for a in self.schema if a.name not in self._raw]
        if missing:
            raise ProtocolError(
                f"cannot run a delta before initial construction of: {missing}"
            )
        arrivals = plan.arrival_positions(new_index)
        with self._storage_lock:
            for attribute in self._raw:
                self._raw[attribute] = self._raw[attribute].insert_objects(arrivals)
        self.index = new_index
        self._delta_plan = plan

    def end_delta(self) -> None:
        """Close the current ingest epoch (no-op when none is open).

        The service calls this once the epoch's construction has
        finished; between epochs the third party is quiescent, which is
        what :meth:`snapshot_state` requires.
        """
        self._delta_plan = None

    def _current_plan(self, epoch: int):
        plan = self._delta_plan
        if plan is None or plan.epoch != epoch:
            raise ProtocolError(
                f"no open delta epoch {epoch} "
                f"(current: {getattr(plan, 'epoch', None)})"
            )
        return plan

    def _delta_ranges(
        self, initiator: str, responder: str, part: str, plan
    ) -> tuple[range, range]:
        """Global (responder rows, initiator cols) of one delta run's block.

        The responder is always the grown site, contributing its arrival
        rows; the initiator contributes its full column (``"grow"``) or
        only its pre-epoch base (``"base"`` -- its own arrivals already
        met the responder's in the pair's ``"grow"`` run).
        """
        grow_i = plan.site(initiator)
        grow_r = plan.site(responder)
        i_off = self.index.offset_of(initiator)
        r_off = self.index.offset_of(responder)
        rows = range(r_off + grow_r.old_size, r_off + grow_r.new_size)
        if part == "grow":
            cols = range(i_off, i_off + grow_i.new_size)
        elif part == "base":
            cols = range(i_off, i_off + grow_i.old_size)
        else:
            raise ProtocolError(f"unknown delta part {part!r}")
        return rows, cols

    def receive_local_delta(self, holder: str, tag: str | None = None) -> None:
        """Patch one grown site's new local rows into its diagonal block."""
        message = self.receive(kind="local_matrix_delta", sender=holder, tag=tag)
        attribute = message.payload["attribute"]
        old_size = int(message.payload["old_size"])
        plan = self._delta_plan
        if plan is None or plan.site(holder).old_size != old_size:
            raise ProtocolError(
                f"local delta from {holder!r} does not match the open epoch"
            )
        tail = np.asarray(message.payload["condensed_tail"], dtype=np.float64)
        self._matrix_for(attribute).set_diagonal_delta(
            self.index.offset_of(holder), old_size, self.index.size_of(holder), tail
        )

    def receive_numeric_delta_block(
        self, responder: str, tag: str | None = None
    ) -> None:
        """Unmask one delta comparison matrix into its scattered block."""
        message = self.receive(kind="comparison_matrix", sender=responder, tag=tag)
        attribute = message.payload["attribute"]
        initiator = message.payload["initiator"]
        part = message.payload["part"]
        plan = self._current_plan(int(message.payload["epoch"]))
        spec = self._spec(attribute)
        if spec.attr_type is not AttributeType.NUMERIC:
            raise ProtocolError(
                f"comparison matrix for non-numeric attribute {attribute!r}"
            )
        rng_jt = self.secret_with(initiator).prng(
            labels.numeric_jt_delta(attribute, initiator, responder, plan.epoch, part),
            self._suite.prng_kind,
        )
        if self._suite.batch_numeric:
            encoded = num_protocol.third_party_unmask_batch(
                message.payload["matrix"], rng_jt, self._suite.mask_bits
            )
        else:
            encoded = num_protocol.third_party_unmask_per_pair(
                message.payload["matrix"], rng_jt, self._suite.mask_bits
            )
        codec = FixedPointCodec(spec.precision)
        block = codec.decode_distance_array(encoded)
        rows, cols = self._delta_ranges(initiator, responder, part, plan)
        self._matrix_for(attribute).set_block(list(rows), list(cols), block)

    def receive_alnum_delta_block(
        self, responder: str, tag: str | None = None
    ) -> None:
        """Decode delta CCMs and place the scattered cross block."""
        message = self.receive(kind="ccm_matrices", sender=responder, tag=tag)
        attribute = message.payload["attribute"]
        initiator = message.payload["initiator"]
        part = message.payload["part"]
        plan = self._current_plan(int(message.payload["epoch"]))
        spec = self._spec(attribute)
        if spec.attr_type is not AttributeType.ALPHANUMERIC:
            raise ProtocolError(f"CCMs for non-alphanumeric attribute {attribute!r}")
        assert spec.alphabet is not None
        rng_jt = self.secret_with(initiator).prng(
            labels.alnum_jt_delta(attribute, initiator, responder, plan.epoch, part),
            self._suite.prng_kind,
        )
        if self._suite.fresh_string_masks:
            distances = alnum_protocol.third_party_distances_fresh(
                message.payload["matrices"], spec.alphabet, rng_jt
            )
        else:
            distances = alnum_protocol.third_party_distances(
                message.payload["matrices"], spec.alphabet, rng_jt
            )
        rows, cols = self._delta_ranges(initiator, responder, part, plan)
        self._matrix_for(attribute).set_block(
            list(rows), list(cols), distances.astype(np.float64)
        )

    def receive_encrypted_delta(self, holder: str, tag: str | None = None) -> None:
        """Extend one site's stored ciphertext column with its arrivals."""
        message = self.receive(kind="encrypted_column_delta", sender=holder, tag=tag)
        attribute = message.payload["attribute"]
        spec = self._spec(attribute)
        if spec.attr_type is not AttributeType.CATEGORICAL:
            raise ProtocolError(
                f"encrypted delta for non-categorical attribute {attribute!r}"
            )
        # Size fields are harmless scalars; bind them so the exception text
        # never interpolates the payload mapping itself.
        old_size = int(message.payload["old_size"])
        with self._storage_lock:
            columns = self._pending_categorical.get(attribute)
            if columns is None or holder not in columns:
                raise ProtocolError(
                    f"no stored ciphertext column for {attribute!r} from {holder!r}"
                )
            held = len(columns[holder])
            if held != old_size:
                raise ProtocolError(
                    f"categorical delta from {holder!r} does not extend the "
                    f"stored column ({held} ciphertexts held, "
                    f"holder assumed {old_size})"
                )
            columns[holder].extend(message.payload["ciphertexts"])

    def finalize_categorical_delta(self, attribute: str) -> None:
        """Patch the global categorical matrix for this epoch's arrivals.

        Flat categoricals get their new-pair 0/1 entries written in two
        fancy-indexed blocks (arrivals x survivors, arrivals x arrivals);
        taxonomy-typed columns rebuild from the merged ciphertext paths
        (the path metric is the same pure function either way, so both
        routes are entry-identical to a from-scratch construction).
        """
        plan = self._delta_plan
        if plan is None:
            raise ProtocolError("no open delta epoch")
        columns = self._pending_categorical.get(attribute)
        if columns is None:
            raise ProtocolError(f"no encrypted columns received for {attribute!r}")
        for site in self.index.sites:
            if len(columns.get(site, ())) != self.index.size_of(site):
                raise ProtocolError(
                    f"site {site!r} column has {len(columns.get(site, ()))} "
                    f"ciphertexts, index expects {self.index.size_of(site)}"
                )
        if self._spec(attribute).taxonomy is not None:
            from repro.ext.taxonomy import third_party_taxonomy_matrix

            rebuilt = self._adopt_backend(
                third_party_taxonomy_matrix(columns, self.index)
            )
            with self._storage_lock:
                self._raw[attribute] = rebuilt
            return
        merged = np.empty(self.index.total_objects, dtype=object)
        merged[:] = [c for site in self.index.sites for c in columns[site]]
        fresh = np.asarray(plan.arrival_positions(self.index), dtype=np.int64)
        survivors = np.setdiff1d(
            np.arange(self.index.total_objects, dtype=np.int64), fresh
        )
        matrix = self._matrix_for(attribute)
        matrix.set_block(
            fresh.tolist(),
            survivors.tolist(),
            (merged[fresh][:, None] != merged[survivors][None, :]).astype(np.float64),
        )
        if fresh.size >= 2:
            a, b = np.tril_indices(fresh.size, -1)
            among = DissimilarityMatrix(
                fresh.size,
                (merged[fresh][a] != merged[fresh][b]).astype(np.float64),
            )
            matrix.set_submatrix(fresh.tolist(), among)

    def retire_objects(self, sites: list[str], new_index: GlobalIndex) -> None:
        """Apply announced retirements: shrink every matrix and column.

        Receives one ``retire_records`` message per listed site, maps the
        local ids through the *current* index, drops the rows from every
        raw matrix and stored ciphertext column, adopts the shrunk index
        and re-normalises every attribute (the [0, 1] peak may have left
        with the retired records).  No protocol rounds are needed:
        surviving pairs keep their exact entries.
        """
        positions: list[int] = []
        removed_by_site: dict[str, list[int]] = {}
        for site in sites:
            message = self.receive(kind="retire_records", sender=site)
            local_ids = [int(i) for i in message.payload["local_ids"]]
            size = self.index.size_of(site)
            if len(set(local_ids)) != len(local_ids) or any(
                not 0 <= i < size for i in local_ids
            ):
                raise ProtocolError(
                    f"invalid retirement ids from {site!r}: {local_ids}"
                )
            if len(local_ids) >= size:
                raise ProtocolError(f"site {site!r} cannot retire every record")
            removed_by_site[site] = local_ids
            offset = self.index.offset_of(site)
            positions.extend(offset + i for i in local_ids)
        for site in self.index.sites:
            expected = self.index.size_of(site) - len(removed_by_site.get(site, ()))
            if new_index.size_of(site) != expected:
                raise ProtocolError(
                    f"new index holds {new_index.size_of(site)} objects for "
                    f"{site!r}, retirements imply {expected}"
                )
        with self._storage_lock:
            for attribute in self._raw:
                self._raw[attribute] = self._raw[attribute].remove_objects(positions)
            for columns in self._pending_categorical.values():
                for site, local_ids in removed_by_site.items():
                    drop = set(local_ids)
                    columns[site] = [
                        c for i, c in enumerate(columns[site]) if i not in drop
                    ]
        self.index = new_index
        for spec in self.schema:
            self.finalize_attribute(spec.name)

    # -- assembly (Figure 11) -------------------------------------------------------------

    def finalize_attribute(self, attribute: str) -> None:
        """Normalise the attribute's completed matrix into [0, 1]."""
        raw = self._raw.get(attribute)
        if raw is None:
            raise ProtocolError(f"attribute {attribute!r} was never constructed")
        # Normalisation is O(n^2); run it outside the lock (the raw matrix
        # is complete by the time a finalize step is scheduled) and only
        # publish the result under it.
        normalized = raw.normalized()
        with self._storage_lock:
            self._normalized[attribute] = normalized

    def attribute_matrix(self, attribute: str) -> DissimilarityMatrix:
        """The normalised per-attribute matrix (experiment access).

        In a deployment this never leaves the TP (Section 5); experiments
        and tests read it to verify exactness against the centralized
        baseline.
        """
        try:
            return self._normalized[attribute]
        except KeyError:
            raise ProtocolError(f"attribute {attribute!r} not finalised") from None

    def receive_weights(self, holder: str) -> None:
        """Record one holder's attribute weight vector."""
        message = self.receive(kind="weights", sender=holder)
        weights = list(message.payload)
        if len(weights) != len(self.schema):
            raise ProtocolError(
                f"{holder!r} sent {len(weights)} weights for {len(self.schema)} attributes"
            )
        with self._storage_lock:
            self._weights[holder] = weights

    def snapshot_state(self) -> dict:
        """Serializable construction state for session checkpoints.

        Captures the *raw* condensed matrices (normalisation is a pure
        function of them and is recomputed on restore), the retained
        ciphertext columns (delta/retirement bookkeeping needs them) and
        the holders' weight vectors.  Must be taken between epochs --
        never while a delta is open.
        """
        if self._delta_plan is not None:
            raise ProtocolError("cannot snapshot while a delta epoch is open")
        with self._storage_lock:
            return {
                "raw": {
                    attr: [float(v) for v in matrix.condensed]
                    for attr, matrix in self._raw.items()
                },
                "pending_categorical": {
                    attr: {site: list(column) for site, column in columns.items()}
                    for attr, columns in self._pending_categorical.items()
                },
                "weights": {
                    site: [float(w) for w in vector]
                    for site, vector in self._weights.items()
                },
            }

    def restore_state(self, state: dict) -> None:
        """Install a checkpointed construction state (see :meth:`snapshot_state`)."""
        total = self.index.total_objects
        raw = {
            attr: DissimilarityMatrix(
                total,
                np.asarray(condensed, dtype=np.float64),
                store_spec=self._store_spec,
            )
            for attr, condensed in state["raw"].items()
        }
        with self._storage_lock:
            self._raw = raw
            self._pending_categorical = {
                attr: {site: list(column) for site, column in columns.items()}
                for attr, columns in state["pending_categorical"].items()
            }
            self._weights = {
                site: [float(w) for w in vector]
                for site, vector in state["weights"].items()
            }
        for attr in raw:
            self.finalize_attribute(attr)

    def finalized_attributes(self) -> list[str]:
        """Names of attributes whose matrices are finalised, schema order.

        A degraded session merges exactly these -- the attributes whose
        construction completed before a fault took their peers down.
        """
        with self._storage_lock:
            return [a.name for a in self.schema if a.name in self._normalized]

    def merged_matrix(
        self,
        weights: list[float] | None = None,
        attributes: list[str] | None = None,
    ) -> DissimilarityMatrix:
        """Weighted merge of the normalised attribute matrices.

        ``weights=None`` averages the holders' submitted vectors (all
        equal vectors therefore behave as any one of them); explicit
        ``weights`` always span the *full* schema.  ``attributes``
        restricts the merge to a subset (a degraded session passes the
        completed attributes); weights for excluded attributes are simply
        not used, so a partial merge over attributes ``S`` is exactly the
        matrix a fault-free session configured with only ``S`` would
        publish.
        """
        if attributes is None:
            names = [a.name for a in self.schema]
        else:
            wanted = set(attributes)
            unknown = wanted - {a.name for a in self.schema}
            if unknown:
                raise ProtocolError(f"unknown attributes {sorted(unknown)}")
            names = [a.name for a in self.schema if a.name in wanted]
        if not names:
            raise ProtocolError("no attributes selected to merge")
        missing = [n for n in names if n not in self._normalized]
        if missing:
            raise ProtocolError(f"attributes not finalised: {missing}")
        if weights is None:
            if self._weights:
                stacked = np.asarray(list(self._weights.values()), dtype=np.float64)
                weights = list(stacked.mean(axis=0))
            else:
                weights = [1.0] * len(self.schema)
        positions = {a.name: i for i, a in enumerate(self.schema)}
        matrices = [self._normalized[n] for n in names]
        return merge_weighted(matrices, [weights[positions[n]] for n in names])

    # -- clustering and publication (Section 5) ----------------------------------------------

    def cluster_and_publish(
        self,
        holders: list[str],
        num_clusters: int,
        linkage: LinkageMethod,
        weights: list[float] | None = None,
        attributes: list[str] | None = None,
    ) -> ClusteringResult:
        """Cluster the merged matrix, publish membership lists to holders.

        ``attributes`` restricts the merge (degraded sessions cluster
        over the attributes that survived; see :meth:`merged_matrix`).
        """
        final = self.merged_matrix(weights, attributes=attributes)
        dendrogram = agglomerative(final, linkage)
        flat = dendrogram.cut_at_k(min(num_clusters, final.num_objects))
        quality = average_square_distance(final, flat)
        result = result_from_labels(
            list(self.index.refs()), flat, quality=quality, linkage=linkage.value
        )
        payload = result.to_payload()
        for holder in holders:
            self.send(holder, kind="result", payload=payload, tag="result")
        return result
