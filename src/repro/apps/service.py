"""The incremental clustering service: sessions that absorb change.

A :class:`~repro.core.session.ClusteringSession` is one-shot -- the
deployment shape of the ROADMAP's heavy-traffic north star is a standing
consortium whose sites keep *receiving and retiring records*.
:class:`ClusteringService` is that shape: it runs the full Figure 11
construction once, then applies every subsequent arrival batch as a
**delta** (:mod:`repro.core.delta`) -- comparison protocols run only for
pairs that touch an arrival, the global condensed matrices are patched
in place, and the third party re-clusters on demand.  Retirements are
cheaper still: surviving pairs keep their exact distances, so matrices
just shrink.

The contract is *differential equivalence*: after any sequence of
ingests and retirements, the service's per-attribute matrices, merged
matrix, dendrogram and medoids are **bit-identical** to a from-scratch
session over the current union of partitions.  The protocols make that
possible -- every unmasked distance equals the plain comparison function
of the two values -- and the stateful differential suite
(``tests/test_incremental_differential.py``) enforces it.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.config import SessionConfig
from repro.core.delta import DeltaPlan, SiteGrowth, construct_attributes_delta
from repro.core.results import ClusteringResult
from repro.core.scheduler import ConstructionOutcome
from repro.core.session import ClusteringSession
from repro.crypto.keys import PairwiseSecret
from repro.data.matrix import DataMatrix, Schema
from repro.data.partition import GlobalIndex
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ConfigurationError, ProtocolError, SnapshotError
from repro.network.serialization import deserialize, serialize
from repro.types import LinkageMethod

#: Version tag of the checkpoint blob layout.
SNAPSHOT_FORMAT = 1


class ClusteringService:
    """A standing session that ingests and retires records incrementally.

    Parameters mirror :class:`ClusteringSession`; construction for the
    initial partitions runs eagerly in the constructor, so the first
    :meth:`recluster` (and every ingest) starts from a complete set of
    per-attribute matrices.  Pass ``shared_secrets`` (e.g. from
    :meth:`repro.apps.sessions.SessionBatch.service`) to amortise
    Diffie-Hellman setup across services of one consortium.
    """

    def __init__(
        self,
        config: SessionConfig,
        partitions: Mapping[str, DataMatrix],
        tp_name: str = "TP",
        shared_secrets: Mapping[tuple[str, str], PairwiseSecret] | None = None,
    ) -> None:
        self._session = ClusteringSession(
            config, partitions, tp_name=tp_name, shared_secrets=shared_secrets
        )
        self._session.execute_protocol()
        self._epoch = 0
        #: Step names of the most recent delta construction, in realized
        #: order (mirrors ``ClusteringSession.construction_trace``).
        self.delta_trace: list[str] = []

    # -- introspection -----------------------------------------------------

    @property
    def session(self) -> ClusteringSession:
        """The underlying session (network, holders, third party)."""
        return self._session

    @property
    def config(self) -> SessionConfig:
        return self._session.config

    @property
    def index(self) -> GlobalIndex:
        """Current global index (updates as records arrive and retire)."""
        return self._session.index

    @property
    def epoch(self) -> int:
        """Monotone mutation counter (one per ingest/retire batch)."""
        return self._epoch

    def partitions(self) -> dict[str, DataMatrix]:
        """Each site's *current* partition (what a rebuild would start from)."""
        return {
            site: self._session.holders[site].matrix
            for site in self._session.index.sites
        }

    def total_objects(self) -> int:
        return self._session.index.total_objects

    def total_bytes(self) -> int:
        """Wire bytes across the service's whole history."""
        return self._session.total_bytes()

    def matrix(self) -> DissimilarityMatrix:
        """The third party's current merged matrix (experiment access only)."""
        return self._session.third_party.merged_matrix()

    # -- checkpoint / resume ----------------------------------------------

    def snapshot(self) -> bytes:
        """Serialize the service's resumable state into one blob.

        The checkpoint captures everything the *protocol history* has
        produced that a fresh setup cannot rederive: the third party's
        raw condensed matrices and retained ciphertext columns, each
        holder's current partition rows, the categorical group key, the
        epoch counter, and -- the subtle part -- the draw position of
        every stateful PRNG (channel nonce entropy per link, holder
        entropy per site), keyed by the same labels the session derives
        them under.  What it deliberately omits: pairwise secrets and
        derived keys (rederived bit-identically from ``master_seed`` at
        restore) and normalised matrices (pure functions of the raw
        ones).

        Must be taken at a quiescent point -- all lanes drained, no open
        delta epoch -- i.e. between :meth:`ingest`/:meth:`retire` calls.
        Restoring (:meth:`restore`) and re-running the interrupted epoch
        reproduces the uninterrupted run bit for bit, because every delta
        PRNG label is epoch-scoped and nonce streams resume from their
        checkpointed positions.
        """
        session = self._session
        session.network.assert_drained()
        state = {
            "format": SNAPSHOT_FORMAT,
            "epoch": self._epoch,
            "sites": {
                site: session.index.size_of(site) for site in session.index.sites
            },
            "holder_rows": {
                site: [list(row) for row in session.holders[site].matrix.rows]
                for site in session.index.sites
            },
            "third_party": session.third_party.snapshot_state(),
            "group_keys": {
                site: session.holders[site].group_key_bytes()
                for site in session.index.sites
            },
            "channel_entropy": session.network.channel_entropy_positions(),
            "holder_entropy": {
                site: session.holders[site].entropy_draws()
                for site in session.index.sites
            },
        }
        return serialize(state)

    @classmethod
    def restore(
        cls,
        config: SessionConfig,
        schema: Schema,
        blob: bytes,
        tp_name: str = "TP",
        shared_secrets: Mapping[tuple[str, str], PairwiseSecret] | None = None,
    ) -> "ClusteringService":
        """Rebuild a service from a :meth:`snapshot` blob.

        ``config`` and ``schema`` must match the snapshotted service's
        (the blob carries no secrets, so ``master_seed`` is the caller's
        to supply).  Setup re-runs from the seed -- identical pairwise
        secrets and channel keys -- then matrices, group key and PRNG
        positions are installed from the blob and the construction phase
        is marked complete without re-running any protocol round.

        Raises :class:`~repro.exceptions.SnapshotError` when the blob is
        truncated or corrupted, carries an unsupported format version, is
        missing state sections, or disagrees with the supplied ``schema``
        -- so supervisors can tell "bad checkpoint file" apart from
        protocol failures.
        """
        try:
            state = deserialize(blob)
        except Exception as exc:
            raise SnapshotError(
                f"snapshot blob is truncated or corrupted: {exc}"
            ) from exc
        if not isinstance(state, dict):
            raise SnapshotError(
                f"snapshot blob must decode to a dict, got {type(state).__name__}"
            )
        if state.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"unsupported snapshot format {state.get('format')!r} "
                f"(this build reads format {SNAPSHOT_FORMAT})"
            )
        required = (
            "epoch",
            "sites",
            "holder_rows",
            "third_party",
            "group_keys",
            "channel_entropy",
            "holder_entropy",
        )
        missing = [key for key in required if key not in state]
        if missing:
            raise SnapshotError(
                f"snapshot blob is missing state sections: {missing}"
            )
        if set(state["holder_rows"]) != set(state["sites"]):
            raise SnapshotError(
                "snapshot sites and holder rows disagree on the consortium "
                f"({sorted(state['sites'])} vs {sorted(state['holder_rows'])})"
            )
        try:
            partitions = {
                site: DataMatrix(schema, [tuple(row) for row in rows])
                for site, rows in state["holder_rows"].items()
            }
        except Exception as exc:
            raise SnapshotError(
                "snapshot rows do not fit the supplied schema "
                f"(was it taken under a different session config?): {exc}"
            ) from exc
        for site, size in state["sites"].items():
            if partitions[site].num_rows != size:
                raise SnapshotError(
                    f"snapshot rows for {site!r} disagree with its recorded size"
                )
        service = cls.__new__(cls)
        session = ClusteringSession(
            config, partitions, tp_name=tp_name, shared_secrets=shared_secrets
        )
        session.third_party.restore_state(state["third_party"])
        for site, group_key in state["group_keys"].items():
            if group_key is not None:
                session.holders[site].install_group_key(group_key)
        session.network.advance_channel_entropy(state["channel_entropy"])
        for site, target in state["holder_entropy"].items():
            session.holders[site].advance_entropy(int(target))
        session._constructed = True
        service._session = session
        service._epoch = int(state["epoch"])
        service.delta_trace = []
        return service

    # -- mutations ---------------------------------------------------------

    def ingest(
        self,
        arrivals: Mapping[str, DataMatrix],
        recluster: bool = True,
    ) -> ClusteringResult | None:
        """Absorb one batch of arriving records (per-site matrices).

        Runs the delta construction -- protocols only for new-pair
        blocks -- then re-clusters and publishes unless ``recluster``
        is ``False`` (bulk loaders chain several ingests and cluster
        once at the end).
        """
        session = self._session
        batches: dict[str, DataMatrix] = {}
        for site, batch in arrivals.items():
            if site not in session.holders:
                raise ConfigurationError(f"unknown site {site!r}")
            if not isinstance(batch, DataMatrix):
                raise ConfigurationError(
                    f"arrivals for {site!r} must be a DataMatrix"
                )
            if batch.schema != session.schema:
                raise ConfigurationError(
                    f"arrivals for {site!r} do not share the session schema"
                )
            if batch.num_rows:
                batches[site] = batch
        if not batches:
            raise ConfigurationError("ingest needs at least one arriving record")

        old_index = session.index
        growth = {
            site: SiteGrowth(
                old_index.size_of(site),
                old_index.size_of(site)
                + (batches[site].num_rows if site in batches else 0),
            )
            for site in old_index.sites
        }
        self._epoch += 1
        plan = DeltaPlan(self._epoch, growth)
        new_index = old_index.extend(
            {site: batch.num_rows for site, batch in batches.items()}
        )

        session.third_party.begin_delta(plan, new_index)
        for site, batch in batches.items():
            session.holders[site].ingest_rows(batch)
            session.partitions[site] = session.holders[site].matrix
        session.index = new_index
        outcome = construct_attributes_delta(
            session.schema,
            session.holders,
            session.third_party,
            plan,
            policy=session.config.suite.construction_schedule,
            max_workers=session.config.max_workers,
            tolerate_faults=session.config.suite.tolerate_faults,
            watchdog_timeout=session.config.watchdog_timeout,
        )
        if isinstance(outcome, ConstructionOutcome):
            self.delta_trace = list(outcome.trace)
            session.degraded_report = outcome.report
        else:
            self.delta_trace = outcome
        session.third_party.end_delta()
        if recluster:
            return self.recluster()
        if session.degraded:
            session.network.drain()
        else:
            session.network.assert_drained()
        return None

    def retire(
        self,
        removals: Mapping[str, Sequence[int]],
        recluster: bool = True,
    ) -> ClusteringResult | None:
        """Drop records by site-local id; survivors compact in order.

        No protocol rounds run -- surviving pairs keep their exact
        distances -- so a retirement costs one condensed shrink per
        attribute plus re-normalisation.
        """
        session = self._session
        drops: dict[str, list[int]] = {}
        for site, local_ids in removals.items():
            if site not in session.holders:
                raise ConfigurationError(f"unknown site {site!r}")
            ids = sorted({int(i) for i in local_ids})
            if not ids:
                continue
            size = session.index.size_of(site)
            if ids[0] < 0 or ids[-1] >= size:
                raise ConfigurationError(
                    f"retirement ids {ids} out of range for site {site!r} "
                    f"({size} objects)"
                )
            if len(ids) >= size:
                raise ConfigurationError(
                    f"site {site!r} cannot retire every record"
                )
            drops[site] = ids
        if not drops:
            raise ConfigurationError("retire needs at least one record")

        self._epoch += 1
        for site in sorted(drops):
            session.holders[site].announce_retirement(session.tp_name, drops[site])
        new_index = GlobalIndex(
            {
                site: session.index.size_of(site) - len(drops.get(site, ()))
                for site in session.index.sites
            }
        )
        session.third_party.retire_objects(sorted(drops), new_index)
        for site, ids in drops.items():
            session.holders[site].retire_rows(ids)
            session.partitions[site] = session.holders[site].matrix
        session.index = new_index
        if recluster:
            return self.recluster()
        session.network.assert_drained()
        return None

    # -- clustering --------------------------------------------------------

    def recluster(self) -> ClusteringResult:
        """Cluster the current matrix and publish to every holder.

        After a degraded delta (``suite.tolerate_faults``), clusters the
        attributes whose construction completed and publishes only to
        reachable holders -- same contract as
        :meth:`repro.core.session.ClusteringSession.run`.
        """
        session = self._session
        linkage = session.config.linkage
        assert isinstance(linkage, LinkageMethod)
        if session.degraded:
            report = session.degraded_report
            assert report is not None
            down = set(session.unreachable_sites)
            plan = session.network.fault_plan
            if plan is not None:
                down.update(plan.crashed_parties())
            reachable = [s for s in session.index.sites if s not in down]
            result = session.third_party.cluster_and_publish(
                reachable,
                session.config.num_clusters,
                linkage,
                attributes=list(report.completed_attributes),
            )
            for site in reachable:
                received = session.holders[site].receive_result(session.tp_name)
                if received.to_payload() != result.to_payload():
                    raise ProtocolError(f"result received by {site!r} diverged")
            session.network.drain()
            return result
        result = session.third_party.cluster_and_publish(
            list(session.index.sites), session.config.num_clusters, linkage
        )
        for site in session.index.sites:
            received = session.holders[site].receive_result(session.tp_name)
            if received.to_payload() != result.to_payload():
                raise ProtocolError(f"result received by {site!r} diverged")
        session.network.assert_drained()
        return result
