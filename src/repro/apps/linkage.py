"""Private record linkage on the privately-built dissimilarity matrix.

Record linkage asks: which records at site A and site B refer to the
same real-world entity?  With the paper's protocols, the third party
holds the cross-site block of the global dissimilarity matrix without
having seen a single attribute value -- linkage is then a matching
problem on that block (Section 1 and Section 6 name this application
explicitly).

Two matching strategies are provided:

* ``greedy`` -- repeatedly link the globally closest unlinked pair under
  the threshold; fast, order-independent given distinct distances,
* ``optimal`` -- minimum-cost assignment via
  ``scipy.optimize.linear_sum_assignment`` restricted to under-threshold
  pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.data.partition import GlobalIndex, ObjectRef
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LinkageMatch:
    """One linked record pair and its distance."""

    left: ObjectRef
    right: ObjectRef
    distance: float


def _cross_block(
    matrix: DissimilarityMatrix, index: GlobalIndex, site_a: str, site_b: str
) -> np.ndarray:
    rows, cols = index.block(site_a, site_b)
    return matrix.cross_block(rows, cols)


def private_record_linkage(
    matrix: DissimilarityMatrix,
    index: GlobalIndex,
    site_a: str,
    site_b: str,
    threshold: float,
    strategy: str = "optimal",
) -> list[LinkageMatch]:
    """Link records of ``site_a`` to records of ``site_b``.

    Parameters
    ----------
    matrix:
        The global dissimilarity matrix (typically
        :meth:`repro.core.session.ClusteringSession.final_matrix`).
    threshold:
        Maximum distance for a pair to count as a link.  Distances are
        normalised to [0, 1] by the construction pipeline, so thresholds
        are scale-free.
    strategy:
        ``"optimal"`` (assignment problem) or ``"greedy"``.

    Returns matches sorted by ascending distance.  Each record links at
    most once (one-to-one linkage).
    """
    if site_a == site_b:
        raise ConfigurationError("record linkage needs two distinct sites")
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    if strategy not in ("optimal", "greedy"):
        raise ConfigurationError(f"unknown strategy {strategy!r}")

    block = _cross_block(matrix, index, site_a, site_b)
    matches: list[LinkageMatch] = []

    if strategy == "greedy":
        used_rows: set[int] = set()
        used_cols: set[int] = set()
        order = np.dstack(np.unravel_index(np.argsort(block, axis=None), block.shape))[0]
        for i, j in order:
            if block[i, j] > threshold:
                break
            if i in used_rows or j in used_cols:
                continue
            used_rows.add(int(i))
            used_cols.add(int(j))
            matches.append(
                LinkageMatch(
                    left=ObjectRef(site_a, int(i)),
                    right=ObjectRef(site_b, int(j)),
                    distance=float(block[i, j]),
                )
            )
    else:
        # Over-threshold pairs get a prohibitive cost; assignments landing
        # on them are dropped afterwards.
        penalty = max(1.0, float(block.max())) * 10.0 + threshold
        costs = np.where(block <= threshold, block, penalty)
        row_idx, col_idx = linear_sum_assignment(costs)
        for i, j in zip(row_idx, col_idx):
            if block[i, j] <= threshold:
                matches.append(
                    LinkageMatch(
                        left=ObjectRef(site_a, int(i)),
                        right=ObjectRef(site_b, int(j)),
                        distance=float(block[i, j]),
                    )
                )
    matches.sort(key=lambda m: (m.distance, m.left.local_id, m.right.local_id))
    return matches
