"""Scale probe for the condensed storage backends.

Fills a synthetic tie-free dissimilarity matrix block-by-block (never
materialising the full triangle in Python), runs one clustering
scenario on it, and reports wall time, peak RSS and a result digest as
JSON.  The benchmark suite and the RSS regression tests run this in a
subprocess so the RSS high-water mark measures exactly one workload;
the n=50,000 acceptance runs use it directly::

    PYTHONPATH=src python -m repro.apps.storage_probe \
        --scenario pam --n 50000 --backend memmap

The synthetic fill is a fixed bijection of the condensed positions:
``value(p) = ((p * ODD) mod 2^53 + 1) * 2^-53``.  Multiplying by an odd
constant is invertible mod ``2^53``, so every pairwise distance is
distinct (no linkage ties -- the NN-chain never needs its replay pass)
and exactly representable in float64 (bit-identical across backends).
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import re
import resource
import sys
import time

import numpy as np

from repro.clustering.kmedoids import k_medoids
from repro.clustering.linkage import agglomerative
from repro.distance.dissimilarity import DissimilarityMatrix, condensed_size
from repro.distance.store import StoreSpec, default_store_spec
from repro.types import LinkageMethod

#: Odd multiplier for the position-scrambling bijection (the golden
#: ratio's 64-bit fixed-point form, masked to 53 bits in use).
_SCRAMBLE = 0x9E3779B97F4A7C15
_MASK53 = (1 << 53) - 1

SCENARIOS = ("agglomerative", "pam")


def synthetic_matrix(
    n: int, spec: StoreSpec, *, fill_block: int = 1 << 21
) -> DissimilarityMatrix:
    """A tie-free synthetic matrix on ``spec``'s backend, filled streamed."""
    matrix = DissimilarityMatrix.zeros(n, store_spec=spec)
    size = condensed_size(n)
    for start in range(0, size, fill_block):
        stop = min(start + fill_block, size)
        positions = np.arange(start, stop, dtype=np.uint64)
        scrambled = (positions * np.uint64(_SCRAMBLE)) & np.uint64(_MASK53)
        matrix.write_condensed(
            start, (scrambled.astype(np.float64) + 1.0) * 2.0**-53
        )
    return matrix


def peak_rss_kb() -> int:
    """This process's peak resident set, in kilobytes.

    Prefers ``VmHWM`` from ``/proc/self/status``: it is tracked per
    address space, so it resets at ``exec`` and measures only this
    program.  ``ru_maxrss`` does not -- a process forked from a fat
    parent (a long pytest session) inherits the parent's resident size
    as its starting high-water mark, which once inflated an n=2000
    probe's reading past a cap sized for a 15 MB triangle.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            status = handle.read()
        match = re.search(r"^VmHWM:\s+(\d+)\s+kB", status, re.MULTILINE)
        if match:
            return int(match.group(1))
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _digest(parts: list[bytes]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
    return digest.hexdigest()


def run_probe(
    scenario: str,
    n: int,
    spec: StoreSpec,
    *,
    k: int = 8,
    linkage: LinkageMethod | str = LinkageMethod.AVERAGE,
) -> dict[str, object]:
    """Build the synthetic matrix, run ``scenario``, report the numbers.

    The report's ``peak_rss_mb`` is the process high-water mark
    (:func:`peak_rss_kb`), which is only meaningful when the probe is
    the dominant allocation in its process -- run it in a subprocess.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; choose from {SCENARIOS}")
    started = time.perf_counter()
    matrix = synthetic_matrix(n, spec)
    fill_seconds = time.perf_counter() - started

    clustered = time.perf_counter()
    if scenario == "agglomerative":
        tree = agglomerative(matrix, linkage)
        parts = [
            np.array(
                [(m.left, m.right, m.size) for m in tree.merges], dtype=np.int64
            ).tobytes(),
            np.array([m.height for m in tree.merges], dtype=np.float64).tobytes(),
        ]
    else:
        result = k_medoids(matrix, k)
        parts = [
            np.array(result.labels, dtype=np.int64).tobytes(),
            np.array(result.medoids, dtype=np.int64).tobytes(),
            np.array([result.cost], dtype=np.float64).tobytes(),
        ]
    cluster_seconds = time.perf_counter() - clustered

    peak_kb = peak_rss_kb()
    return {
        "scenario": scenario,
        "n": n,
        "backend": matrix.store_kind,
        "block_entries": spec.block_entries,
        "cache_bytes": spec.cache_bytes,
        "fill_seconds": round(fill_seconds, 3),
        "cluster_seconds": round(cluster_seconds, 3),
        "seconds": round(fill_seconds + cluster_seconds, 3),
        "peak_rss_mb": round(peak_kb / 1024.0, 1),
        "digest": _digest(parts),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.storage_probe",
        description="run one clustering scenario on a synthetic matrix "
        "and report time, peak RSS and a result digest as JSON",
    )
    parser.add_argument("--scenario", choices=SCENARIOS, required=True)
    parser.add_argument("--n", type=int, required=True, help="object count")
    parser.add_argument("--backend", default=None, help="memory|float32|memmap")
    parser.add_argument("--block-entries", type=int, default=None)
    parser.add_argument("--cache-bytes", type=int, default=None)
    parser.add_argument("--store-dir", default=None)
    parser.add_argument("--k", type=int, default=8, help="clusters for pam")
    parser.add_argument(
        "--linkage", default="average", help="method for agglomerative"
    )
    parser.add_argument("--json-out", default=None)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    spec = default_store_spec()
    overrides = {
        "backend": args.backend,
        "block_entries": args.block_entries,
        "cache_bytes": args.cache_bytes,
        "directory": args.store_dir,
    }
    spec = dataclasses.replace(
        spec,
        **{name: value for name, value in overrides.items() if value is not None},
    )
    report = run_probe(
        args.scenario, args.n, spec, k=args.k, linkage=args.linkage
    )
    payload = json.dumps(report, sort_keys=True)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
