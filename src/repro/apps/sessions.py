"""One-call pipelines for the non-clustering applications.

The record linkage and outlier detection applications (Sections 1 and 6)
both consist of "run the paper's construction, then consume the matrix".
These helpers package that sequence so application code never touches
protocol internals.
"""

from __future__ import annotations

from typing import Mapping

from repro.apps.linkage import LinkageMatch, private_record_linkage
from repro.apps.outliers import OutlierReport, knn_outliers
from repro.core.config import SessionConfig
from repro.core.session import ClusteringSession
from repro.data.matrix import DataMatrix
from repro.exceptions import ConfigurationError


def run_private_linkage(
    partitions: Mapping[str, DataMatrix],
    threshold: float,
    strategy: str = "optimal",
    config: SessionConfig | None = None,
) -> tuple[list[LinkageMatch], ClusteringSession]:
    """Privately link the records of exactly two sites.

    Builds the global dissimilarity matrix with the paper's protocols,
    then matches the cross-site block.  Returns the matches plus the
    session (for traffic inspection).
    """
    if len(partitions) != 2:
        raise ConfigurationError(
            f"record linkage needs exactly two sites, got {len(partitions)}"
        )
    config = config or SessionConfig(num_clusters=2)
    session = ClusteringSession(config, partitions)
    matrix = session.final_matrix()
    site_a, site_b = session.index.sites
    matches = private_record_linkage(
        matrix, session.index, site_a, site_b, threshold, strategy
    )
    return matches, session


def run_private_outlier_detection(
    partitions: Mapping[str, DataMatrix],
    k: int = 3,
    top_n: int | None = None,
    threshold: float | None = None,
    config: SessionConfig | None = None,
) -> tuple[OutlierReport, ClusteringSession]:
    """Privately flag outliers across all sites' pooled objects.

    Same protocol run as clustering; the TP scores each object by its
    k-NN distance in the final matrix.  Returns the report plus the
    session.
    """
    config = config or SessionConfig(num_clusters=2)
    session = ClusteringSession(config, partitions)
    matrix = session.final_matrix()
    report = knn_outliers(
        matrix, session.index, k=k, top_n=top_n, threshold=threshold
    )
    return report, session
