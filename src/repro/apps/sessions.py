"""One-call pipelines for the non-clustering applications.

The record linkage and outlier detection applications (Sections 1 and 6)
both consist of "run the paper's construction, then consume the matrix".
These helpers package that sequence so application code never touches
protocol internals.  :class:`SessionBatch` serves the heavy-traffic
deployment shape: the same consortium of sites running the protocol over
many datasets, with per-session setup amortised away.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Mapping, Sequence

from repro.apps.linkage import LinkageMatch, private_record_linkage
from repro.apps.outliers import OutlierReport, knn_outliers
from repro.core.config import SessionConfig
from repro.core.results import ClusteringResult
from repro.core.session import ClusteringSession, session_entropy
from repro.crypto.keys import PairwiseSecret, agree_pairwise
from repro.data.matrix import DataMatrix
from repro.exceptions import ConfigurationError


class SessionBatch:
    """Amortises party setup across many sessions of one consortium.

    Pairwise Diffie-Hellman key agreement costs ``C(k+1, 2)`` modular
    exponentiations in a 2048-bit group -- for small workloads it
    dominates a session's runtime.  A batch runs the agreement *once*
    for a fixed set of site names (deriving exactly the secrets a
    standalone session with the same ``config.master_seed`` would
    derive, so transcripts are byte-identical) and then mints sessions
    against the cached secrets.

    Example
    -------
    >>> batch = SessionBatch(SessionConfig(num_clusters=2), ["A", "B"])
    >>> results = batch.run_many([partitions_jan, partitions_feb])
    ... # doctest: +SKIP
    """

    def __init__(
        self,
        config: SessionConfig,
        sites: Sequence[str],
        tp_name: str = "TP",
    ) -> None:
        sites = list(sites)
        if len(sites) < 2:
            raise ConfigurationError(
                f"the protocol requires k >= 2 data holders, got {len(sites)}"
            )
        if len(set(sites)) != len(sites):
            raise ConfigurationError(f"duplicate site names: {sites}")
        if tp_name in sites:
            raise ConfigurationError(
                f"third party name {tp_name!r} collides with a data holder"
            )
        self.config = config
        self.sites = sites
        self.tp_name = tp_name
        names = sorted(sites) + [tp_name]
        self._secrets: dict[tuple[str, str], PairwiseSecret] = agree_pairwise(
            {
                name: session_entropy(config.master_seed, f"dh|{name}")
                for name in names
            }
        )

    def session(self, partitions: Mapping[str, DataMatrix]) -> ClusteringSession:
        """A fresh session over ``partitions``, reusing the cached secrets."""
        if set(partitions) != set(self.sites):
            raise ConfigurationError(
                f"partitions cover {sorted(partitions)}, batch is for {sorted(self.sites)}"
            )
        return ClusteringSession(
            self.config,
            partitions,
            tp_name=self.tp_name,
            shared_secrets=self._secrets,
        )

    def run_many(
        self, partition_batches: Iterable[Mapping[str, DataMatrix]]
    ) -> list[ClusteringResult]:
        """Run one full session per element of ``partition_batches``."""
        return [self.session(partitions).run() for partitions in partition_batches]

    def run_many_parallel(
        self,
        partition_batches: Iterable[Mapping[str, DataMatrix]],
        max_workers: int | None = None,
    ) -> list[ClusteringResult]:
        """Run whole sessions concurrently over a shared worker pool.

        The heavy-traffic serving shape: one consortium, many datasets,
        ``max_workers`` (default ``config.max_workers``) sessions in
        flight at once.  Each session owns its network, parties and
        matrices, and the cached pairwise secrets are immutable
        (derivation mints fresh PRNGs per call), so sessions share no
        mutable state -- the returned results are **bit-identical** to
        :meth:`run_many` over the same batches, in the same order.

        Protocol steps release the GIL in numpy, and simulated link
        latency sleeps outside every lock, so throughput scales with
        workers on multicore hardware and on latency-bound workloads
        alike.  Inner sessions keep whatever ``construction_schedule``
        the batch config names; for many concurrent small sessions the
        serial schedules avoid oversubscribing the pool.
        """
        batches = list(partition_batches)
        workers = self.config.max_workers if max_workers is None else max_workers
        if workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {workers}")
        if not batches:
            return []
        with ThreadPoolExecutor(
            max_workers=min(workers, len(batches)), thread_name_prefix="session"
        ) as pool:
            return list(pool.map(lambda p: self.session(p).run(), batches))

    def service(self, partitions: Mapping[str, DataMatrix]) -> "ClusteringService":
        """A standing incremental service over ``partitions``.

        Same amortisation as :meth:`session` -- cached pairwise secrets,
        byte-identical transcripts -- but the returned
        :class:`~repro.apps.service.ClusteringService` then absorbs
        arrivals and retirements via delta construction instead of
        re-running the full protocol per dataset.
        """
        if set(partitions) != set(self.sites):
            raise ConfigurationError(
                f"partitions cover {sorted(partitions)}, batch is for {sorted(self.sites)}"
            )
        from repro.apps.service import ClusteringService

        return ClusteringService(
            self.config,
            partitions,
            tp_name=self.tp_name,
            shared_secrets=self._secrets,
        )


def run_private_linkage(
    partitions: Mapping[str, DataMatrix],
    threshold: float,
    strategy: str = "optimal",
    config: SessionConfig | None = None,
) -> tuple[list[LinkageMatch], ClusteringSession]:
    """Privately link the records of exactly two sites.

    Builds the global dissimilarity matrix with the paper's protocols,
    then matches the cross-site block.  Returns the matches plus the
    session (for traffic inspection).
    """
    if len(partitions) != 2:
        raise ConfigurationError(
            f"record linkage needs exactly two sites, got {len(partitions)}"
        )
    config = config or SessionConfig(num_clusters=2)
    session = ClusteringSession(config, partitions)
    matrix = session.final_matrix()
    site_a, site_b = session.index.sites
    matches = private_record_linkage(
        matrix, session.index, site_a, site_b, threshold, strategy
    )
    return matches, session


def run_private_outlier_detection(
    partitions: Mapping[str, DataMatrix],
    k: int = 3,
    top_n: int | None = None,
    threshold: float | None = None,
    config: SessionConfig | None = None,
) -> tuple[OutlierReport, ClusteringSession]:
    """Privately flag outliers across all sites' pooled objects.

    Same protocol run as clustering; the TP scores each object by its
    k-NN distance in the final matrix.  Returns the report plus the
    session.
    """
    config = config or SessionConfig(num_clusters=2)
    session = ClusteringSession(config, partitions)
    matrix = session.final_matrix()
    report = knn_outliers(
        matrix, session.index, k=k, top_n=top_n, threshold=threshold
    )
    return report, session
