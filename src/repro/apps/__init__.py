"""Applications beyond clustering.

The paper's protocols produce a generic pairwise-distance structure
usable for "database joins, record linkage and other operations that
require pair-wise comparison of individual private data objects"
(Section 1) and "record linkage and outlier detection problems"
(Section 6).  These modules are those applications, built purely on the
privately constructed dissimilarity matrix:

* :mod:`repro.apps.linkage` -- private record linkage across two sites,
* :mod:`repro.apps.outliers` -- distance-based outlier detection,
* :mod:`repro.apps.sessions` -- one-call pipelines and the
  setup-amortising :class:`~repro.apps.sessions.SessionBatch` runner,
* :mod:`repro.apps.service` -- the incremental
  :class:`~repro.apps.service.ClusteringService` (delta construction
  for arriving records, cheap retirements, on-demand re-clustering).
"""

from repro.apps.linkage import LinkageMatch, private_record_linkage
from repro.apps.outliers import OutlierReport, knn_outliers
from repro.apps.service import ClusteringService
from repro.apps.sessions import (
    SessionBatch,
    run_private_linkage,
    run_private_outlier_detection,
)

__all__ = [
    "LinkageMatch",
    "private_record_linkage",
    "OutlierReport",
    "knn_outliers",
    "ClusteringService",
    "SessionBatch",
    "run_private_linkage",
    "run_private_outlier_detection",
]
