"""Distance-based outlier detection on the private dissimilarity matrix.

The second application Section 6 names.  We implement the classic
k-nearest-neighbour distance criterion (Knorr-Ng / Ramaswamy style):
an object's outlier score is the distance to its k-th nearest neighbour;
the top-scoring objects -- or those above a threshold -- are flagged.
Everything reads only the dissimilarity matrix, so the third party can
run it with zero additional information over what clustering already
required.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.partition import GlobalIndex, ObjectRef
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class OutlierReport:
    """Scores and flags for every object.

    Attributes
    ----------
    scores:
        k-NN distance per object, in global order.
    flagged:
        Object references flagged as outliers, sorted by descending score.
    k:
        The neighbourhood size used.
    """

    scores: tuple[float, ...]
    flagged: tuple[ObjectRef, ...]
    k: int


def knn_outliers(
    matrix: DissimilarityMatrix,
    index: GlobalIndex,
    k: int = 3,
    top_n: int | None = None,
    threshold: float | None = None,
) -> OutlierReport:
    """Flag outliers by k-th-nearest-neighbour distance.

    Exactly one of ``top_n`` / ``threshold`` selects the flagging rule:
    the ``top_n`` highest scorers, or every object whose score exceeds
    ``threshold``.
    """
    n = matrix.num_objects
    if not 1 <= k < n:
        raise ConfigurationError(f"k must be in [1, {n - 1}], got {k}")
    if (top_n is None) == (threshold is None):
        raise ConfigurationError("provide exactly one of top_n or threshold")
    if top_n is not None and not 0 <= top_n <= n:
        raise ConfigurationError(f"top_n must be in [0, {n}], got {top_n}")

    square = matrix.to_square()
    np.fill_diagonal(square, np.inf)
    # Partial selection: only the k-th order statistic per row is needed,
    # not a fully sorted row.
    scores = np.partition(square, k - 1, axis=1)[:, k - 1]

    if threshold is not None:
        flagged_positions = [i for i in range(n) if scores[i] > threshold]
    else:
        order = np.argsort(-scores, kind="stable")
        flagged_positions = [int(i) for i in order[:top_n]]
    flagged_positions.sort(key=lambda i: (-scores[i], i))
    return OutlierReport(
        scores=tuple(float(s) for s in scores),
        flagged=tuple(index.ref_at(i) for i in flagged_positions),
        k=k,
    )
