"""Multi-process session runner: ``python -m repro.apps.cluster``.

Turns the library's in-process session into a real deployment shape:
one OS process per party (each running a
:class:`~repro.parties.runner.PartyRunner` over a
:class:`~repro.network.tcp.SocketTransport`), supervised by a parent
that spawns them, watches for crashes, and restarts killed parties from
their checkpoints with a bumped incarnation so the surviving mesh
resets its era and the session completes bit-identically.

Subcommands
-----------
``party``
    Internal per-process entrypoint (the supervisor spawns these): runs
    one party against the shared session spec and writes its report.
``run``
    The supervisor: spawns every party of a spec, restarts SIGKILLed
    ones from their checkpoints, and aggregates the per-party reports.
``demo``
    Writes a small 2-holder + third-party spec over unix-domain sockets
    into a work directory, runs it, and prints the published clusters --
    the quickstart's one-liner.

Spec files are produced by :func:`repro.parties.runner.encode_spec`
(deterministic length-prefixed codec, digest-pinned by the handshake).
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.core.config import SessionConfig
from repro.data.matrix import AttributeSpec, DataMatrix, Schema
from repro.exceptions import ConfigurationError
from repro.network.serialization import deserialize, serialize
from repro.parties.runner import PartyRunner, decode_spec, encode_spec
from repro.types import AttributeType


def pick_tcp_addresses(parties: list[str], host: str = "127.0.0.1") -> dict[str, str]:
    """Assign each party a free TCP port on ``host``.

    The sockets are bound (port 0 = kernel-assigned) and closed again;
    the tiny reuse race is acceptable for tests and demos, which is all
    this helper is for.
    """
    addresses: dict[str, str] = {}
    for party in parties:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind((host, 0))
        port = probe.getsockname()[1]
        probe.close()
        addresses[party] = f"tcp:{host}:{port}"
    return addresses


def unix_addresses(parties: list[str], directory: str) -> dict[str, str]:
    """Assign each party a unix-domain socket path under ``directory``."""
    return {
        party: f"unix:{os.path.join(directory, party + '.sock')}"
        for party in parties
    }


class ClusterSupervisor:
    """Spawns, watches and restarts the party processes of one session.

    Parameters
    ----------
    spec_path:
        The shared session spec file every process is launched from.
    workdir:
        Directory for per-party checkpoints and report files.
    kill_after_step:
        Optional ``{party: step_name}`` crash injection: those parties
        are launched with ``--exit-after-step`` and SIGKILL themselves
        right after that construction step (stripped on restart).
    restart_killed:
        Whether a SIGKILLed party is relaunched from its checkpoint with
        a bumped incarnation (the crash-recovery path).  Parties that
        exit nonzero for any other reason always fail the run.
    tolerate_killed:
        Parties whose SIGKILL death is accepted as *permanent* -- no
        restart, no error; the rest of the session runs degraded (the
        spec's suite must set ``tolerate_faults``).  Their report slot
        is ``None``.
    max_restarts:
        Restart budget per party.
    timeout:
        Wall-clock budget for the whole session, in seconds.
    """

    def __init__(
        self,
        spec_path: str,
        workdir: str,
        *,
        kill_after_step: Mapping[str, str] | None = None,
        restart_killed: bool = True,
        tolerate_killed: Iterable[str] = (),
        max_restarts: int = 2,
        timeout: float = 180.0,
    ) -> None:
        self.spec_path = str(spec_path)
        self.workdir = str(workdir)
        spec = decode_spec(Path(spec_path).read_bytes())
        self.parties: list[str] = sorted(spec["partitions"]) + [spec["tp_name"]]
        self.kill_after_step = dict(kill_after_step or {})
        self.restart_killed = restart_killed
        self.tolerate_killed = set(tolerate_killed)
        self.max_restarts = max_restarts
        self.timeout = timeout
        self._incarnations: dict[str, int] = {p: 1 for p in self.parties}
        self._procs: dict[str, subprocess.Popen] = {}

    def _paths(self, party: str) -> tuple[str, str]:
        return (
            os.path.join(self.workdir, f"{party}.ckpt"),
            os.path.join(self.workdir, f"{party}.report"),
        )

    def _spawn(self, party: str, *, restore: bool) -> subprocess.Popen:
        ckpt, report = self._paths(party)
        argv = [
            sys.executable,
            "-m",
            "repro.apps.cluster",
            "party",
            "--spec",
            self.spec_path,
            "--party",
            party,
            "--out",
            report,
            "--checkpoint",
            ckpt,
            "--incarnation",
            str(self._incarnations[party]),
        ]
        if restore:
            argv += ["--restore", ckpt]
        elif party in self.kill_after_step:
            argv += ["--exit-after-step", self.kill_after_step[party]]
        # Children must resolve ``repro`` the same way the supervisor
        # did, even when it was imported off sys.path (e.g. pytest's
        # pythonpath ini) rather than an installed distribution.
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        paths = env.get("PYTHONPATH", "").split(os.pathsep)
        if package_root not in paths:
            env["PYTHONPATH"] = os.pathsep.join([package_root] + [p for p in paths if p])
        return subprocess.Popen(argv, env=env)

    def run(self) -> dict[str, dict[str, Any]]:
        """Run the session to completion; returns ``{party: report}``."""
        os.makedirs(self.workdir, exist_ok=True)
        restarts = {p: 0 for p in self.parties}
        for party in self.parties:
            self._procs[party] = self._spawn(party, restore=False)
        deadline = time.monotonic() + self.timeout
        pending = set(self.parties)
        try:
            while pending:
                if time.monotonic() > deadline:
                    raise ConfigurationError(
                        f"session timed out with {sorted(pending)} unfinished"
                    )
                time.sleep(0.05)
                for party in sorted(pending):
                    code = self._procs[party].poll()
                    if code is None:
                        continue
                    if code == 0:
                        pending.discard(party)
                        continue
                    killed = code == -signal.SIGKILL
                    if killed and party in self.tolerate_killed:
                        pending.discard(party)
                        continue
                    ckpt, _ = self._paths(party)
                    if (
                        killed
                        and self.restart_killed
                        and restarts[party] < self.max_restarts
                        and os.path.exists(ckpt)
                    ):
                        restarts[party] += 1
                        self._incarnations[party] += 1
                        self._procs[party] = self._spawn(party, restore=True)
                        continue
                    raise ConfigurationError(
                        f"party {party!r} exited with code {code}"
                    )
        finally:
            for party, proc in self._procs.items():
                if proc.poll() is None:
                    proc.kill()
                proc.wait()
        reports: dict[str, dict[str, Any] | None] = {}
        for party in self.parties:
            _, report_path = self._paths(party)
            if os.path.exists(report_path):
                reports[party] = deserialize(Path(report_path).read_bytes())
            else:
                reports[party] = None
        return reports


# -- CLI ---------------------------------------------------------------------


def _cmd_party(args: argparse.Namespace) -> int:
    spec_bytes = Path(args.spec).read_bytes()
    restore_blob = Path(args.restore).read_bytes() if args.restore else None
    runner = PartyRunner(
        spec_bytes,
        args.party,
        incarnation=args.incarnation,
        restore_blob=restore_blob,
        checkpoint_path=args.checkpoint,
        exit_after_step=args.exit_after_step,
    )
    try:
        report = runner.run()
    finally:
        runner.close()
    Path(args.out).write_bytes(serialize(report))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    supervisor = ClusterSupervisor(
        args.spec,
        args.workdir,
        restart_killed=not args.no_restart,
        timeout=args.timeout,
    )
    reports = supervisor.run()
    for party in sorted(reports):
        report = reports[party]
        status = "ok" if report["result"] is not None else "no result"
        print(
            f"{party}: era {report['era']}, {status}, "
            f"{len(report['transcript'])} frames sent"
        )
    return 0


_DEMO_ROWS = {
    "site_a": [
        [34, "engineer", "km 12.5"],
        [29, "teacher", "km 3.75"],
        [41, "engineer", "km 18.25"],
    ],
    "site_b": [
        [52, "doctor", "km 25.0"],
        [38, "teacher", "km 4.5"],
        [27, "doctor", "km 22.75"],
    ],
}


def demo_spec(workdir: str, master_seed: int = 2006) -> bytes:
    """A small 2-holder + TP session over unix sockets in ``workdir``."""
    schema = Schema(
        [
            AttributeSpec("age", AttributeType.NUMERIC),
            AttributeSpec("job", AttributeType.CATEGORICAL),
            AttributeSpec("commute", AttributeType.ALPHANUMERIC),
        ]
    )
    for rows in _DEMO_ROWS.values():
        DataMatrix(schema, [tuple(r) for r in rows])  # validates cells
    parties = sorted(_DEMO_ROWS) + ["TP"]
    return encode_spec(
        SessionConfig(num_clusters=2, master_seed=master_seed),
        schema,
        _DEMO_ROWS,
        unix_addresses(parties, workdir),
        tp_name="TP",
    )


def _cmd_demo(args: argparse.Namespace) -> int:
    workdir = args.workdir
    os.makedirs(workdir, exist_ok=True)
    spec_path = os.path.join(workdir, "session.spec")
    Path(spec_path).write_bytes(demo_spec(workdir))
    supervisor = ClusterSupervisor(spec_path, workdir, timeout=args.timeout)
    reports = supervisor.run()
    tp_report = reports["TP"]
    result = tp_report["result"]
    print(f"session completed in era {tp_report['era']}")
    print(f"clusters: {result['clusters']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.cluster",
        description="multi-process privacy-preserving clustering sessions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    party = sub.add_parser("party", help="run one party process (internal)")
    party.add_argument("--spec", required=True)
    party.add_argument("--party", required=True)
    party.add_argument("--out", required=True)
    party.add_argument("--checkpoint", default=None)
    party.add_argument("--incarnation", type=int, default=1)
    party.add_argument("--restore", default=None)
    party.add_argument("--exit-after-step", default=None)
    party.set_defaults(func=_cmd_party)

    run = sub.add_parser("run", help="supervise a full session from a spec")
    run.add_argument("--spec", required=True)
    run.add_argument("--workdir", required=True)
    run.add_argument("--no-restart", action="store_true")
    run.add_argument("--timeout", type=float, default=180.0)
    run.set_defaults(func=_cmd_run)

    demo = sub.add_parser("demo", help="write and run a small demo session")
    demo.add_argument("--workdir", required=True)
    demo.add_argument("--timeout", type=float, default=180.0)
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())
