"""Language-statistics attack on the alphanumeric masking (Section 6).

The paper's own future work: "we plan to expand our privacy analysis for
the comparison protocol of alphanumeric attributes so that possible
attacks using statistics of the input language are addressed as well."

The vulnerability is structural: Figure 8 re-initialises ``rng_JT``
after every string, so **all** of an initiator's strings are masked with
the same offset vector ``R``.  Position ``p`` of the masked corpus is
therefore the plaintext letter distribution at position ``p`` shifted by
the constant ``R[p]`` -- and a shift of a known-skewed histogram is
recoverable by alignment.  DHK (who legitimately receives the masked
strings) or any eavesdropper on the DHJ->DHK channel can run this.

Attack: for each position, try every shift, unshift the observed
histogram, and keep the shift whose result is closest (total variation)
to the prior letter distribution.  With the recovered ``R`` the entire
corpus unmasks.

Defence: :func:`repro.core.alphanumeric.initiator_mask_strings_fresh`
(``ProtocolSuiteConfig(fresh_string_masks=True)``) -- each character
gets an independent offset, so positional histograms are uniform
regardless of the language.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.data.alphabet import Alphabet
from repro.exceptions import AttackError


@dataclass(frozen=True)
class LanguageAttackOutcome:
    """Recovered mask offsets and unmasked corpus guess."""

    offsets: tuple[int, ...]
    recovered_strings: tuple[str, ...]

    def offset_recovery_rate(self, true_offsets: Sequence[int]) -> float:
        """Fraction of mask positions recovered exactly."""
        if not self.offsets:
            return 0.0
        length = min(len(self.offsets), len(true_offsets))
        if length == 0:
            return 0.0
        hits = sum(
            1 for a, b in zip(self.offsets[:length], true_offsets[:length]) if a == b
        )
        return hits / length

    def character_recovery_rate(self, truth: Sequence[str]) -> float:
        """Fraction of characters recovered exactly across the corpus."""
        total = 0
        hits = 0
        for guess, true_string in zip(self.recovered_strings, truth):
            for g, t in zip(guess, true_string):
                total += 1
                if g == t:
                    hits += 1
        return hits / total if total else 0.0


class LanguageStatisticsAttack:
    """Histogram-alignment recovery of the shared mask vector.

    Parameters
    ----------
    alphabet:
        The public attribute alphabet.
    prior:
        Letter distribution of the input language, e.g. position-free
        DNA base frequencies.  Must be meaningfully non-uniform -- a
        uniform language admits no frequency attack (every shift looks
        alike), which is itself a finding the tests pin down.
    min_samples:
        Positions observed in fewer strings than this are skipped
        (histograms too noisy to align).
    """

    def __init__(
        self,
        alphabet: Alphabet,
        prior: Mapping[str, float],
        min_samples: int = 8,
    ) -> None:
        unknown = [ch for ch in prior if ch not in alphabet]
        if unknown:
            raise AttackError(f"prior contains foreign characters: {unknown}")
        total = sum(prior.values())
        if total <= 0:
            raise AttackError("prior weights must sum to a positive value")
        self._alphabet = alphabet
        self._prior = [
            prior.get(alphabet.char(code), 0.0) / total
            for code in range(alphabet.size)
        ]
        self._min_samples = max(1, min_samples)

    def _best_shift(self, observed_codes: list[int]) -> int:
        """Shift whose unshifted histogram best matches the prior."""
        size = self._alphabet.size
        counts = Counter(observed_codes)
        n = len(observed_codes)
        best_shift = 0
        best_score = float("inf")
        for shift in range(size):
            # Unshifting by `shift` maps observed code c -> (c - shift).
            score = 0.0
            for code in range(size):
                observed_frequency = counts.get((code + shift) % size, 0) / n
                score += abs(observed_frequency - self._prior[code])
            if score < best_score:
                best_score = score
                best_shift = shift
        return best_shift

    def run(self, masked_strings: Sequence[str]) -> LanguageAttackOutcome:
        """Recover offsets and unmask the corpus.

        Positions beyond the point where fewer than ``min_samples``
        strings remain are decoded with offset 0 (i.e. left masked).
        """
        if not masked_strings:
            raise AttackError("no masked strings to attack")
        max_length = max(len(s) for s in masked_strings)
        offsets: list[int] = []
        for position in range(max_length):
            column = [
                self._alphabet.index(s[position])
                for s in masked_strings
                if len(s) > position
            ]
            if len(column) < self._min_samples:
                offsets.append(0)
                continue
            offsets.append(self._best_shift(column))
        recovered = tuple(
            "".join(
                self._alphabet.char(
                    self._alphabet.unshift_code(self._alphabet.index(ch), offsets[p])
                )
                for p, ch in enumerate(s)
            )
            for s in masked_strings
        )
        return LanguageAttackOutcome(
            offsets=tuple(offsets), recovered_strings=recovered
        )
