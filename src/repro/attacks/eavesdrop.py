"""Eavesdropping attacks on unsecured channels (paper Section 4.1).

"We now explain the reason why the channels must be secured.  TP can
predict the values of both x and y if he listens [to] the channel between
DHJ and DHK.  Notice that x'' = r +- x and TP knows the value of r.
Therefore he infers that the value of x is either (x'' - r) or (r - x'').
For each possible value of x, y can take two values: either
(x - |x - y|) or (x + |x - y|) ...  Another threat is eavesdropping by
DHJ on the channel between DHK and TP.  This channel carries the message
m = r +- (x - y) and DHJ knows the values of both r and x."

Each function below takes frames captured by a
:class:`repro.network.channel.Eavesdropper` and the attacker's legitimate
knowledge, and returns the recovered candidates.  On sealed channels
frame decoding raises, so the same harness demonstrates the defence.
"""

from __future__ import annotations

from repro.crypto.prng import ReseedablePRNG
from repro.exceptions import AttackError
from repro.network.channel import TappedFrame


def _masked_vector_payload(frame: TappedFrame) -> list[int]:
    payload = frame.try_read_payload()
    try:
        return list(payload["values"])
    except (TypeError, KeyError):
        raise AttackError(
            f"frame of kind {frame.kind!r} is not a batch masked vector"
        ) from None


def _comparison_matrix_payload(frame: TappedFrame) -> list[list[int]]:
    payload = frame.try_read_payload()
    try:
        return [list(row) for row in payload["matrix"]]
    except (TypeError, KeyError):
        raise AttackError(
            f"frame of kind {frame.kind!r} is not a comparison matrix"
        ) from None


def tp_eavesdrop_initiator_candidates(
    frame: TappedFrame,
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> list[tuple[int, int]]:
    """TP's attack on the DHJ -> DHK link (batch mode).

    The TP shares ``rng_JT`` with DHJ, so it regenerates each mask ``r``
    and narrows DHJ's n-th input to ``{x''_n - r_n, r_n - x''_n}``.
    Returns one candidate pair per initiator value; the true value is
    always one of the two.
    """
    masked = _masked_vector_payload(frame)
    rng_jt.reset()
    candidates = []
    for value in masked:
        mask = rng_jt.next_bits(mask_bits)
        candidates.append((value - mask, mask - value))
    rng_jt.reset()
    return candidates


def tp_eavesdrop_responder_candidates(
    matrix_frame: TappedFrame,
    initiator_candidates: list[tuple[int, int]],
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> list[set[int]]:
    """TP's follow-up on the DHK -> TP content it legitimately receives.

    With ``x`` narrowed to two candidates and ``|x - y|`` recoverable
    from the comparison matrix, each responder value ``y_m`` lies in
    ``{x_hat - d, x_hat + d}`` over both ``x`` candidates -- the paper's
    "for each possible value of x, y can take two values".  Returns the
    candidate set per responder object (from the first column).
    """
    matrix = _comparison_matrix_payload(matrix_frame)
    if not matrix or not matrix[0]:
        raise AttackError("empty comparison matrix")
    if not initiator_candidates:
        raise AttackError("no initiator candidates supplied")
    results: list[set[int]] = []
    for row in matrix:
        rng_jt.reset()
        mask = rng_jt.next_bits(mask_bits)
        distance = abs(row[0] - mask)
        x_pair = initiator_candidates[0]
        candidates = {x_pair[0] - distance, x_pair[0] + distance,
                      x_pair[1] - distance, x_pair[1] + distance}
        results.append(candidates)
    rng_jt.reset()
    return results


def initiator_eavesdrop_responder_values(
    matrix_frame: TappedFrame,
    own_encoded_values: list[int],
    rng_jk: ReseedablePRNG,
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> list[int]:
    """DHJ's attack on the DHK -> TP link (batch mode): exact recovery.

    DHJ knows the masks (``rng_JT``), its own inputs *and* the sign
    draws (``rng_JK``), so every responder value falls out exactly:
    ``y_m = x_n - sigma_n * (s[m][n] - r_n)``.  This is why the paper
    requires this channel to be secured as well.
    """
    matrix = _comparison_matrix_payload(matrix_frame)
    if not matrix:
        raise AttackError("empty comparison matrix")
    num_columns = len(matrix[0])
    if len(own_encoded_values) != num_columns:
        raise AttackError(
            f"matrix has {num_columns} columns but attacker holds "
            f"{len(own_encoded_values)} inputs"
        )
    rng_jk.reset()
    rng_jt.reset()
    signs = []
    masks = []
    for _ in range(num_columns):
        signs.append(-1 if rng_jk.next_sign_bit() == 1 else 1)
        masks.append(rng_jt.next_bits(mask_bits))
    recovered = []
    for row in matrix:
        # Any column works; use column 0 and cross-check with column -1.
        y = own_encoded_values[0] - signs[0] * (row[0] - masks[0])
        check = own_encoded_values[-1] - signs[-1] * (row[-1] - masks[-1])
        if y != check:
            raise AttackError("inconsistent recovery; wrong stream alignment")
        recovered.append(y)
    rng_jk.reset()
    rng_jt.reset()
    return recovered
