"""Attack harnesses: the paper's security analysis, executable.

Section 4.1 makes three concrete security claims; each is implemented
here as an attack whose success/failure the benchmarks measure:

* :mod:`repro.attacks.frequency` -- the third party's frequency-analysis
  attack on *batched* numeric comparisons, and its collapse under the
  paper's own mitigation (unique randoms per pair),
* :mod:`repro.attacks.eavesdrop` -- recovery of private inputs from
  unsecured channels (TP listening on DHJ->DHK, DHJ listening on
  DHK->TP), impossible once channels are sealed,
* :mod:`repro.attacks.language` -- the language-statistics attack the
  paper's Section 6 names as open future work, plus the
  ``fresh_string_masks`` defence that closes it.
"""

from repro.attacks.eavesdrop import (
    initiator_eavesdrop_responder_values,
    tp_eavesdrop_initiator_candidates,
    tp_eavesdrop_responder_candidates,
)
from repro.attacks.frequency import FrequencyAttack, FrequencyAttackOutcome
from repro.attacks.language import LanguageAttackOutcome, LanguageStatisticsAttack

__all__ = [
    "FrequencyAttack",
    "FrequencyAttackOutcome",
    "tp_eavesdrop_initiator_candidates",
    "tp_eavesdrop_responder_candidates",
    "initiator_eavesdrop_responder_values",
    "LanguageStatisticsAttack",
    "LanguageAttackOutcome",
]
