"""The third party's frequency-analysis attack (paper Section 4.1).

"Notice that [the] i-th column of the pair-wise comparison matrix s,
received by TP from DHK, is 'private data vector of DHK' plus 'identity
vector times (i-th input of DHJ - i-th random number of rng_JT)' or
negation of the expression.  If the range of values for numeric
attributes is limited and there is enough statistics to realize a
frequency attack, TP can infer input values of site DHK.  In such cases,
site DHK can request omitting batch processing of inputs and using
unique random numbers for each object pair."

Formally: in batch mode, column ``n`` of the matrix the TP holds, minus
the mask it can regenerate, is ``sigma_n * (x_n - y)`` for the *whole*
responder vector ``y`` and a single unknown ``(x_n, sigma_n)``.  The TP
therefore sees ``y`` up to an unknown per-column affine map with slope
+-1 -- and a bounded value domain collapses that ambiguity:

1. hypothesise ``(x_hat, sigma_hat)`` over the known domain,
2. keep hypotheses whose implied ``y_hat = x_hat - sigma_hat * residual``
   lies entirely in the domain (optionally ranking survivors by a prior
   frequency histogram),
3. vote across columns; every column constrains the *same* ``y``.

In per-pair mode each entry carries an independent sign and mask, so a
column no longer determines ``y`` up to an affine map and the attack
degrades to guessing -- the mitigation the paper prescribes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import AttackError


@dataclass(frozen=True)
class FrequencyAttackOutcome:
    """Result of running the attack against one comparison matrix.

    Attributes
    ----------
    recovered:
        The attacker's best guess at the responder's private vector
        (``None`` when no hypothesis survived).
    surviving_hypotheses:
        Count of (column, x, sigma) hypotheses consistent with the
        domain; large counts signal an uninformative attack.
    column_votes:
        For diagnostics: number of columns that voted for the winner.
    """

    recovered: tuple[int, ...] | None
    surviving_hypotheses: int
    column_votes: int

    def exact_recovery_rate(self, truth: Sequence[int]) -> float:
        """Fraction of coordinates guessed exactly (0.0 when no guess)."""
        if self.recovered is None:
            return 0.0
        if len(self.recovered) != len(truth):
            raise AttackError("recovered vector length does not match truth")
        hits = sum(1 for a, b in zip(self.recovered, truth) if a == b)
        return hits / len(truth)


class FrequencyAttack:
    """Hypothesis-enumeration attack over a bounded integer domain.

    Parameters
    ----------
    domain_low, domain_high:
        Inclusive bounds of the (public) attribute domain.  The paper's
        precondition: "the range of values for numeric attributes is
        limited".
    prior:
        Optional expected frequency histogram ``{value: weight}``; when
        supplied, surviving hypotheses are ranked by total-variation
        closeness to it, sharpening the attack exactly as "enough
        statistics" does in the paper.
    """

    def __init__(
        self,
        domain_low: int,
        domain_high: int,
        prior: dict[int, float] | None = None,
    ) -> None:
        if domain_low > domain_high:
            raise AttackError(
                f"empty domain [{domain_low}, {domain_high}]"
            )
        self._low = domain_low
        self._high = domain_high
        self._prior = self._normalise_prior(prior)

    @staticmethod
    def _normalise_prior(prior: dict[int, float] | None) -> dict[int, float] | None:
        if prior is None:
            return None
        total = sum(prior.values())
        if total <= 0:
            raise AttackError("prior weights must sum to a positive value")
        return {k: v / total for k, v in prior.items()}

    def _prior_distance(self, vector: np.ndarray) -> float:
        """Total-variation distance between a candidate vector's histogram
        and the prior (0 when no prior was given, keeping ranking stable)."""
        if self._prior is None:
            return 0.0
        counts = Counter(int(v) for v in vector)
        n = len(vector)
        support = set(counts) | set(self._prior)
        return 0.5 * sum(
            abs(counts.get(v, 0) / n - self._prior.get(v, 0.0)) for v in support
        )

    def run(self, residuals: np.ndarray) -> FrequencyAttackOutcome:
        """Attack a residual matrix (``s`` minus the regenerated masks).

        ``residuals[m][n]`` is what the TP computes before taking absolute
        values: ``sigma_n * (x_n - y_m)`` in batch mode.  Columns vote for
        complete ``y`` vectors; the best-supported (and, with a prior,
        best-matching) vector wins.
        """
        residuals = np.asarray(residuals)
        if residuals.ndim != 2:
            raise AttackError(f"residual matrix must be 2-D, got {residuals.shape}")
        votes: Counter[tuple[int, ...]] = Counter()
        best_distance: dict[tuple[int, ...], float] = {}
        surviving = 0
        for n in range(residuals.shape[1]):
            column = residuals[:, n]
            for x_hat in range(self._low, self._high + 1):
                for sigma in (1, -1):
                    y_hat = x_hat - sigma * column
                    if y_hat.min() < self._low or y_hat.max() > self._high:
                        continue
                    surviving += 1
                    key = tuple(int(v) for v in y_hat)
                    votes[key] += 1
                    distance = self._prior_distance(y_hat)
                    if key not in best_distance or distance < best_distance[key]:
                        best_distance[key] = distance
        if not votes:
            return FrequencyAttackOutcome(
                recovered=None, surviving_hypotheses=0, column_votes=0
            )
        # Rank: most column votes, then best prior match, then lexicographic
        # for determinism.
        winner = min(
            votes,
            key=lambda key: (-votes[key], best_distance[key], key),
        )
        return FrequencyAttackOutcome(
            recovered=winner,
            surviving_hypotheses=surviving,
            column_votes=votes[winner],
        )
