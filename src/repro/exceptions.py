"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subclasses partition the failure space along the major
subsystems: configuration, protocol execution, cryptography, data handling
and clustering.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ConfigurationError(ReproError):
    """A session, protocol or component was configured inconsistently."""


class SchemaError(ReproError):
    """Data does not match the declared attribute schema."""


class PartitionError(ReproError):
    """Invalid horizontal partitioning of a data matrix."""


class ProtocolError(ReproError):
    """A privacy-preserving protocol was violated or misused.

    Raised for out-of-order messages, role mismatches, wrong shapes of
    intermediary matrices, or attempts to run a protocol with parties that
    do not hold the required shared secrets.
    """


class ChannelError(ReproError):
    """A network channel was used incorrectly (closed, wrong endpoint...)."""


class IntegrityError(ChannelError):
    """Message authentication failed on a secure channel."""


class CryptoError(ReproError):
    """Cryptographic failure (bad key sizes, decryption failure...)."""


class KeyAgreementError(CryptoError):
    """Diffie-Hellman key agreement failed or was misused."""


class ClusteringError(ReproError):
    """Clustering could not be performed on the given dissimilarity input."""


class AttackError(ReproError):
    """An attack harness was invoked on an incompatible transcript."""
