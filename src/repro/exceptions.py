"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subclasses partition the failure space along the major
subsystems: configuration, protocol execution, cryptography, data handling
and clustering.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ConfigurationError(ReproError):
    """A session, protocol or component was configured inconsistently."""


class SchemaError(ReproError):
    """Data does not match the declared attribute schema."""


class PartitionError(ReproError):
    """Invalid horizontal partitioning of a data matrix."""


class ProtocolError(ReproError):
    """A privacy-preserving protocol was violated or misused.

    Raised for out-of-order messages, role mismatches, wrong shapes of
    intermediary matrices, or attempts to run a protocol with parties that
    do not hold the required shared secrets.
    """


class ChannelError(ReproError):
    """A network channel was used incorrectly (closed, wrong endpoint...)."""


class IntegrityError(ChannelError):
    """Message authentication failed on a secure channel."""


class PartyCrashError(ChannelError):
    """A party is down (scripted crash) and cannot send or receive.

    Raised by the network when a *permanently* crashed party attempts
    I/O.  Transient crashes never raise: they only lose frames in
    flight, which the reliable-delivery shim recovers by retransmit.
    """

    def __init__(self, party: str, message: str | None = None) -> None:
        self.party = party
        super().__init__(message or f"party {party!r} has crashed")


class LaneTimeoutError(ChannelError, TimeoutError):
    """Reliable delivery gave up on one lane.

    Structured so recovery code (and a human reading a chaos-test log)
    can see exactly which directed lane starved and how hard the shim
    tried: ``sender``/``recipient``/``kind``/``tag`` name the lane,
    ``attempts`` counts delivery attempts including retransmits.
    """

    def __init__(
        self,
        sender: str,
        recipient: str,
        kind: str,
        tag: str,
        attempts: int,
        reason: str = "no deliverable frame",
    ) -> None:
        self.sender = sender
        self.recipient = recipient
        self.kind = kind
        self.tag = tag
        self.attempts = attempts
        lane = f"{kind!r} {sender}->{recipient}" + (f" [{tag}]" if tag else "")
        super().__init__(
            f"reliable delivery timed out on lane {lane} "
            f"after {attempts} attempt(s): {reason}"
        )


class SessionResetError(ChannelError):
    """A peer restarted from a checkpoint; the current epoch is void.

    Raised by a socket transport out of blocked sends/receives when a
    peer's handshake announces a higher incarnation (it was killed and
    restarted by the supervisor).  The party driver catches this,
    restores its own checkpoint, and re-enters the protocol in the new
    era -- see DESIGN.md "Transport" for the reset sequence.
    """

    def __init__(self, trigger_party: str, incarnation: int, era: int) -> None:
        self.trigger_party = trigger_party
        self.incarnation = incarnation
        self.era = era
        super().__init__(
            f"session reset: party {trigger_party!r} restarted "
            f"(incarnation {incarnation}); protocol must resume from "
            f"checkpoint in era {era}"
        )


class SnapshotError(ConfigurationError):
    """A session snapshot blob is unusable for restore.

    Raised when :meth:`repro.apps.service.ClusteringService.restore`
    receives a truncated or corrupted blob, a blob of the wrong format
    version, or a blob that was taken under a different session
    configuration than the one supplied.  Structured so supervisors can
    distinguish "bad checkpoint file" from protocol failures.
    """


class SchedulerStallError(ProtocolError):
    """The parallel scheduler's watchdog fired: no step completed within
    the configured timeout.  The message names every pending step."""


class CryptoError(ReproError):
    """Cryptographic failure (bad key sizes, decryption failure...)."""


class KeyAgreementError(CryptoError):
    """Diffie-Hellman key agreement failed or was misused."""


class ClusteringError(ReproError):
    """Clustering could not be performed on the given dissimilarity input."""


class AttackError(ReproError):
    """An attack harness was invoked on an incompatible transcript."""
