"""Finite alphabets for alphanumeric attributes.

Section 4.2: "Alphabet of the strings that are to be compared is assumed
to be finite.  This assumption enables modulo operations on alphabet size,
such that addition of a random number and a character is another alphabet
character."

:class:`Alphabet` is that modulo domain: a bijection between characters
and ``[0, size)`` with shift/unshift helpers used by the masking protocol.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.exceptions import SchemaError


@dataclass(frozen=True)
class Alphabet:
    """An ordered finite set of characters with modular arithmetic.

    Example
    -------
    >>> a = Alphabet("abcd")
    >>> a.shift_char("c", 3)   # (2 + 3) mod 4 == 1 -> 'b'
    'b'
    >>> a.index("b")
    1
    """

    characters: str
    _index: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.characters) < 2:
            raise SchemaError("alphabet needs at least two characters")
        if len(set(self.characters)) != len(self.characters):
            raise SchemaError("alphabet characters must be unique")
        object.__setattr__(
            self, "_index", {ch: i for i, ch in enumerate(self.characters)}
        )

    @property
    def size(self) -> int:
        """Number of characters; the modulus of the masking protocol."""
        return len(self.characters)

    def __contains__(self, ch: str) -> bool:
        return ch in self._index

    def index(self, ch: str) -> int:
        """Integer code of a character.

        Raises :class:`SchemaError` for characters outside the alphabet;
        the protocols must never silently wrap foreign characters.
        """
        try:
            return self._index[ch]
        except KeyError:
            raise SchemaError(
                f"character {ch!r} not in alphabet of size {self.size}"
            ) from None

    def char(self, code: int) -> str:
        """Character for an integer code (taken modulo the size)."""
        return self.characters[code % self.size]

    def encode(self, text: str) -> list[int]:
        """String to list of codes."""
        return [self.index(ch) for ch in text]

    def decode(self, codes: list[int]) -> str:
        """List of codes to string (codes reduced modulo the size)."""
        return "".join(self.char(c) for c in codes)

    def shift_char(self, ch: str, offset: int) -> str:
        """Mask one character: ``(code + offset) mod size``."""
        return self.char(self.index(ch) + offset)

    def unshift_code(self, code: int, offset: int) -> int:
        """Remove a mask from a raw code: ``(code - offset) mod size``."""
        return (code - offset) % self.size

    def validate(self, text: str) -> None:
        """Raise :class:`SchemaError` unless every character is in-domain."""
        for ch in text:
            if ch not in self._index:
                raise SchemaError(
                    f"string {text!r} contains character {ch!r} outside alphabet"
                )

    # -- array codecs (the vectorized protocol engine's fast path) ----------

    @cached_property
    def _char_codepoints(self) -> np.ndarray:
        """Unicode codepoint of every alphabet character, in code order."""
        return np.frombuffer(self.characters.encode("utf-32-le"), dtype=np.uint32)

    @cached_property
    def _codepoint_lookup(self) -> np.ndarray:
        """Codepoint -> alphabet code table (-1 marks foreign characters)."""
        table = np.full(int(self._char_codepoints.max()) + 1, -1, dtype=np.int32)
        table[self._char_codepoints] = np.arange(self.size, dtype=np.int32)
        return table

    def _first_foreign(self, text: str, codepoints: np.ndarray) -> str:
        table = self._codepoint_lookup
        in_table = codepoints < table.size
        bad = ~in_table
        if in_table.any():
            codes = table[np.where(in_table, codepoints, 0)]
            bad |= codes < 0
        return text[int(np.argmax(bad))]

    def encode_array(self, text: str) -> np.ndarray:
        """String to an ``int64`` code array (array twin of :meth:`encode`)."""
        codepoints = np.frombuffer(text.encode("utf-32-le"), dtype=np.uint32)
        table = self._codepoint_lookup
        if codepoints.size == 0:
            return np.empty(0, dtype=np.int64)
        if int(codepoints.max()) < table.size:
            codes = table[codepoints]
            if int(codes.min()) >= 0:
                return codes.astype(np.int64)
        ch = self._first_foreign(text, codepoints)
        raise SchemaError(f"character {ch!r} not in alphabet of size {self.size}")

    def encode_validated(self, text: str) -> np.ndarray:
        """Like :meth:`encode_array`, with :meth:`validate`'s diagnostics."""
        try:
            return self.encode_array(text)
        except SchemaError:
            codepoints = np.frombuffer(text.encode("utf-32-le"), dtype=np.uint32)
            ch = self._first_foreign(text, codepoints)
            raise SchemaError(
                f"string {text!r} contains character {ch!r} outside alphabet"
            ) from None

    def decode_array(self, codes: np.ndarray) -> str:
        """Code array back to a string (codes reduced modulo the size)."""
        reduced = np.asarray(codes) % self.size
        return (
            self._char_codepoints[reduced]
            .astype("<u4")
            .tobytes()
            .decode("utf-32-le")
        )


#: The four-letter DNA alphabet of the paper's motivating bird-flu scenario.
DNA_ALPHABET = Alphabet("ACGT")

#: Printable ASCII (space through tilde); the catch-all default for
#: alphanumeric attributes whose schema does not pin a domain.
PRINTABLE_ALPHABET = Alphabet(
    " " + string.ascii_letters + string.digits + string.punctuation
)

#: The paper's Figure 7 demonstration alphabet A = {a, b, c, d}.
FIGURE7_ALPHABET = Alphabet("abcd")
