"""The data matrix of the paper's Figure 1, with a typed schema.

A :class:`DataMatrix` is an object-by-variable structure: ``m`` rows
(objects) by ``n`` columns (attributes).  The paper accesses local
matrices column-wise (``D_i`` is the i-th attribute vector), so
:meth:`DataMatrix.column` is the primary accessor used by the protocols.

The matrix is deliberately **not** normalised (paper Section 2.1):
normalisation happens on the dissimilarity matrix instead, because each
horizontal partition may cover a different value range and computing
global min/max would itself require another privacy-preserving protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.data.alphabet import PRINTABLE_ALPHABET, Alphabet
from repro.data.taxonomy import Taxonomy
from repro.exceptions import SchemaError
from repro.types import AttributeType, CellValue


@dataclass(frozen=True)
class AttributeSpec:
    """Declaration of one data-matrix column.

    Parameters
    ----------
    name:
        Column name; must be unique within a schema.  Also used as the
        derivation label for per-attribute PRNG seeds and encryption keys,
        so two attributes never share masking streams.
    attr_type:
        Domain from :class:`repro.types.AttributeType`.
    alphabet:
        For :attr:`AttributeType.ALPHANUMERIC` columns, the finite
        alphabet the Section 4.2 protocol works modulo.  Defaults to
        printable ASCII.
    precision:
        For :attr:`AttributeType.NUMERIC` columns holding floats, the
        number of decimal digits preserved by fixed-point encoding inside
        the masking protocol.  Integers are always exact.
    taxonomy:
        For :attr:`AttributeType.CATEGORICAL` columns, an optional
        :class:`~repro.data.taxonomy.Taxonomy` turning the flat 0/1
        equality metric into the hierarchical path metric (the §4.3
        future-work extension).  Values must then be taxonomy nodes.
    """

    name: str
    attr_type: AttributeType
    alphabet: Alphabet | None = None
    precision: int = 6
    taxonomy: Taxonomy | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.precision < 0 or self.precision > 15:
            raise SchemaError(f"precision out of range [0, 15]: {self.precision}")
        if self.attr_type is AttributeType.ALPHANUMERIC and self.alphabet is None:
            object.__setattr__(self, "alphabet", PRINTABLE_ALPHABET)
        if self.attr_type is not AttributeType.ALPHANUMERIC and self.alphabet is not None:
            raise SchemaError(
                f"attribute {self.name!r}: alphabet only applies to alphanumeric columns"
            )
        if self.taxonomy is not None and self.attr_type is not AttributeType.CATEGORICAL:
            raise SchemaError(
                f"attribute {self.name!r}: taxonomy only applies to categorical columns"
            )

    def validate_value(self, value: CellValue) -> None:
        """Raise :class:`SchemaError` unless ``value`` fits this column."""
        if not self.attr_type.accepts(value):
            raise SchemaError(
                f"attribute {self.name!r} ({self.attr_type.value}) rejects "
                f"value {value!r} of type {type(value).__name__}"
            )
        if self.attr_type is AttributeType.ALPHANUMERIC:
            assert self.alphabet is not None
            self.alphabet.validate(value)  # type: ignore[arg-type]
        if self.taxonomy is not None:
            self.taxonomy.validate(value)  # type: ignore[arg-type]


class Schema:
    """Ordered, immutable collection of :class:`AttributeSpec`.

    The paper requires data holders to have "previously agreed on the list
    of attributes that are going to be used for clustering" and to share
    that list with the third party; a :class:`Schema` instance is exactly
    that agreement.
    """

    def __init__(self, attributes: Iterable[AttributeSpec]) -> None:
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("schema must declare at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {duplicates}")
        self._attributes = attrs
        self._by_name = {a.name: i for i, a in enumerate(attrs)}

    @property
    def attributes(self) -> tuple[AttributeSpec, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[AttributeSpec]:
        return iter(self._attributes)

    def __getitem__(self, index: int) -> AttributeSpec:
        return self._attributes[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def index_of(self, name: str) -> int:
        """Column index of attribute ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def spec(self, name: str) -> AttributeSpec:
        """Attribute spec by name."""
        return self._attributes[self.index_of(name)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{a.name}:{a.attr_type.value}" for a in self._attributes)
        return f"Schema({cols})"


class DataMatrix:
    """Immutable typed data matrix (paper Figure 1).

    Construct with :meth:`from_rows`, which validates every cell against
    the schema, or :meth:`from_columns` when data arrives column-wise.
    """

    def __init__(self, schema: Schema | Sequence[AttributeSpec], rows: Sequence[Sequence[CellValue]]) -> None:
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self._schema = schema
        validated: list[tuple[CellValue, ...]] = []
        for row_idx, row in enumerate(rows):
            row = tuple(row)
            if len(row) != len(schema):
                raise SchemaError(
                    f"row {row_idx} has {len(row)} cells, schema expects {len(schema)}"
                )
            for spec, value in zip(schema, row):
                try:
                    spec.validate_value(value)
                except SchemaError as exc:
                    raise SchemaError(f"row {row_idx}: {exc}") from None
            validated.append(row)
        self._rows = tuple(validated)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: Schema | Sequence[AttributeSpec],
        rows: Sequence[Sequence[CellValue]],
    ) -> "DataMatrix":
        """Build and validate a matrix from row-major data."""
        return cls(schema, rows)

    @classmethod
    def from_columns(
        cls,
        schema: Schema | Sequence[AttributeSpec],
        columns: Sequence[Sequence[CellValue]],
    ) -> "DataMatrix":
        """Build from column-major data (all columns must share a length)."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        if len(columns) != len(schema):
            raise SchemaError(
                f"{len(columns)} columns given, schema expects {len(schema)}"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        rows = list(zip(*columns)) if columns and columns[0] else []
        return cls(schema, rows)

    # -- accessors ---------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        """Number of objects (the paper's ``D.Length`` for a partition)."""
        return len(self._rows)

    @property
    def num_attributes(self) -> int:
        return len(self._schema)

    @property
    def rows(self) -> tuple[tuple[CellValue, ...], ...]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[CellValue, ...]]:
        return iter(self._rows)

    def row(self, index: int) -> tuple[CellValue, ...]:
        """One object's attribute tuple."""
        return self._rows[index]

    def column(self, index: int) -> list[CellValue]:
        """The attribute vector ``D_i`` (paper Section 2.1)."""
        if not 0 <= index < len(self._schema):
            raise SchemaError(f"column index {index} out of range")
        return [row[index] for row in self._rows]

    def column_by_name(self, name: str) -> list[CellValue]:
        """Attribute vector looked up by name."""
        return self.column(self._schema.index_of(name))

    # -- manipulation ------------------------------------------------------

    def take(self, row_indices: Sequence[int]) -> "DataMatrix":
        """New matrix containing the selected rows, in the given order."""
        return DataMatrix(self._schema, [self._rows[i] for i in row_indices])

    def concat(self, other: "DataMatrix") -> "DataMatrix":
        """Stack two matrices sharing the same schema."""
        if other.schema != self._schema:
            raise SchemaError("cannot concat matrices with different schemas")
        return DataMatrix(self._schema, list(self._rows) + list(other.rows))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataMatrix):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._schema, self._rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataMatrix({self.num_rows}x{self.num_attributes})"
