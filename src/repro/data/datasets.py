"""Named, fully deterministic datasets for examples and benchmarks.

Each builder returns a :class:`PartitionedDataset`: per-site data
matrices, the agreed schema, and ground-truth labels keyed by
:class:`~repro.data.partition.ObjectRef` for accuracy scoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.data.alphabet import DNA_ALPHABET
from repro.data.matrix import AttributeSpec, DataMatrix, Schema
from repro.data.partition import GlobalIndex, ObjectRef, horizontal_partition
from repro.data.synthetic import (
    categorical_column,
    dna_clusters,
    gaussian_clusters,
    integer_clusters,
    ring_clusters,
    zipf_weights,
)
from repro.exceptions import ConfigurationError
from repro.types import AttributeType


@dataclass(frozen=True)
class PartitionedDataset:
    """A horizontally partitioned workload with ground truth.

    Attributes
    ----------
    name:
        Stable identifier used in benchmark output.
    partitions:
        ``{site_name: DataMatrix}`` -- each data holder's private matrix.
    labels:
        Ground-truth cluster label per object, for external accuracy
        metrics only; no protocol component ever reads this.
    num_clusters:
        The generative number of clusters.
    """

    name: str
    partitions: Mapping[str, DataMatrix]
    labels: Mapping[ObjectRef, int]
    num_clusters: int

    @property
    def schema(self) -> Schema:
        return next(iter(self.partitions.values())).schema

    @property
    def index(self) -> GlobalIndex:
        return GlobalIndex({s: m.num_rows for s, m in self.partitions.items()})

    def labels_in_global_order(self) -> list[int]:
        """Ground-truth labels ordered like the global dissimilarity matrix."""
        return [self.labels[ref] for ref in self.index.refs()]


def _site_names(count: int) -> list[str]:
    if count < 1 or count > 26:
        raise ConfigurationError(f"site count must be in [1, 26], got {count}")
    return [chr(ord("A") + i) for i in range(count)]


def _partition_with_labels(
    name: str,
    matrix: DataMatrix,
    flat_labels: list[int],
    num_sites: int,
    num_clusters: int,
    seed: int,
) -> PartitionedDataset:
    """Shuffle-partition ``matrix`` and carry labels along with the rows."""
    sites = _site_names(num_sites)
    # Attach the label as a bookkeeping column via row identity: partition
    # indices, then map back.  horizontal_partition shuffles rows with the
    # given seed, so partition on an index matrix in parallel.
    spec = [AttributeSpec("_row", AttributeType.NUMERIC)]
    index_matrix = DataMatrix(spec, [[i] for i in range(matrix.num_rows)])
    index_parts = horizontal_partition(index_matrix, sites, seed=seed)
    partitions: dict[str, DataMatrix] = {}
    labels: dict[ObjectRef, int] = {}
    for site in sites:
        original_rows = [int(r[0]) for r in index_parts[site].rows]
        partitions[site] = matrix.take(original_rows)
        for local_id, original in enumerate(original_rows):
            labels[ObjectRef(site, local_id)] = flat_labels[original]
    return PartitionedDataset(
        name=name, partitions=partitions, labels=labels, num_clusters=num_clusters
    )


def bird_flu(
    num_institutions: int = 3,
    per_cluster: int = 8,
    num_strains: int = 3,
    length: int = 40,
    seed: int = 7,
) -> PartitionedDataset:
    """The paper's Section 1 motivating scenario.

    Several institutions gather DNA of infected individuals; strains are
    clusters in edit-distance space.  Data is a single alphanumeric
    attribute over the DNA alphabet.
    """
    sequences, labels = dna_clusters(
        [per_cluster] * num_strains, length=length, seed=seed
    )
    schema = [AttributeSpec("dna", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET)]
    matrix = DataMatrix(schema, [[s] for s in sequences])
    return _partition_with_labels(
        "bird_flu", matrix, labels, num_institutions, num_strains, seed
    )


def customer_segmentation(
    num_companies: int = 2,
    per_segment: int = 12,
    num_segments: int = 3,
    seed: int = 11,
) -> PartitionedDataset:
    """Mixed-type customer data split across companies.

    Exercises all three protocols at once: numeric (age, annual spend),
    categorical (plan tier) and alphanumeric (browsing pattern string).
    Segment structure is injected consistently across attribute types.
    """
    total = per_segment * num_segments
    ages, labels = integer_clusters(
        [per_segment] * num_segments, dim=1, separation=18, spread=3, seed=seed
    )
    spend_rows, _ = gaussian_clusters(
        [per_segment] * num_segments, dim=1, separation=25.0, spread=1.5, seed=seed + 1
    )
    patterns, _ = dna_clusters(
        [per_segment] * num_segments,
        length=12,
        within_rate=0.05,
        between_rate=0.5,
        seed=seed + 2,
    )
    tiers = ["basic", "plus", "premium", "enterprise"]
    # Tier correlates with segment: segment s draws mostly tier s.
    tier_col: list[str] = []
    for segment in range(num_segments):
        favoured = tiers[segment % len(tiers)]
        weights = [4.0 if t == favoured else 0.4 for t in tiers]
        tier_col.extend(
            categorical_column(per_segment, tiers, weights, seed=seed + 3 + segment)
        )
    schema = [
        AttributeSpec("age", AttributeType.NUMERIC),
        AttributeSpec("annual_spend", AttributeType.NUMERIC, precision=2),
        AttributeSpec("plan", AttributeType.CATEGORICAL),
        AttributeSpec("visit_pattern", AttributeType.ALPHANUMERIC, alphabet=DNA_ALPHABET),
    ]
    rows = [
        [20 + ages[i][0], round(100.0 + abs(spend_rows[i][0]) * 40.0, 2), tier_col[i], patterns[i]]
        for i in range(total)
    ]
    matrix = DataMatrix(schema, rows)
    return _partition_with_labels(
        "customer_segmentation", matrix, labels, num_companies, num_segments, seed
    )


def gaussian_numeric(
    num_sites: int = 3,
    per_cluster: int = 15,
    num_clusters: int = 4,
    dim: int = 3,
    seed: int = 13,
) -> PartitionedDataset:
    """Plain numeric Gaussian blobs over ``dim`` attributes."""
    rows, labels = gaussian_clusters(
        [per_cluster] * num_clusters, dim=dim, separation=10.0, seed=seed
    )
    schema = [
        AttributeSpec(f"x{i}", AttributeType.NUMERIC, precision=6) for i in range(dim)
    ]
    matrix = DataMatrix(schema, [[round(v, 6) for v in row] for row in rows])
    return _partition_with_labels(
        "gaussian_numeric", matrix, labels, num_sites, num_clusters, seed
    )


def rings(
    num_sites: int = 2,
    per_ring: int = 40,
    num_rings: int = 2,
    seed: int = 17,
) -> PartitionedDataset:
    """Concentric rings for the hierarchical-vs-partitioning experiment."""
    rows, labels = ring_clusters([per_ring] * num_rings, seed=seed)
    schema = [
        AttributeSpec("x", AttributeType.NUMERIC, precision=6),
        AttributeSpec("y", AttributeType.NUMERIC, precision=6),
    ]
    matrix = DataMatrix(schema, [[round(v, 6) for v in row] for row in rows])
    return _partition_with_labels("rings", matrix, labels, num_sites, num_rings, seed)


def zipf_categorical(
    num_sites: int = 2,
    num_rows: int = 60,
    num_categories: int = 6,
    seed: int = 19,
) -> PartitionedDataset:
    """Single skewed categorical attribute (frequency-attack workloads)."""
    categories = [f"cat{i}" for i in range(num_categories)]
    values = categorical_column(
        num_rows, categories, zipf_weights(num_categories), seed=seed
    )
    labels = [categories.index(v) for v in values]
    schema = [AttributeSpec("label", AttributeType.CATEGORICAL)]
    matrix = DataMatrix(schema, [[v] for v in values])
    return _partition_with_labels(
        "zipf_categorical", matrix, labels, num_sites, num_categories, seed
    )


def figure13_toy() -> PartitionedDataset:
    """A dataset engineered to reproduce the paper's Figure 13 exactly.

    Three sites A (3 objects), B (4 objects), C (3 objects).  Values are
    placed so any sane hierarchical cut at k=3 yields the published
    clusters (using the paper's 1-based ids):

    * Cluster1 = A1, A3, B4, C3
    * Cluster2 = B2, B3, C1, C2
    * Cluster3 = A2, B1
    """
    schema = [AttributeSpec("value", AttributeType.NUMERIC)]
    # 1-based ids in comments; local ids are 0-based.
    site_a = DataMatrix(schema, [[0], [201], [2]])  # A1, A2, A3
    site_b = DataMatrix(schema, [[199], [100], [102], [1]])  # B1..B4
    site_c = DataMatrix(schema, [[101], [99], [3]])  # C1..C3
    labels = {
        ObjectRef("A", 0): 0,
        ObjectRef("A", 1): 2,
        ObjectRef("A", 2): 0,
        ObjectRef("B", 0): 2,
        ObjectRef("B", 1): 1,
        ObjectRef("B", 2): 1,
        ObjectRef("B", 3): 0,
        ObjectRef("C", 0): 1,
        ObjectRef("C", 1): 1,
        ObjectRef("C", 2): 0,
    }
    return PartitionedDataset(
        name="figure13_toy",
        partitions={"A": site_a, "B": site_b, "C": site_c},
        labels=labels,
        num_clusters=3,
    )
