"""Rooted category taxonomies for hierarchical categorical attributes.

The tree structure, path metric and holder-side encryption steps of the
§4.3 future-work extension.  Lives in :mod:`repro.data` so attribute
schemas can reference taxonomies without import cycles; the third-party
matrix builder (which needs the partition index) is in
:mod:`repro.ext.taxonomy`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.crypto.detenc import DeterministicEncryptor
from repro.exceptions import SchemaError


class Taxonomy:
    """A rooted category tree with the path metric.

    Parameters
    ----------
    parents:
        ``{node: parent}`` mapping; roots have parent ``None``.  Any
        node may be used as an attribute value (not only leaves).

    The metric between two nodes is the length of the tree path:
    ``depth(a) + depth(b) - 2 * depth(lca(a, b))``.
    """

    def __init__(self, parents: Mapping[str, str | None]) -> None:
        if not parents:
            raise SchemaError("taxonomy must contain at least one node")
        self._parents = dict(parents)
        for node, parent in self._parents.items():
            if parent is not None and parent not in self._parents:
                raise SchemaError(
                    f"node {node!r} has unknown parent {parent!r}"
                )
        self._paths: dict[str, tuple[str, ...]] = {}
        for node in self._parents:
            self._paths[node] = self._compute_path(node)

    def _compute_path(self, node: str) -> tuple[str, ...]:
        path = []
        seen = set()
        current: str | None = node
        while current is not None:
            if current in seen:
                raise SchemaError(f"taxonomy contains a cycle through {current!r}")
            seen.add(current)
            path.append(current)
            current = self._parents[current]
        return tuple(reversed(path))

    def __contains__(self, node: str) -> bool:
        return node in self._parents

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Taxonomy({len(self._parents)} nodes, depth {self.max_depth})"

    def path(self, node: str) -> tuple[str, ...]:
        """Root path of a node, root first (includes the node itself)."""
        try:
            return self._paths[node]
        except KeyError:
            raise SchemaError(f"node {node!r} not in taxonomy") from None

    def depth(self, node: str) -> int:
        """Depth of a node (roots have depth 1)."""
        return len(self.path(node))

    @property
    def max_depth(self) -> int:
        return max(len(p) for p in self._paths.values())

    def lca_depth(self, a: str, b: str) -> int:
        """Depth of the lowest common ancestor (0 for different roots)."""
        shared = 0
        for x, y in zip(self.path(a), self.path(b)):
            if x != y:
                break
            shared += 1
        return shared

    def distance(self, a: str, b: str) -> int:
        """Cleartext reference metric: tree path length between a and b."""
        return self.depth(a) + self.depth(b) - 2 * self.lca_depth(a, b)

    def validate(self, value: str) -> None:
        """Raise :class:`SchemaError` unless ``value`` is a taxonomy node."""
        if value not in self._parents:
            raise SchemaError(f"value {value!r} not in taxonomy")

    # -- protocol steps (holder side) -------------------------------------------

    def encrypt_value(
        self, encryptor: DeterministicEncryptor, attribute: str, value: str
    ) -> list[bytes]:
        """Deterministic ciphertext of every root-path prefix.

        Prefixes are encoded positionally (``depth|joined-path``) so two
        different nodes that happen to share a name at different depths
        cannot collide.
        """
        path = self.path(value)
        return [
            encryptor.encrypt(attribute, f"{i + 1}|" + "/".join(path[: i + 1]))
            for i in range(len(path))
        ]

    def encrypt_column(
        self,
        encryptor: DeterministicEncryptor,
        attribute: str,
        values: Sequence[str],
    ) -> list[list[bytes]]:
        """Encrypt a whole column of taxonomy values."""
        return [self.encrypt_value(encryptor, attribute, v) for v in values]

    # -- protocol steps (third-party side) ----------------------------------------

    @staticmethod
    def distance_from_ciphertext_paths(
        path_a: Sequence[bytes], path_b: Sequence[bytes]
    ) -> int:
        """The path metric from two ciphertext prefix lists.

        Shared-prefix count equals LCA depth because the encryption is
        deterministic and injective per attribute.
        """
        shared = 0
        for x, y in zip(path_a, path_b):
            if x != y:
                break
            shared += 1
        return len(path_a) + len(path_b) - 2 * shared
