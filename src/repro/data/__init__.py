"""Data structures and workload generators.

* :mod:`repro.data.matrix` -- the object-by-variable data matrix of the
  paper's Figure 1, with a typed attribute schema,
* :mod:`repro.data.alphabet` -- finite alphabets for alphanumeric
  attributes (the modulo domain of the Section 4.2 protocol),
* :mod:`repro.data.partition` -- horizontal partitioning across data
  holders and the global object index,
* :mod:`repro.data.synthetic` -- deterministic synthetic workload
  generators (Gaussian mixtures, DNA sequences, categorical columns),
* :mod:`repro.data.datasets` -- named end-to-end datasets used by the
  examples and benchmarks (bird-flu DNA scenario, customer segmentation,
  non-spherical rings).
"""

from repro.data.alphabet import DNA_ALPHABET, PRINTABLE_ALPHABET, Alphabet
from repro.data.matrix import AttributeSpec, DataMatrix, Schema
from repro.data.partition import (
    GlobalIndex,
    ObjectRef,
    horizontal_partition,
    merge_partitions,
)
from repro.data.taxonomy import Taxonomy

__all__ = [
    "Alphabet",
    "DNA_ALPHABET",
    "PRINTABLE_ALPHABET",
    "AttributeSpec",
    "Schema",
    "DataMatrix",
    "GlobalIndex",
    "ObjectRef",
    "horizontal_partition",
    "merge_partitions",
    "Taxonomy",
]
