"""Deterministic synthetic workload generators.

The paper's evaluation is analytical, but its motivating workloads are
concrete: multi-institution DNA data (the bird-flu scenario of Section 1),
mixed customer attributes, and cluster structures that partitioning
algorithms mishandle (Section 2's hierarchical-vs-partitioning argument).
These generators synthesise all of them with explicit seeds so every
experiment in ``benchmarks/`` is exactly reproducible.

All generators return plain Python rows plus integer ground-truth labels;
:mod:`repro.data.datasets` assembles them into schemas and partitions.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.data.alphabet import DNA_ALPHABET, Alphabet
from repro.exceptions import ConfigurationError


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def gaussian_clusters(
    sizes: Sequence[int],
    dim: int = 2,
    separation: float = 8.0,
    spread: float = 1.0,
    seed: int = 0,
) -> tuple[list[list[float]], list[int]]:
    """Isotropic Gaussian blobs with controllable separation.

    Cluster centres are placed uniformly in a hypercube scaled so the
    expected centre distance is ``separation`` standard deviations; with
    the default ``separation=8`` the blobs are cleanly separable, which is
    what the exactness experiments need (any accuracy loss must come from
    the pipeline, never from workload ambiguity).
    """
    if not sizes or any(s <= 0 for s in sizes):
        raise ConfigurationError(f"cluster sizes must be positive: {sizes}")
    if dim < 1:
        raise ConfigurationError(f"dim must be >= 1, got {dim}")
    rng = _rng(seed)
    box = separation * spread * max(1.0, len(sizes) ** (1.0 / dim))
    centers = rng.uniform(-box, box, size=(len(sizes), dim))
    rows: list[list[float]] = []
    labels: list[int] = []
    for label, size in enumerate(sizes):
        points = rng.normal(loc=centers[label], scale=spread, size=(size, dim))
        rows.extend([float(v) for v in p] for p in points)
        labels.extend([label] * size)
    return rows, labels


def integer_clusters(
    sizes: Sequence[int],
    dim: int = 1,
    separation: int = 100,
    spread: int = 5,
    seed: int = 0,
) -> tuple[list[list[int]], list[int]]:
    """Integer-valued clusters (the pseudocode's native data type).

    Cluster ``c`` lives around ``c * separation``; values are exact ints
    so protocol arithmetic can be checked bit-for-bit.
    """
    if not sizes or any(s <= 0 for s in sizes):
        raise ConfigurationError(f"cluster sizes must be positive: {sizes}")
    rng = _rng(seed)
    rows: list[list[int]] = []
    labels: list[int] = []
    for label, size in enumerate(sizes):
        center = label * separation
        points = rng.integers(center - spread, center + spread + 1, size=(size, dim))
        rows.extend([int(v) for v in p] for p in points)
        labels.extend([label] * size)
    return rows, labels


def mutate_sequence(
    sequence: str,
    rate: float,
    rng: np.random.Generator,
    alphabet: Alphabet = DNA_ALPHABET,
    allow_indels: bool = True,
) -> str:
    """Apply point mutations (and optionally indels) to one sequence.

    Each position independently mutates with probability ``rate``; a
    mutation is a substitution with probability 0.8, otherwise an
    insertion or deletion.  This mirrors how edit distance "sees"
    evolutionary divergence, so sequences from one ancestor stay closer
    to each other than to other clusters' sequences.
    """
    out: list[str] = []
    for ch in sequence:
        if rng.random() >= rate:
            out.append(ch)
            continue
        kind = rng.random()
        if not allow_indels or kind < 0.8:  # substitution
            choices = [c for c in alphabet.characters if c != ch]
            out.append(choices[int(rng.integers(len(choices)))])
        elif kind < 0.9:  # deletion
            continue
        else:  # insertion
            out.append(ch)
            out.append(alphabet.characters[int(rng.integers(alphabet.size))])
    if not out:  # degenerate total deletion; keep one anchor character
        out.append(alphabet.characters[int(rng.integers(alphabet.size))])
    return "".join(out)


def dna_clusters(
    sizes: Sequence[int],
    length: int = 40,
    within_rate: float = 0.03,
    between_rate: float = 0.35,
    seed: int = 0,
    alphabet: Alphabet = DNA_ALPHABET,
) -> tuple[list[str], list[int]]:
    """DNA-like string clusters via ancestor mutation.

    One random ancestor per cluster is drawn by mutating a common root
    with heavy ``between_rate``; members mutate their ancestor with light
    ``within_rate``.  The gap between the two rates controls cluster
    separability in edit-distance space.
    """
    if not sizes or any(s <= 0 for s in sizes):
        raise ConfigurationError(f"cluster sizes must be positive: {sizes}")
    if not 0 <= within_rate < between_rate <= 1:
        raise ConfigurationError(
            f"need 0 <= within_rate < between_rate <= 1, got {within_rate}, {between_rate}"
        )
    rng = _rng(seed)
    root = "".join(
        alphabet.characters[int(rng.integers(alphabet.size))] for _ in range(length)
    )
    sequences: list[str] = []
    labels: list[int] = []
    for label, size in enumerate(sizes):
        ancestor = mutate_sequence(root, between_rate, rng, alphabet)
        for _ in range(size):
            sequences.append(mutate_sequence(ancestor, within_rate, rng, alphabet))
            labels.append(label)
    return sequences, labels


def skewed_strings(
    num_strings: int,
    length: int,
    letter_weights: Sequence[float],
    alphabet: Alphabet = DNA_ALPHABET,
    seed: int = 0,
) -> list[str]:
    """Strings with i.i.d. characters from a skewed letter distribution.

    The workload for the language-statistics attack
    (:mod:`repro.attacks.language`): per-position letter histograms
    mirror ``letter_weights``, which is what the attack aligns against.
    """
    if num_strings < 0 or length < 0:
        raise ConfigurationError("num_strings and length must be >= 0")
    if len(letter_weights) != alphabet.size:
        raise ConfigurationError(
            f"need {alphabet.size} letter weights, got {len(letter_weights)}"
        )
    if any(w < 0 for w in letter_weights) or sum(letter_weights) <= 0:
        raise ConfigurationError("letter weights must be non-negative, sum > 0")
    rng = _rng(seed)
    probs = np.asarray(letter_weights, dtype=np.float64)
    probs = probs / probs.sum()
    return [
        "".join(
            alphabet.char(int(code))
            for code in rng.choice(alphabet.size, size=length, p=probs)
        )
        for _ in range(num_strings)
    ]


def categorical_column(
    num_rows: int,
    categories: Sequence[str],
    weights: Sequence[float] | None = None,
    seed: int = 0,
) -> list[str]:
    """Draw a categorical column with the given (or uniform) weights."""
    if num_rows < 0:
        raise ConfigurationError(f"num_rows must be >= 0, got {num_rows}")
    if not categories:
        raise ConfigurationError("need at least one category")
    rng = _rng(seed)
    if weights is None:
        probs = None
    else:
        if len(weights) != len(categories) or any(w < 0 for w in weights):
            raise ConfigurationError("weights must be non-negative, one per category")
        total = sum(weights)
        if total <= 0:
            raise ConfigurationError("weights must sum to a positive value")
        probs = [w / total for w in weights]
    draws = rng.choice(len(categories), size=num_rows, p=probs)
    return [categories[int(i)] for i in draws]


def zipf_weights(num_categories: int, exponent: float = 1.2) -> list[float]:
    """Zipf-like weights: realistic skew for categorical attributes."""
    if num_categories < 1:
        raise ConfigurationError("need at least one category")
    return [1.0 / (rank ** exponent) for rank in range(1, num_categories + 1)]


def ring_clusters(
    sizes: Sequence[int],
    radii: Sequence[float] | None = None,
    noise: float = 0.08,
    seed: int = 0,
) -> tuple[list[list[float]], list[int]]:
    """Concentric 2-D rings: the canonical non-spherical workload.

    Partitioning methods that "tend to result in spherical clusters"
    (paper Section 2) split rings radially; single-linkage hierarchical
    clustering recovers them.  Used by the T-CLUST experiment.
    """
    if not sizes or any(s <= 0 for s in sizes):
        raise ConfigurationError(f"ring sizes must be positive: {sizes}")
    if radii is None:
        radii = [1.0 + 2.0 * i for i in range(len(sizes))]
    if len(radii) != len(sizes):
        raise ConfigurationError("radii must match sizes in length")
    rng = _rng(seed)
    rows: list[list[float]] = []
    labels: list[int] = []
    for label, (size, radius) in enumerate(zip(sizes, radii)):
        # Evenly spaced angles with jitter keep ring gaps larger than
        # within-ring neighbour distances, which single linkage needs.
        base = np.linspace(0.0, 2.0 * math.pi, num=size, endpoint=False)
        angles = base + rng.normal(scale=0.3 / max(1, size), size=size)
        r = radius + rng.normal(scale=noise, size=size)
        for theta, rad in zip(angles, r):
            rows.append([float(rad * math.cos(theta)), float(rad * math.sin(theta))])
        labels.extend([label] * size)
    return rows, labels
