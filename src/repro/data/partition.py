"""Horizontal partitioning of a data matrix across data holders.

"Data matrix D is said to be horizontally partitioned if rows of D are
distributed among different parties" (Section 2.1).  This module provides

* :func:`horizontal_partition` -- split a matrix into per-site matrices,
* :func:`merge_partitions` -- the inverse, used by the centralized
  baseline,
* :class:`GlobalIndex` -- the canonical mapping between *global* object
  positions (rows of the final dissimilarity matrix) and *site-local*
  object references (how the third party publishes results: ``A1, B4``
  in the paper's Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.data.matrix import DataMatrix
from repro.exceptions import PartitionError


@dataclass(frozen=True, order=True)
class ObjectRef:
    """Site-qualified object identifier, e.g. ``A3`` in Figure 13."""

    site: str
    local_id: int

    def __str__(self) -> str:
        return f"{self.site}{self.local_id}"


class GlobalIndex:
    """Bijection between global row positions and :class:`ObjectRef`.

    Sites are ordered by name (the deterministic order all parties can
    agree on without communication); within a site, objects keep their
    local row order.  The third party uses this index to address blocks
    of the global dissimilarity matrix.
    """

    def __init__(self, site_sizes: Mapping[str, int]) -> None:
        if not site_sizes:
            raise PartitionError("global index needs at least one site")
        for site, size in site_sizes.items():
            if size < 0:
                raise PartitionError(f"site {site!r} has negative size {size}")
        self._sites = tuple(sorted(site_sizes))
        self._sizes = {site: site_sizes[site] for site in self._sites}
        self._offsets: dict[str, int] = {}
        offset = 0
        for site in self._sites:
            self._offsets[site] = offset
            offset += self._sizes[site]
        self._total = offset
        self._refs: list[ObjectRef] = [
            ObjectRef(site, local)
            for site in self._sites
            for local in range(self._sizes[site])
        ]

    @property
    def sites(self) -> tuple[str, ...]:
        """Site names in canonical (sorted) order."""
        return self._sites

    @property
    def total_objects(self) -> int:
        return self._total

    def size_of(self, site: str) -> int:
        """Number of objects held by ``site``."""
        try:
            return self._sizes[site]
        except KeyError:
            raise PartitionError(f"unknown site {site!r}") from None

    def offset_of(self, site: str) -> int:
        """Global position of ``site``'s first object."""
        try:
            return self._offsets[site]
        except KeyError:
            raise PartitionError(f"unknown site {site!r}") from None

    def global_position(self, ref: ObjectRef) -> int:
        """Global row index of a site-local object."""
        if ref.local_id < 0 or ref.local_id >= self.size_of(ref.site):
            raise PartitionError(f"object {ref} out of range for its site")
        return self._offsets[ref.site] + ref.local_id

    def ref_at(self, position: int) -> ObjectRef:
        """Inverse of :meth:`global_position`."""
        if not 0 <= position < self._total:
            raise PartitionError(f"global position {position} out of range")
        return self._refs[position]

    def refs(self) -> Iterator[ObjectRef]:
        """All object references in global order."""
        return iter(self._refs)

    def append(self, site: str, count: int = 1) -> "GlobalIndex":
        """Index after ``count`` records arrive at ``site``.

        Arrivals take the next local ids (``size_of(site)`` onward), so
        every existing :class:`ObjectRef` stays valid in the grown index
        -- only global positions *after* the site's region shift.
        """
        return self.extend({site: count})

    def extend(self, arrivals: Mapping[str, int]) -> "GlobalIndex":
        """Index after a batch of arrivals lands at several sites at once.

        ``arrivals`` maps site name to the number of appended records
        (``>= 0``).  The site set is fixed for a session -- pairwise
        secrets and channels cover exactly the initial consortium -- so
        unknown sites are rejected rather than admitted.
        """
        sizes = dict(self._sizes)
        for site, count in arrivals.items():
            if site not in sizes:
                raise PartitionError(f"unknown site {site!r}")
            if count < 0:
                raise PartitionError(
                    f"site {site!r} cannot shrink by extension (got {count})"
                )
            sizes[site] += count
        return GlobalIndex(sizes)

    def block(self, site_a: str, site_b: str) -> tuple[range, range]:
        """Global row/column ranges of the (site_a, site_b) block."""
        return (
            range(self.offset_of(site_a), self.offset_of(site_a) + self.size_of(site_a)),
            range(self.offset_of(site_b), self.offset_of(site_b) + self.size_of(site_b)),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GlobalIndex):
            return NotImplemented
        return self._sizes == other._sizes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{s}:{self._sizes[s]}" for s in self._sites)
        return f"GlobalIndex({parts})"


def horizontal_partition(
    matrix: DataMatrix,
    site_names: Sequence[str],
    proportions: Sequence[float] | None = None,
    seed: int | None = None,
) -> dict[str, DataMatrix]:
    """Split ``matrix`` row-wise across ``site_names``.

    Parameters
    ----------
    proportions:
        Relative share per site; defaults to an even split.  Every site is
        guaranteed at least one row when ``matrix`` has enough rows.
    seed:
        When given, rows are shuffled (deterministically) before
        assignment, modelling the fact that real horizontal partitions are
        not sorted by any global key.  ``None`` keeps row order, which is
        what the reassembly tests rely on.

    Returns a ``{site_name: DataMatrix}`` mapping.
    """
    if len(site_names) < 1:
        raise PartitionError("need at least one site")
    if len(set(site_names)) != len(site_names):
        raise PartitionError("site names must be unique")
    if matrix.num_rows < len(site_names):
        raise PartitionError(
            f"cannot spread {matrix.num_rows} rows over {len(site_names)} sites"
        )
    if proportions is None:
        proportions = [1.0] * len(site_names)
    if len(proportions) != len(site_names):
        raise PartitionError("proportions must match site_names in length")
    if any(p <= 0 for p in proportions):
        raise PartitionError("proportions must be positive")

    order = list(range(matrix.num_rows))
    if seed is not None:
        rng = np.random.default_rng(seed)
        rng.shuffle(order)

    total = sum(proportions)
    # Largest-remainder allocation with a floor of one row per site.
    quotas = [matrix.num_rows * p / total for p in proportions]
    counts = [max(1, int(q)) for q in quotas]
    while sum(counts) > matrix.num_rows:
        counts[counts.index(max(counts))] -= 1
    remainders = sorted(
        range(len(counts)), key=lambda i: quotas[i] - counts[i], reverse=True
    )
    idx = 0
    while sum(counts) < matrix.num_rows:
        counts[remainders[idx % len(remainders)]] += 1
        idx += 1

    partitions: dict[str, DataMatrix] = {}
    cursor = 0
    for site, count in zip(site_names, counts):
        partitions[site] = matrix.take(order[cursor : cursor + count])
        cursor += count
    return partitions


def merge_partitions(partitions: Mapping[str, DataMatrix]) -> tuple[DataMatrix, GlobalIndex]:
    """Reassemble partitions into one matrix in canonical global order.

    This is what a *trusted* aggregator would do -- the centralized
    baseline (:mod:`repro.baselines.centralized`) uses it to produce the
    ground-truth dissimilarity matrix the private protocol must match
    exactly.
    """
    if not partitions:
        raise PartitionError("no partitions to merge")
    schemas = {m.schema for m in partitions.values()}
    if len(schemas) > 1:
        raise PartitionError("all partitions must share one schema")
    index = GlobalIndex({site: m.num_rows for site, m in partitions.items()})
    merged_rows: list[tuple] = []
    for site in index.sites:
        merged_rows.extend(partitions[site].rows)
    merged = DataMatrix(next(iter(schemas)), merged_rows)
    return merged, index
