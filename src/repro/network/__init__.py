"""Simulated message-passing network with exact byte accounting.

The paper's evaluation is a communication-cost analysis; this package
makes those costs *measurable* instead of assumed.  Every protocol
message is serialized by :mod:`repro.network.serialization` (length-
prefixed, deterministic), routed through a :class:`Channel` that records
per-message byte counts, and optionally sealed by the symmetric cipher
when the channel is secured -- so benchmarks report true wire sizes
including the security overhead the paper requires.

Insecure channels support eavesdropper taps, which is how the
:mod:`repro.attacks.eavesdrop` harness reproduces the paper's Section 4.1
channel-security analysis.
"""

from repro.network.channel import Channel, ChannelStats, Eavesdropper
from repro.network.handshake import LinkCipher, LinkSecurity
from repro.network.message import Message
from repro.network.serialization import (
    FRAME_HEADER_LEN,
    decode_frame,
    deserialize,
    encode_frame,
    frame_body_length,
    serialize,
    serialized_size,
)
from repro.network.simulator import Network
from repro.network.tcp import SocketTransport
from repro.network.transport import Transport

__all__ = [
    "Channel",
    "ChannelStats",
    "Eavesdropper",
    "FRAME_HEADER_LEN",
    "LinkCipher",
    "LinkSecurity",
    "Message",
    "Network",
    "SocketTransport",
    "Transport",
    "serialize",
    "deserialize",
    "serialized_size",
    "encode_frame",
    "decode_frame",
    "frame_body_length",
]
