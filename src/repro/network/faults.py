"""Seeded fault injection for the simulated network.

A :class:`FaultPlan` decides, frame by frame, whether the network
drops, duplicates, corrupts or delays a transmission, and whether the
recipient is currently down (scripted crash).  Decisions are driven by
the repo's own labeled PRNGs -- one stream per delivery lane, seeded as
``fault|<plan seed>|<sender>-><recipient>|<kind>|<tag>`` -- so a plan
is reproducible: the n-th frame of a lane always meets the same fate,
regardless of how other lanes interleave with it.

Two scheduling layers compose:

* **Rates**: a plan-wide default plus per-``(sender, recipient, kind)``
  :class:`FaultRule` overrides, each rolled against the lane stream.
* **Scripts**: an explicit action list per directed ``(sender,
  recipient, kind)`` triple -- ``("pass", "drop", ...)`` applied to
  that triple's 1st, 2nd, ... frame -- for tests that need one exact
  fault at one exact point.  Scripted frames consume no lane-stream
  words, so adding a script never shifts the rate-based decisions of
  other frames.

Crash events model parties going dark.  A *transient* crash
(``down_for`` given) is a partition: frames addressed to the party are
lost until ``down_for`` further delivery attempts have been absorbed,
after which the party is reachable again -- the reliable shim's
retransmits both tick the outage down and recover the lost frames, so
transient crashes are maskable.  A *permanent* crash (``down_for=None``)
additionally makes the party's own sends and receives raise
:class:`~repro.exceptions.PartyCrashError`; only the scheduler's
degraded mode survives that.

Retransmissions bypass the rate layer by default (``fault_retransmits``
turns them back on): the recovery path is modelled as clean, which is
what makes "rates the retry layer can mask" a guarantee rather than a
probability -- one retransmit always repairs a dropped or damaged
frame unless the recipient is down.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.crypto.prng import DEFAULT_PRNG_KIND, ReseedablePRNG, make_prng
from repro.exceptions import ConfigurationError

#: Recognised scripted actions (``"delay:N"`` is also accepted).
SCRIPT_ACTIONS = ("pass", "drop", "duplicate", "corrupt", "delay")

#: Built-in chaos presets for the CI chaos-smoke matrix.
PRESETS = ("lossy", "crashy")

_WORD_SCALE = float(2**64)


def _check_rate(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return float(value)


@dataclass(frozen=True)
class FaultRule:
    """Rate overrides for frames matching a lane pattern.

    ``sender``/``recipient``/``kind`` of ``None`` match anything; the
    first matching rule (in plan order) wins over the plan defaults.
    """

    sender: str | None = None
    recipient: str | None = None
    kind: str | None = None
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt", "delay"):
            _check_rate(name, getattr(self, name))

    def matches(self, sender: str, recipient: str, kind: str) -> bool:
        return (
            (self.sender is None or self.sender == sender)
            and (self.recipient is None or self.recipient == recipient)
            and (self.kind is None or self.kind == kind)
        )


@dataclass(frozen=True)
class CrashEvent:
    """One scripted party outage.

    The party goes down once ``after_frames`` frames addressed to it
    have been delivered (or absorbed by an earlier outage).  With
    ``down_for=n`` the next ``n`` delivery attempts to the party are
    lost and then it recovers (a maskable partition); ``down_for=None``
    is a permanent crash.
    """

    party: str
    after_frames: int
    down_for: int | None = None

    def __post_init__(self) -> None:
        if self.after_frames < 0:
            raise ConfigurationError(
                f"after_frames must be >= 0, got {self.after_frames}"
            )
        if self.down_for is not None and self.down_for < 1:
            raise ConfigurationError(
                f"down_for must be >= 1 or None, got {self.down_for}"
            )


@dataclass(frozen=True)
class FaultDecision:
    """What the plan does to one frame."""

    deliver: bool = True
    duplicate: bool = False
    corrupt: bool = False
    delay_polls: int = 0
    #: Nonzero XOR mask applied to the frame checksum when ``corrupt``.
    tamper: int = 0


_CLEAN = FaultDecision()


class _CrashState:
    """Mutable outage bookkeeping for one party (plan-lock guarded)."""

    def __init__(self, events: Sequence[CrashEvent]) -> None:
        self.pending = sorted(events, key=lambda e: e.after_frames)
        self.frames = 0
        self.remaining = 0
        self.permanent = False

    def absorb(self) -> bool:
        """Account one delivery attempt; ``True`` means the frame is lost."""
        if self.permanent:
            return True
        if self.remaining > 0:
            self.remaining -= 1
            return True
        self.frames += 1
        if self.pending and self.frames > self.pending[0].after_frames:
            event = self.pending.pop(0)
            if event.down_for is None:
                self.permanent = True
            else:
                # This frame triggered the outage and is its first loss.
                self.remaining = event.down_for - 1
            return True
        return False


class FaultPlan:
    """A seeded, reproducible schedule of network faults.

    Parameters
    ----------
    seed:
        Root of every lane stream.  Two plans with equal seeds and
        parameters make identical decisions.
    drop, duplicate, corrupt, delay:
        Default per-frame fault rates, overridable per lane pattern via
        ``rules``.
    max_delay_polls:
        A delayed frame becomes deliverable after 1..``max_delay_polls``
        receive polls of its lane.
    rules:
        :class:`FaultRule` overrides; first match wins.
    crashes:
        Scripted :class:`CrashEvent` outages.
    script:
        ``{(sender, recipient, kind): ("pass", "drop", ...)}`` -- exact
        actions for a triple's first frames; later frames fall back to
        the rate layer.
    fault_retransmits:
        Apply the rate layer to retransmitted frames too (off by
        default; turning it on makes *no* fault schedule guaranteed
        maskable, which is what the timeout tests need).
    prng_kind:
        Which :mod:`repro.crypto.prng` generator realises the streams.
    """

    def __init__(
        self,
        seed: int | str,
        *,
        drop: float = 0.0,
        duplicate: float = 0.0,
        corrupt: float = 0.0,
        delay: float = 0.0,
        max_delay_polls: int = 2,
        rules: Sequence[FaultRule] = (),
        crashes: Sequence[CrashEvent] = (),
        script: Mapping[tuple[str, str, str], Sequence[str]] | None = None,
        fault_retransmits: bool = False,
        prng_kind: str = DEFAULT_PRNG_KIND,
    ) -> None:
        self.drop = _check_rate("drop", drop)
        self.duplicate = _check_rate("duplicate", duplicate)
        self.corrupt = _check_rate("corrupt", corrupt)
        self.delay = _check_rate("delay", delay)
        if max_delay_polls < 1:
            raise ConfigurationError(
                f"max_delay_polls must be >= 1, got {max_delay_polls}"
            )
        self.max_delay_polls = int(max_delay_polls)
        self.rules = tuple(rules)
        self.fault_retransmits = bool(fault_retransmits)
        self._seed = seed
        self._prng_kind = prng_kind
        self._script = {
            key: tuple(actions) for key, actions in (script or {}).items()
        }
        for triple, actions in self._script.items():
            for action in actions:
                base = action.split(":", 1)[0]
                if base not in SCRIPT_ACTIONS:
                    raise ConfigurationError(
                        f"unknown scripted action {action!r} for {triple}"
                    )
        events: dict[str, list[CrashEvent]] = {}
        for event in crashes:
            events.setdefault(event.party, []).append(event)
        #: Guards every mutable decision structure below.
        self._lock = threading.Lock()
        # guarded-by: self._lock
        self._lane_prngs: dict[tuple[str, str, str, str], ReseedablePRNG] = {}
        #: Frames seen per scripted triple (script cursor).
        # guarded-by: self._lock
        self._script_cursor: dict[tuple[str, str, str], int] = {}
        # guarded-by: self._lock
        self._crash_state: dict[str, _CrashState] = {
            party: _CrashState(party_events)
            for party, party_events in events.items()
        }

    # -- presets -----------------------------------------------------------

    @classmethod
    def preset(
        cls, name: str, seed: int | str, parties: Sequence[str] = ()
    ) -> "FaultPlan":
        """A named chaos profile (CI's chaos-smoke matrix runs these).

        ``"lossy"`` exercises every frame fault at rates the default
        retry budget masks; ``"crashy"`` adds one seeded *transient*
        outage per given party (holders, typically) on top of milder
        rates -- still maskable, so the determinism suites must pass
        unchanged under either preset.
        """
        if name == "lossy":
            return cls(
                seed,
                drop=0.12,
                duplicate=0.08,
                corrupt=0.08,
                delay=0.15,
                max_delay_polls=2,
                prng_kind=DEFAULT_PRNG_KIND,
            )
        if name == "crashy":
            prng = make_prng(f"fault-preset|{seed}|crashy", DEFAULT_PRNG_KIND)
            crashes = tuple(
                CrashEvent(
                    party,
                    after_frames=6 + prng.next_below(30),
                    down_for=2 + prng.next_below(3),
                )
                for party in parties
            )
            return cls(
                seed,
                drop=0.05,
                duplicate=0.04,
                corrupt=0.04,
                delay=0.08,
                max_delay_polls=2,
                crashes=crashes,
                prng_kind=DEFAULT_PRNG_KIND,
            )
        raise ConfigurationError(
            f"unknown fault preset {name!r}; available: {PRESETS}"
        )

    # -- decisions ---------------------------------------------------------

    def _rates(
        self, sender: str, recipient: str, kind: str
    ) -> tuple[float, float, float, float]:
        for rule in self.rules:
            if rule.matches(sender, recipient, kind):
                return (rule.drop, rule.duplicate, rule.corrupt, rule.delay)
        return (self.drop, self.duplicate, self.corrupt, self.delay)

    def _scripted(self, sender: str, recipient: str, kind: str) -> str | None:
        """Pop the next scripted action for a triple (``None`` = rates)."""
        key = (sender, recipient, kind)
        actions = self._script.get(key)
        if actions is None:
            return None
        with self._lock:
            cursor = self._script_cursor.get(key, 0)
            self._script_cursor[key] = cursor + 1
        if cursor >= len(actions):
            return "pass"
        return actions[cursor]

    def _lane_prng(
        self, sender: str, recipient: str, kind: str, tag: str
    ) -> ReseedablePRNG:
        key = (sender, recipient, kind, tag)
        prng = self._lane_prngs.get(key)
        if prng is None:
            with self._lock:
                prng = self._lane_prngs.get(key)
                if prng is None:
                    label = f"fault|{self._seed}|{sender}->{recipient}|{kind}|{tag}"
                    prng = make_prng(label, self._prng_kind)
                    self._lane_prngs[key] = prng
        return prng

    def decide(
        self,
        sender: str,
        recipient: str,
        kind: str,
        tag: str,
        retransmission: bool = False,
    ) -> FaultDecision:
        """The fate of one frame about to enter ``recipient``'s lane.

        Scripted triples consume their script cursor; everything else
        rolls the lane stream (always the same number of words per
        frame, so a lane's n-th frame meets a seed-determined fate).
        Retransmissions are clean unless ``fault_retransmits``.
        """
        scripted = None if retransmission else self._scripted(sender, recipient, kind)
        if scripted is not None:
            return self._from_script(scripted, sender, recipient, kind, tag)
        if retransmission and not self.fault_retransmits:
            return _CLEAN
        drop, duplicate, corrupt, delay = self._rates(sender, recipient, kind)
        if not (drop or duplicate or corrupt or delay):
            return _CLEAN
        prng = self._lane_prng(sender, recipient, kind, tag)
        with self._lock:
            words = prng.next_words(6)
        rolls = [int(w) / _WORD_SCALE for w in words[:4]]
        polls = 1 + int(words[4]) % self.max_delay_polls
        tamper = (int(words[5]) & 0xFFFFFFFF) | 1
        if rolls[0] < drop:
            return FaultDecision(deliver=False)
        dup = rolls[1] < duplicate
        if rolls[2] < corrupt:
            return FaultDecision(duplicate=dup, corrupt=True, tamper=tamper)
        if rolls[3] < delay:
            return FaultDecision(duplicate=dup, delay_polls=polls)
        return FaultDecision(duplicate=dup)

    def _from_script(
        self, action: str, sender: str, recipient: str, kind: str, tag: str
    ) -> FaultDecision:
        if action == "pass":
            return _CLEAN
        if action == "drop":
            return FaultDecision(deliver=False)
        if action == "duplicate":
            return FaultDecision(duplicate=True)
        if action == "corrupt":
            prng = self._lane_prng(sender, recipient, kind, tag)
            with self._lock:
                word = prng.next_uint64()
            return FaultDecision(corrupt=True, tamper=(word & 0xFFFFFFFF) | 1)
        polls = int(action.split(":", 1)[1]) if ":" in action else 1
        return FaultDecision(delay_polls=max(1, polls))

    # -- crash bookkeeping -------------------------------------------------

    def absorb_frame_to(self, party: str) -> bool:
        """Account one delivery attempt to ``party``.

        Returns ``True`` when the frame is lost to an outage; ticks
        transient outages toward recovery either way.
        """
        state = self._crash_state.get(party)
        if state is None:
            return False
        with self._lock:
            return state.absorb()

    def permanently_down(self, party: str) -> bool:
        """Whether ``party`` has hit a permanent crash event."""
        state = self._crash_state.get(party)
        if state is None:
            return False
        with self._lock:
            return state.permanent

    def crashed_parties(self) -> list[str]:
        """Parties currently permanently down, in sorted order."""
        with self._lock:
            return sorted(
                party
                for party, state in self._crash_state.items()
                if state.permanent
            )
