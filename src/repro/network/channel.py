"""Point-to-point channels with security and byte accounting.

Section 4.1 devotes a full subsection to *why the channels must be
secured*: a third party listening on the DHJ->DHK link learns ``r +- x``
and already knows ``r``, so it narrows ``x`` to two candidates; likewise
DHJ listening on DHK->TP narrows ``y``.  We model both channel flavours:

* a **secure** channel seals every payload with
  :class:`repro.crypto.sym.SymmetricCipher` (eavesdroppers see only
  ciphertext, and the accounting honestly charges the sealing overhead),
* an **insecure** channel transmits the serialized payload as-is, and
  any registered :class:`Eavesdropper` receives a verbatim copy --
  which is exactly the capability the attack harness needs.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.prng import ReseedablePRNG
from repro.crypto.sym import SymmetricCipher
from repro.exceptions import ChannelError
from repro.network.message import Message
from repro.network.serialization import deserialize, serialize


@dataclass
class ChannelStats:
    """Accumulated traffic counters for one direction of a channel."""

    messages: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0

    def record(self, payload_size: int, wire_size: int) -> None:
        self.messages += 1
        self.payload_bytes += payload_size
        self.wire_bytes += wire_size


@dataclass(frozen=True)
class TappedFrame:
    """What an eavesdropper captures: raw wire bytes plus metadata."""

    sender: str
    recipient: str
    kind: str
    tag: str
    # Captured ciphertext/plaintext bytes; reprs of tapped frames end up
    # in test output and eavesdropper reports, so keep them metadata-only.
    wire: bytes = field(repr=False)
    sealed: bool

    def try_read_payload(self) -> Any:
        """Attempt to recover the payload from the captured frame.

        Succeeds on insecure channels; on secure channels the frame is
        ciphertext and this raises :class:`ChannelError` -- the empirical
        content of the paper's "channels must be secured" requirement.
        """
        if self.sealed:
            raise ChannelError("frame is sealed; eavesdropper cannot decode it")
        return deserialize(self.wire)


class Eavesdropper:
    """Passive wiretap collecting every frame that crosses a channel.

    Captures are lock-protected: one tap may observe several channels,
    and under the parallel construction schedule those channels transmit
    concurrently.  Each capture is atomic with the sending channel's
    accounting (the channel calls :meth:`capture` under its own transmit
    lock), so a tap never sees a frame whose bytes are uncounted.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        # guarded-by: self._lock
        self.frames: list[TappedFrame] = []
        self._lock = threading.Lock()

    def capture(self, frame: TappedFrame) -> None:
        with self._lock:
            self.frames.append(frame)

    def frames_between(self, sender: str, recipient: str) -> list[TappedFrame]:
        """Captured frames for one direction of one link."""
        return [
            f for f in self.frames if f.sender == sender and f.recipient == recipient
        ]


class Channel:
    """Bidirectional link between two named parties.

    ``secure=True`` requires a shared ``key``; each endpoint seals with
    the same cipher (the simulation executes both ends in-process, so one
    cipher object suffices).  ``entropy`` feeds nonce generation and is
    required only for secure channels.
    """

    def __init__(
        self,
        party_a: str,
        party_b: str,
        secure: bool = True,
        key: bytes | None = None,
        entropy: ReseedablePRNG | None = None,
    ) -> None:
        if party_a == party_b:
            raise ChannelError("channel endpoints must differ")
        self.endpoints = frozenset((party_a, party_b))
        self.secure = secure
        if secure:
            if key is None or entropy is None:
                raise ChannelError("secure channel requires key and entropy")
            self._cipher: SymmetricCipher | None = SymmetricCipher(key)
            self._entropy = entropy
        else:
            self._cipher = None
            self._entropy = None
        # guarded-by: self._lock
        self._stats: dict[tuple[str, str], ChannelStats] = {}
        # guarded-by: self._lock
        self._kind_stats: dict[tuple[str, str, str], ChannelStats] = {}
        # guarded-by: self._lock
        self._tag_stats: dict[str, ChannelStats] = {}
        # guarded-by: self._lock
        self._taps: list[Eavesdropper] = []
        #: Serialises sealing (nonce entropy + cipher state), counter
        #: updates and tap captures: concurrent transmits on one link
        #: account exactly, and a tap's view is consistent with the
        #: counters.  Serialization/deserialization stay outside the
        #: lock -- they are pure and dominate a big frame's CPU cost.
        #: Re-entrant because :meth:`transmit` records through the same
        #: ``stats``/``kind_stats`` accessors readers use.
        self._lock = threading.RLock()

    def attach_tap(self, tap: Eavesdropper) -> None:
        """Register a passive eavesdropper on this link."""
        with self._lock:
            self._taps.append(tap)

    def stats(self, sender: str, recipient: str) -> ChannelStats:
        """Traffic counters for the ``sender -> recipient`` direction."""
        self._require_endpoint(sender)
        self._require_endpoint(recipient)
        with self._lock:
            return self._stats.setdefault((sender, recipient), ChannelStats())

    def kind_stats(self, sender: str, recipient: str, kind: str) -> ChannelStats:
        """Traffic counters for one message kind in one direction.

        Lets the cost benchmarks separate e.g. local-matrix transfers
        from comparison-matrix transfers on the same link, matching the
        paper's itemised O(.) terms.
        """
        self._require_endpoint(sender)
        self._require_endpoint(recipient)
        with self._lock:
            return self._kind_stats.setdefault((sender, recipient, kind), ChannelStats())

    def tag_totals(self) -> dict[str, ChannelStats]:
        """Traffic counters grouped by accounting tag (both directions)."""
        with self._lock:
            return dict(self._tag_stats)

    def _require_endpoint(self, name: str) -> None:
        if name not in self.endpoints:
            raise ChannelError(f"{name!r} is not an endpoint of {set(self.endpoints)}")

    def entropy_draws(self) -> int | None:
        """Words drawn from the nonce entropy so far (``None`` if insecure).

        Checkpointing records this per channel: a restored session
        fast-forwards the freshly derived entropy to the same position,
        so post-restore nonces continue exactly where the snapshotted
        session's would have.
        """
        if self._entropy is None:
            return None
        return self._entropy.draws

    def advance_entropy(self, target: int) -> None:
        """Fast-forward the nonce entropy to ``target`` drawn words.

        Valid because the DRBG's state depends only on the total number
        of words drawn, never on the call pattern that drew them.
        """
        if self._entropy is None:
            raise ChannelError("insecure channel has no entropy to advance")
        behind = target - self._entropy.draws
        if behind < 0:
            raise ChannelError(
                f"cannot rewind channel entropy from {self._entropy.draws} "
                f"to {target} draws"
            )
        if behind:
            self._entropy.next_words(behind)

    def transmit(self, sender: str, recipient: str, kind: str, tag: str, payload: Any) -> Message:
        """Serialize, optionally seal, account, tap, and deliver."""
        self._require_endpoint(sender)
        self._require_endpoint(recipient)
        if sender == recipient:
            raise ChannelError("sender and recipient must differ")
        plain = serialize(payload)
        with self._lock:
            if self._cipher is not None:
                assert self._entropy is not None
                # Both endpoints run in this process, so sealing and the
                # recipient's open share one keystream -- the wire bytes are
                # byte-identical to a separate seal() (same nonce entropy),
                # but the channel no longer pays for every keystream twice.
                wire, plain = self._cipher.transmit_roundtrip(plain, self._entropy)
            else:
                wire = plain
            self.stats(sender, recipient).record(len(plain), len(wire))
            self.kind_stats(sender, recipient, kind).record(len(plain), len(wire))
            self._tag_stats.setdefault(tag, ChannelStats()).record(len(plain), len(wire))
            frame = TappedFrame(
                sender=sender,
                recipient=recipient,
                kind=kind,
                tag=tag,
                wire=wire,
                sealed=self.secure,
            )
            for tap in self._taps:
                tap.capture(frame)
        return Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            tag=tag,
            payload=deserialize(plain),
            wire_bytes=len(wire),
            sealed=self.secure,
            crc=zlib.crc32(plain),
        )
