"""The pluggable transport interface every party speaks through.

Parties (:mod:`repro.parties`) never see sockets, queues or channels --
their whole I/O surface is :meth:`Transport.send` and
:meth:`Transport.receive` plus the drain/accounting hooks a session uses
to assert clean completion.  This module pins that surface as an
abstract base class so the same protocol code runs unchanged over:

* :class:`repro.network.simulator.Network` -- the in-process simulator
  (lanes, fault injection, exact byte accounting), used by tests,
  benchmarks and the single-process apps;
* :class:`repro.network.tcp.SocketTransport` -- real asyncio TCP or
  unix-domain-socket connections between separate party *processes*,
  with DH handshake, heartbeat liveness, and reconnect/resume (see
  ``repro.apps.cluster`` for the process supervisor).

The delivery contract all implementations honour:

* Messages land in *lanes* keyed by ``(sender, kind, tag)``; a lane is
  strictly FIFO.
* A **lane receive** (``tag`` given, which requires ``kind`` and
  ``sender``) pops that lane's head and nothing else.
* A **tagless receive** pops the next message in arrival order --
  scoped to one sender when ``sender`` is given -- and treats ``kind``/
  ``sender`` as assertions, raising
  :class:`~repro.exceptions.ProtocolError` on a mismatch instead of
  mis-delivering.
* Payload bytes are produced by :mod:`repro.network.serialization` and
  sealed by the channel cipher when the link is secure, so wire bytes
  are transport-independent: the socket gate test pins a 3-process
  session's per-lane transcript byte-identical to the simulator's.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable

from repro.exceptions import ProtocolError
from repro.network.message import Message


class Transport(abc.ABC):
    """Abstract lane-structured message transport between named parties."""

    @abc.abstractmethod
    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        tag: str = "",
    ) -> None:
        """Route one message into the recipient's ``(sender, kind, tag)``
        lane.  Serialization, sealing and byte accounting happen here."""

    @abc.abstractmethod
    def receive(
        self,
        recipient: str,
        kind: str | None = None,
        sender: str | None = None,
        tag: str | None = None,
    ) -> Message:
        """Pop the next message for ``recipient`` (see module contract)."""

    @abc.abstractmethod
    def pending(self, recipient: str) -> int:
        """Number of delivered-but-unconsumed messages for a party."""

    @abc.abstractmethod
    def drain(self, recipient: str | None = None) -> int:
        """Discard queued messages (one party's, or every local party's);
        returns how many were thrown away."""

    @property
    @abc.abstractmethod
    def parties(self) -> frozenset[str]:
        """Parties whose inbound queues this transport endpoint owns.

        For the simulator that is every registered party; for a socket
        transport it is the one local party (remote queues live in the
        remote processes).
        """

    def assert_drained(self, parties: Iterable[str] | None = None) -> None:
        """Raise unless every local queue is empty (clean completion)."""
        names = list(parties) if parties is not None else sorted(self.parties)
        leftovers = {name: self.pending(name) for name in names}
        leftovers = {name: count for name, count in leftovers.items() if count}
        if leftovers:
            raise ProtocolError(f"undelivered messages remain: {leftovers}")
