"""Retry/backoff policy for the reliable-delivery shim.

A receive on a faulty link loops: inspect the lane, and if the expected
frame was dropped or damaged, request a retransmit and try again.  This
module owns *how hard* that loop tries: an attempt budget, a capped
exponential backoff between attempts, and an optional wall-clock
``deadline`` after which the lane is declared dead.

Determinism note: nothing protocol-visible ever depends on these clock
reads.  Backoff only spaces retransmit attempts in wall-clock time (it
defaults to 0 so the in-process simulator never sleeps), and the
deadline only converts a hopeless retry loop into a structured
:class:`~repro.exceptions.LaneTimeoutError` *earlier* than the attempt
budget would -- whether a maskable fault is masked is decided purely by
the attempt budget, which is configuration, not time.  That is why the
two clock calls below carry justified RL103 waivers instead of moving
the module out of the linted network layer.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """How the reliable receive loop paces and bounds its attempts.

    Attributes
    ----------
    max_attempts:
        Delivery attempts per frame (first try plus retransmits) before
        the lane raises :class:`~repro.exceptions.LaneTimeoutError`.
        This is the knob that decides which fault rates are *maskable*:
        a frame must survive one of ``max_attempts`` independent rolls.
    backoff_base:
        Sleep before retry ``n`` is ``backoff_base * 2**(n - 1)``,
        capped at ``backoff_cap``.  Defaults to 0: the in-process
        simulator retransmits instantly, and tests stay fast.
    backoff_cap:
        Upper bound on a single backoff sleep, in seconds.
    deadline:
        Optional wall-clock budget in seconds for one receive.  ``None``
        (the default) bounds the loop by ``max_attempts`` alone.
    """

    max_attempts: int = 6
    backoff_base: float = 0.0
    backoff_cap: float = 0.05
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not math.isfinite(self.backoff_base) or not math.isfinite(self.backoff_cap):
            # NaN compares false against every bound below, and an
            # infinite base/cap would turn one retransmit pause into an
            # unbounded sleep -- both must fail loudly at construction.
            raise ConfigurationError(
                "backoff_base and backoff_cap must be finite, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError(
                "backoff_base and backoff_cap must be >= 0, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )
        if self.deadline is not None:
            if not math.isfinite(self.deadline):
                raise ConfigurationError(
                    f"deadline must be finite (use None for no deadline), "
                    f"got {self.deadline}"
                )
            if self.deadline <= 0:
                raise ConfigurationError(
                    f"deadline must be > 0 seconds, got {self.deadline}"
                )

    def backoff_delay(self, attempt: int) -> float:
        """Capped exponential delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        return min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap)

    def backoff(self, attempt: int) -> None:
        """Sleep the backoff delay (no-op at the default base of 0)."""
        delay = self.backoff_delay(attempt)
        if delay > 0:
            time.sleep(delay)  # reprolint: disable=RL103 -- paces retransmits in wall-clock time only; masks/results never depend on it

    def start_clock(self) -> float | None:
        """Deadline anchor for one receive (``None`` when unbounded)."""
        if self.deadline is None:
            return None
        return time.monotonic()  # reprolint: disable=RL103 -- bounds a retry loop's wall-clock budget; which faults get masked is decided by max_attempts alone

    def expired(self, started: float | None) -> bool:
        """Whether the deadline budget for one receive is spent."""
        if started is None or self.deadline is None:
            return False
        return time.monotonic() - started >= self.deadline  # reprolint: disable=RL103 -- see start_clock; deadline check only turns a dead lane into a structured error sooner
