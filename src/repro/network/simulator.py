"""The simulated network: parties, links, lanes and traffic accounting.

A :class:`Network` is the single shared object every party holds.  It
owns all channels, delivers messages into per-recipient FIFO queues, and
aggregates the byte counters the communication-cost benchmarks read out.

Since the parallel-execution PR the network is **concurrency-safe**:
the construction scheduler's ``"parallel"`` policy runs protocol steps
on real worker threads, so delivery, accounting and eavesdropper taps
are all lock-protected.  Delivery queues are organised as *lanes*:

* Every message lands in the lane keyed by ``(sender, kind, tag)`` of
  its recipient's queue table.  Tags are attribute-scoped
  (``"numeric/age"``), so one lane carries exactly one protocol run's
  message stream per holder pair direction -- concurrent runs on the
  same link never contend for queue-head gating.
* A *lane receive* (``tag`` given) pops that lane's head and nothing
  else; protocol runs on different attributes or pairs can therefore
  drain their messages in any interleaving without mis-delivery.
* A *legacy receive* (no ``tag``) pops the recipient's global FIFO head
  -- the message with the lowest arrival number across all lanes --
  which is byte-for-byte the pre-lane behaviour: single-threaded
  drivers and the sequential/interleaved schedules are unchanged.

Since the fault-tolerance PR the network can also be **unreliable on
purpose**: installing a :class:`~repro.network.faults.FaultPlan` (or
passing ``retry``) arms the *reliable-delivery shim*.  Every frame then
carries a per-lane sequence number and the sending channel's payload
CRC; the receive path becomes a NACK/retransmit loop driven by a
:class:`~repro.network.retry.RetryPolicy`:

* **dropped** frames stay in the lane as placeholders (so FIFO order
  and "was this ever sent?" stay unambiguous) and are repaired by
  re-transmitting the original payload through the channel -- recovery
  honestly pays wire bytes;
* **corrupted** frames fail the CRC integrity check on open and are
  repaired the same way;
* **duplicated** frames share their original's sequence number and are
  suppressed at delivery;
* **delayed** frames become deliverable after a bounded number of
  receive polls;
* frames to a **crashed** party are lost while the outage lasts; a
  permanently crashed party's own sends and receives raise
  :class:`~repro.exceptions.PartyCrashError`.

A lane whose frame cannot be recovered within the retry budget raises
:class:`~repro.exceptions.LaneTimeoutError` naming the lane and the
attempt count.  What the shim deliberately does *not* change: payload
bytes, message order within a lane, and therefore every matrix a masked
fault schedule produces -- the differential suite
(``tests/test_fault_tolerance.py``) pins final results bit-identical to
the fault-free run.  What it does change: total wire bytes (retransmits
cost), nonce-to-frame assignment, and realized traces.

``latency`` models per-message link delay (sleep on send, outside all
locks).  It exists for deployment realism: protocol rounds of a real
consortium spend most wall-clock time in flight, and overlapping those
round trips is exactly what the parallel scheduler buys.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.crypto.prng import ReseedablePRNG
from repro.exceptions import (
    ChannelError,
    LaneTimeoutError,
    PartyCrashError,
    ProtocolError,
)
from repro.network.channel import Channel, Eavesdropper
from repro.network.faults import FaultPlan
from repro.network.message import Message
from repro.network.retry import RetryPolicy
from repro.network.transport import Transport

#: Lane key: ``(sender, kind, tag)`` of a message, per recipient.
LaneKey = tuple[str, str, str]

#: How many queued messages a diagnostic snapshot lists before truncating.
_SNAPSHOT_LIMIT = 12


@dataclass
class _Frame:
    """One queued delivery: a message plus its wire-side fate.

    ``crc`` is what "arrived" -- it equals ``message.crc`` unless the
    fault layer tampered with the frame, in which case the receive
    path's integrity check catches the mismatch.  ``status`` tracks
    placeholder states: ``"dropped"`` (lost in flight, awaiting
    retransmit), ``"delayed"`` (deliverable after ``delay_polls``
    receive polls) and ``"dup"`` (network-duplicated copy, suppressed
    at delivery).  Mutated only under the recipient's lock.
    """

    message: Message
    seq: int
    crc: int
    status: str = "ok"
    delay_polls: int = 0
    retransmits: int = 0


@dataclass(frozen=True)
class _Scan:
    """Outcome of one locked lane scan."""

    action: str  # "deliver" | "wait" | "retransmit" | "missing"
    lane: LaneKey | None = None
    frame: _Frame | None = None


class Network(Transport):
    """Registry of parties and channels with lane-structured delivery.

    This is the in-process implementation of the
    :class:`~repro.network.transport.Transport` interface: every party
    of the session shares this one object, so "the network" is a table
    of queues rather than sockets.  The socket transports
    (:mod:`repro.network.tcp`) implement the same interface per party
    process.
    """

    def __init__(
        self,
        latency: float = 0.0,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if latency < 0:
            raise ChannelError(f"link latency must be >= 0, got {latency}")
        self.latency = float(latency)
        #: Active fault schedule (``None`` = perfect links).
        self.fault_plan = fault_plan
        #: Retry policy of the reliable shim; set iff the shim is armed.
        self.retry_policy: RetryPolicy | None = None
        if fault_plan is not None or retry is not None:
            self.retry_policy = retry if retry is not None else RetryPolicy()
        # guarded-by: self._registry_lock
        self._parties: set[str] = set()
        # guarded-by: self._registry_lock
        self._channels: dict[frozenset[str], Channel] = {}
        #: Per recipient: lane key -> deque of (arrival number, frame).
        #: Registration populates the outer dict; delivery mutates a
        #: recipient's lane table under that recipient's own lock.
        # guarded-by: self._registry_lock | self._locks[*]
        self._lanes: dict[str, dict[LaneKey, deque[tuple[int, _Frame]]]] = {}
        #: Per recipient: next arrival number (global FIFO order in lanes).
        # guarded-by: self._registry_lock | self._locks[*]
        self._arrivals: dict[str, int] = {}
        #: Per recipient: next outbound sequence number per lane.
        # guarded-by: self._registry_lock | self._locks[*]
        self._next_seq: dict[str, dict[LaneKey, int]] = {}
        #: Per recipient: next expected sequence number per lane (what
        #: duplicate suppression measures against).
        # guarded-by: self._registry_lock | self._locks[*]
        self._expected: dict[str, dict[LaneKey, int]] = {}
        #: Per recipient: guards that recipient's lane table and counters.
        # guarded-by: self._registry_lock
        self._locks: dict[str, threading.Lock] = {}
        #: Recovery counters (:meth:`reliability_stats`).
        # guarded-by: self._stats_lock
        self._rel_stats: dict[str, int] = {
            "retransmits": 0,
            "duplicates_suppressed": 0,
            "corrupt_detected": 0,
            "delayed_deliveries": 0,
            "crash_losses": 0,
            "frames_abandoned": 0,
        }
        self._stats_lock = threading.Lock()
        #: Guards party/channel registration (setup is usually serial,
        #: but nothing stops a test hammering topology concurrently).
        self._registry_lock = threading.Lock()

    @property
    def reliable(self) -> bool:
        """Whether the reliable-delivery shim is armed."""
        return self.retry_policy is not None

    def install_fault_plan(
        self, plan: FaultPlan, retry: RetryPolicy | None = None
    ) -> None:
        """Arm (or re-arm) fault injection on a running network.

        Exists for chaos tests and the checkpoint suite, which build a
        healthy session first and pull the rug mid-history.  Frames
        already queued are unaffected.
        """
        self.fault_plan = plan
        if retry is not None or self.retry_policy is None:
            self.retry_policy = retry if retry is not None else RetryPolicy()

    # -- topology ----------------------------------------------------------

    def add_party(self, name: str) -> None:
        """Register a party; names must be unique and non-empty."""
        if not name:
            raise ChannelError("party name must be non-empty")
        with self._registry_lock:
            if name in self._parties:
                raise ChannelError(f"party {name!r} already registered")
            self._parties.add(name)
            self._lanes[name] = {}
            self._arrivals[name] = 0
            self._next_seq[name] = {}
            self._expected[name] = {}
            self._locks[name] = threading.Lock()

    @property
    def parties(self) -> frozenset[str]:
        return frozenset(self._parties)

    def connect(
        self,
        party_a: str,
        party_b: str,
        secure: bool = True,
        key: bytes | None = None,
        entropy: ReseedablePRNG | None = None,
    ) -> Channel:
        """Create the (single) channel between two registered parties."""
        for name in (party_a, party_b):
            if name not in self._parties:
                raise ChannelError(f"unknown party {name!r}")
        link = frozenset((party_a, party_b))
        with self._registry_lock:
            if link in self._channels:
                raise ChannelError(f"channel {set(link)} already exists")
            channel = Channel(party_a, party_b, secure=secure, key=key, entropy=entropy)
            self._channels[link] = channel
        return channel

    def _require_party(self, name: str) -> None:
        if name not in self._parties:
            raise ChannelError(f"unknown party {name!r}")

    def channel(self, party_a: str, party_b: str) -> Channel:
        """Look up an existing channel."""
        try:
            return self._channels[frozenset((party_a, party_b))]
        except KeyError:
            raise ChannelError(f"no channel between {party_a!r} and {party_b!r}") from None

    def attach_tap(self, party_a: str, party_b: str, tap: Eavesdropper) -> None:
        """Wiretap the link between two parties."""
        self.channel(party_a, party_b).attach_tap(tap)

    # -- messaging -----------------------------------------------------------

    def send(self, sender: str, recipient: str, kind: str, payload: Any, tag: str = "") -> None:
        """Route one message; it lands in the recipient's ``(sender,
        kind, tag)`` lane after the configured link latency.

        With a fault plan installed the frame may instead be dropped,
        duplicated, corrupted or delayed -- always leaving a placeholder
        in the lane, so the reliable receive path can tell "lost in
        flight" from "never sent" and recover the former by retransmit.
        """
        plan = self.fault_plan
        if plan is not None and plan.permanently_down(sender):
            raise PartyCrashError(
                sender, f"party {sender!r} has crashed and cannot send {kind!r}"
            )
        message = self.channel(sender, recipient).transmit(
            sender, recipient, kind, tag, payload
        )
        if self.latency:
            # Models time-in-flight.  Deliberately outside every lock:
            # messages of independent protocol runs overlap in flight,
            # which is the concurrency a real deployment has.
            time.sleep(self.latency)  # reprolint: disable=RL103 -- models time-in-flight only; no protocol value ever depends on the clock
        self._require_party(recipient)
        lost_to_crash = False
        decision = None
        if plan is not None:
            lost_to_crash = plan.absorb_frame_to(recipient)
            decision = plan.decide(sender, recipient, kind, tag)
        if lost_to_crash:
            with self._stats_lock:
                self._rel_stats["crash_losses"] += 1
        with self._locks[recipient]:
            lanes = self._lanes[recipient]
            lane_key: LaneKey = (sender, kind, tag)
            lane = lanes.get(lane_key)
            if lane is None:
                lane = lanes[lane_key] = deque()
            seq = self._next_seq[recipient].get(lane_key, 0)
            self._next_seq[recipient][lane_key] = seq + 1
            frame = _Frame(message=message, seq=seq, crc=message.crc)
            if lost_to_crash or (decision is not None and not decision.deliver):
                frame.status = "dropped"
            elif decision is not None and decision.corrupt:
                frame.crc = message.crc ^ decision.tamper
            elif decision is not None and decision.delay_polls:
                frame.status = "delayed"
                frame.delay_polls = decision.delay_polls
            arrival = self._arrivals[recipient]
            self._arrivals[recipient] = arrival + 1
            lane.append((arrival, frame))
            if decision is not None and decision.duplicate and frame.status != "dropped":
                # A network-level duplicate: same wire frame twice, so it
                # shares the original's seq/crc and charges no new bytes.
                dup = _Frame(
                    message=message, seq=seq, crc=frame.crc, status="dup"
                )
                dup_arrival = self._arrivals[recipient]
                self._arrivals[recipient] = dup_arrival + 1
                lane.append((dup_arrival, dup))

    def _snapshot_locked(self, recipient: str) -> str:
        """Human-readable queue state (kinds + senders, FIFO order,
        truncated) -- must hold the recipient's lock."""
        queued = sorted(
            (arrival, key)
            for key, lane in self._lanes[recipient].items()
            for arrival, _ in lane
        )
        if not queued:
            return "queue empty"
        shown = [
            f"{kind}<-{sender}" + (f" [{tag}]" if tag else "")
            for _, (sender, kind, tag) in queued[:_SNAPSHOT_LIMIT]
        ]
        more = len(queued) - len(shown)
        suffix = f", ... +{more} more" if more else ""
        return f"queued: {', '.join(shown)}{suffix}"

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._rel_stats[counter] += amount

    # -- reliable scanning (all *_locked: caller holds recipient's lock) ---

    def _purge_stale_locked(self, recipient: str, key: LaneKey) -> None:
        """Drop suppressed frames (dups / already-delivered seqs) at the
        head of one lane; deletes the lane when it empties."""
        lanes = self._lanes[recipient]
        lane = lanes.get(key)
        if lane is None:
            return
        expected = self._expected[recipient].get(key, 0)
        while lane and (
            lane[0][1].seq < expected or lane[0][1].status == "dup"
        ):
            lane.popleft()
            self._bump("duplicates_suppressed")
        if not lane:
            del lanes[key]

    def _scan_lane_locked(self, recipient: str, key: LaneKey) -> _Scan:
        """Resolve one lane's head toward delivery (reliable mode)."""
        self._purge_stale_locked(recipient, key)
        lanes = self._lanes[recipient]
        lane = lanes.get(key)
        if not lane:
            return _Scan("missing", key)
        _, frame = lane[0]
        if frame.status == "dropped":
            return _Scan("retransmit", key, frame)
        if frame.status == "delayed":
            frame.delay_polls -= 1
            if frame.delay_polls > 0:
                return _Scan("wait", key, frame)
            frame.status = "ok"
            self._bump("delayed_deliveries")
        if frame.crc != frame.message.crc:
            # Integrity check on open failed: the frame was corrupted in
            # flight.  Treat like a drop -- NACK and retransmit.
            self._bump("corrupt_detected")
            return _Scan("retransmit", key, frame)
        lane.popleft()
        self._expected[recipient][key] = frame.seq + 1
        self._purge_stale_locked(recipient, key)
        return _Scan("deliver", key, frame)

    def _head_lane_locked(self, recipient: str) -> LaneKey | None:
        """Lane holding the global FIFO head (stale frames purged)."""
        lanes = self._lanes[recipient]
        for key in list(lanes):
            self._purge_stale_locked(recipient, key)
        best_key: LaneKey | None = None
        best_arrival = -1
        for key, lane in lanes.items():
            arrival = lane[0][0]
            if best_key is None or arrival < best_arrival:
                best_key, best_arrival = key, arrival
        return best_key

    def _retransmit(self, recipient: str, key: LaneKey, frame: _Frame) -> None:
        """Re-send one lost/damaged frame through its channel.

        The retransmitted payload is the original one, so recovery never
        changes protocol bytes -- it only charges the wire again.  The
        fault plan sees the retransmission too (crash outages absorb it;
        rate faults only with ``fault_retransmits``).
        """
        sender, kind, tag = key
        plan = self.fault_plan
        message = self.channel(sender, recipient).transmit(
            sender, recipient, kind, tag, frame.message.payload
        )
        lost = False
        decision = None
        if plan is not None:
            lost = plan.absorb_frame_to(recipient)
            decision = plan.decide(sender, recipient, kind, tag, retransmission=True)
        self._bump("retransmits")
        if lost:
            self._bump("crash_losses")
        with self._locks[recipient]:
            frame.retransmits += 1
            if lost or (decision is not None and not decision.deliver):
                frame.status = "dropped"
                return
            frame.message = message
            frame.crc = message.crc
            if decision is not None and decision.corrupt:
                frame.crc = message.crc ^ decision.tamper
            if decision is not None and decision.delay_polls:
                frame.status = "delayed"
                frame.delay_polls = decision.delay_polls
            else:
                frame.status = "ok"
                frame.delay_polls = 0

    def _receive_reliable(
        self,
        recipient: str,
        kind: str | None,
        sender: str | None,
        tag: str | None,
    ) -> Message:
        """The NACK/retransmit receive loop (fault plan or retry armed)."""
        policy = self.retry_policy
        assert policy is not None
        started = policy.start_clock()
        attempts = 0
        lane_key: LaneKey | None = (
            (sender, kind, tag)
            if tag is not None and kind is not None and sender is not None
            else None
        )
        while True:
            with self._locks[recipient]:
                if lane_key is not None:
                    scan = self._scan_lane_locked(recipient, lane_key)
                else:
                    head_key = self._head_lane_locked(recipient)
                    if head_key is None:
                        scan = _Scan("missing")
                    else:
                        scan = self._scan_lane_locked(recipient, head_key)
                if scan.action == "missing":
                    if lane_key is not None:
                        raise ProtocolError(
                            f"{recipient!r} has no pending {kind!r} from "
                            f"{sender!r} on lane {tag!r}; "
                            f"{self._snapshot_locked(recipient)}"
                        )
                    raise ProtocolError(f"{recipient!r} has no pending messages")
                if scan.action == "deliver":
                    assert scan.frame is not None
                    message = scan.frame.message
                    if kind is not None and message.kind != kind:
                        raise ProtocolError(
                            f"{recipient!r} expected kind {kind!r}, got "
                            f"{message.kind!r} from {message.sender!r}; after "
                            f"popping the head, {self._snapshot_locked(recipient)}"
                        )
                    if sender is not None and message.sender != sender:
                        raise ProtocolError(
                            f"{recipient!r} expected sender {sender!r}, got "
                            f"{message.sender!r} (kind {message.kind!r}); after "
                            f"popping the head, {self._snapshot_locked(recipient)}"
                        )
                    return message
            # "retransmit" or "wait": spend one attempt, then recover.
            attempts += 1
            assert scan.lane is not None and scan.frame is not None
            if attempts >= policy.max_attempts or policy.expired(started):
                lane_sender, lane_kind, lane_tag = scan.lane
                reason = (
                    f"frame seq {scan.frame.seq} still "
                    f"{scan.frame.status!r} after {scan.frame.retransmits} retransmit(s)"
                )
                # Abandon the dead frame: discard it from its lane so
                # later traffic -- and the serial scheduler's queue-head
                # gating -- can move past it instead of deadlocking on a
                # placeholder that will never be recovered.
                self._abandon_frame(recipient, scan.lane, scan.frame)
                raise LaneTimeoutError(
                    lane_sender,
                    recipient,
                    lane_kind,
                    lane_tag,
                    attempts=attempts,
                    reason=reason,
                )
            policy.backoff(attempts)
            if scan.action == "retransmit":
                self._retransmit(recipient, scan.lane, scan.frame)

    def _abandon_frame(self, recipient: str, key: LaneKey, frame: _Frame) -> None:
        """Discard an unrecoverable frame *and the lane queued behind it*.

        A lane is FIFO: once its head has exhausted the retry budget,
        every frame queued behind the dead head belongs to the same
        protocol run the degraded scheduler is about to cancel -- nobody
        will ever pop them.  Purging the whole lane (counted in
        ``reliability_stats()["frames_abandoned"]``) keeps
        :meth:`pending`/:meth:`drain`/:meth:`assert_drained` honest
        after a *tolerated* timeout: the network reports clean instead
        of leaking the abandoned entries forever.
        """
        abandoned = 0
        with self._locks[recipient]:
            lanes = self._lanes[recipient]
            lane = lanes.get(key)
            if lane and lane[0][1] is frame:
                abandoned = len(lane)
                highest = max(queued.seq for _, queued in lane)
                lane.clear()
                self._expected[recipient][key] = highest + 1
                del lanes[key]
        if abandoned:
            self._bump("frames_abandoned", abandoned)

    def receive(
        self,
        recipient: str,
        kind: str | None = None,
        sender: str | None = None,
        tag: str | None = None,
    ) -> Message:
        """Pop the next queued message for ``recipient``.

        With ``tag`` (which requires ``kind`` and ``sender``), pops the
        head of exactly the ``(sender, kind, tag)`` lane -- the receive a
        concurrent protocol run uses, immune to whatever other runs have
        in flight.  Without ``tag``, pops the recipient's global FIFO
        head; ``kind``/``sender`` then act as assertions: a mismatch
        means the protocol state machines have diverged, so we raise
        :class:`ProtocolError` (naming the full queue state, so a
        mis-scheduling is diagnosable) rather than mis-deliver.

        With the reliable shim armed, this is the recovery loop: lost or
        damaged frames are NACKed and retransmitted under the
        :class:`RetryPolicy`, duplicates are suppressed, and a lane that
        cannot be recovered raises
        :class:`~repro.exceptions.LaneTimeoutError`.
        """
        self._require_party(recipient)
        if tag is not None and (kind is None or sender is None):
            raise ChannelError(
                "lane receive requires kind and sender alongside tag"
            )
        plan = self.fault_plan
        if plan is not None and plan.permanently_down(recipient):
            raise PartyCrashError(
                recipient, f"party {recipient!r} has crashed and cannot receive"
            )
        if self.reliable:
            return self._receive_reliable(recipient, kind, sender, tag)
        with self._locks[recipient]:
            if tag is not None:
                assert kind is not None and sender is not None
                lanes = self._lanes[recipient]
                lane = lanes.get((sender, kind, tag))
                if not lane:
                    raise ProtocolError(
                        f"{recipient!r} has no pending {kind!r} from {sender!r} "
                        f"on lane {tag!r}; {self._snapshot_locked(recipient)}"
                    )
                _, frame = lane.popleft()
                if not lane:
                    del lanes[(sender, kind, tag)]
                return frame.message
            message = self._pop_head_locked(recipient)
            if message is None:
                raise ProtocolError(f"{recipient!r} has no pending messages")
            if kind is not None and message.kind != kind:
                raise ProtocolError(
                    f"{recipient!r} expected kind {kind!r}, got {message.kind!r} "
                    f"from {message.sender!r}; after popping the head, "
                    f"{self._snapshot_locked(recipient)}"
                )
            if sender is not None and message.sender != sender:
                raise ProtocolError(
                    f"{recipient!r} expected sender {sender!r}, got "
                    f"{message.sender!r} (kind {message.kind!r}); after popping "
                    f"the head, {self._snapshot_locked(recipient)}"
                )
            return message

    def _pop_head_locked(self, recipient: str) -> Message | None:
        """Pop the global FIFO head across lanes (lowest arrival)."""
        lanes = self._lanes[recipient]
        best_key: LaneKey | None = None
        best_arrival = -1
        for key, lane in lanes.items():
            arrival = lane[0][0]
            if best_key is None or arrival < best_arrival:
                best_key, best_arrival = key, arrival
        if best_key is None:
            return None
        lane = lanes[best_key]
        _, frame = lane.popleft()
        if not lane:
            del lanes[best_key]
        return frame.message

    def pending(self, recipient: str) -> int:
        """Number of undelivered messages for a party."""
        self._require_party(recipient)
        with self._locks[recipient]:
            return sum(len(lane) for lane in self._lanes[recipient].values())

    def peek(self, recipient: str) -> Message | None:
        """The message a legacy :meth:`receive` would pop next.

        The serial construction schedules use this to gate a receive
        step on its message actually being the FIFO head -- steps never
        mis-deliver no matter how they are interleaved.  Under the
        reliable shim, placeholders of dropped/delayed frames *are* the
        logical head (they will be recovered and delivered), so gating
        still sees the schedule the fault-free run would.
        """
        self._require_party(recipient)
        with self._locks[recipient]:
            if self.reliable:
                key = self._head_lane_locked(recipient)
                if key is None:
                    return None
                return self._lanes[recipient][key][0][1].message
            lanes = self._lanes[recipient]
            best: tuple[int, _Frame] | None = None
            for lane in lanes.values():
                if best is None or lane[0][0] < best[0]:
                    best = lane[0]
            return best[1].message if best else None

    def drain(self, recipient: str | None = None) -> int:
        """Discard every queued frame (one party's or everyone's).

        Returns the number of frames thrown away.  Degraded sessions use
        this to clean up lanes that a cancelled step will never read;
        see DESIGN.md "Fault model & recovery" for which lanes a failed
        parallel run can leave undrained.
        """
        names = [recipient] if recipient is not None else sorted(self._parties)
        dropped = 0
        for name in names:
            self._require_party(name)
            with self._locks[name]:
                for lane in self._lanes[name].values():
                    dropped += len(lane)
                self._lanes[name].clear()
        return dropped

    def reliability_stats(self) -> dict[str, int]:
        """Recovery counters of the reliable shim (all zero when off)."""
        with self._stats_lock:
            return dict(self._rel_stats)

    # -- checkpointing ---------------------------------------------------------

    def channel_entropy_positions(self) -> dict[str, int]:
        """Nonce-entropy draw counts per secure link, keyed ``"A|B"``.

        Part of a session checkpoint: restoring fast-forwards each
        link's freshly derived entropy to these positions
        (:meth:`advance_channel_entropy`), so post-restore sealed frames
        use exactly the nonces the uninterrupted run would have.
        """
        positions: dict[str, int] = {}
        for link, channel in self._channels.items():
            draws = channel.entropy_draws()
            if draws is not None:
                a, b = sorted(link)
                positions[f"{a}|{b}"] = draws
        return positions

    def advance_channel_entropy(self, positions: Mapping[str, int]) -> None:
        """Fast-forward link nonce entropies to checkpointed positions."""
        for label, target in positions.items():
            a, _, b = label.partition("|")
            self.channel(a, b).advance_entropy(int(target))

    # -- accounting ------------------------------------------------------------

    def bytes_sent_by(self, party: str) -> int:
        """Total wire bytes this party transmitted (all links)."""
        total = 0
        for link, channel in self._channels.items():
            if party in link:
                (other,) = link - {party}
                total += channel.stats(party, other).wire_bytes
        return total

    def bytes_on_link(self, party_a: str, party_b: str) -> int:
        """Total wire bytes in both directions of one link."""
        channel = self.channel(party_a, party_b)
        return (
            channel.stats(party_a, party_b).wire_bytes
            + channel.stats(party_b, party_a).wire_bytes
        )

    def total_bytes(self) -> int:
        """Grand total of wire bytes across the whole network."""
        total = 0
        for link, channel in self._channels.items():
            a, b = sorted(link)
            total += channel.stats(a, b).wire_bytes
            total += channel.stats(b, a).wire_bytes
        return total

    def bytes_of_kind(self, sender: str, recipient: str, kind: str) -> int:
        """Wire bytes of one message kind on one directed link."""
        return self.channel(sender, recipient).kind_stats(sender, recipient, kind).wire_bytes

    def bytes_by_tag(self) -> dict[str, int]:
        """Network-wide wire bytes grouped by accounting tag.

        Tags are attribute-scoped (``"numeric/age"``), so this is the
        per-attribute cost breakdown of a whole session.
        """
        totals: dict[str, int] = {}
        for channel in self._channels.values():
            for tag, stats in channel.tag_totals().items():
                totals[tag] = totals.get(tag, 0) + stats.wire_bytes
        return totals

    def messages_sent_by(self, party: str) -> int:
        """Total message count this party transmitted."""
        total = 0
        for link, channel in self._channels.items():
            if party in link:
                (other,) = link - {party}
                total += channel.stats(party, other).messages
        return total

    def assert_drained(self, parties: Iterable[str] | None = None) -> None:
        """Raise unless every queue is empty (protocol completed cleanly)."""
        names = list(parties) if parties is not None else sorted(self._parties)
        leftovers = {name: self.pending(name) for name in names}
        leftovers = {name: count for name, count in leftovers.items() if count}
        if leftovers:
            raise ProtocolError(f"undelivered messages remain: {leftovers}")
