"""The simulated network: parties, links, queues and traffic accounting.

A :class:`Network` is the single shared object every party holds.  It
owns all channels, delivers messages into per-recipient FIFO queues, and
aggregates the byte counters the communication-cost benchmarks read out.

Execution is single-threaded and deterministic: the session orchestrator
drives parties in protocol order, so a ``receive`` always finds its
message (anything else is a protocol bug and raises immediately).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Iterable

from repro.crypto.prng import ReseedablePRNG
from repro.exceptions import ChannelError, ProtocolError
from repro.network.channel import Channel, Eavesdropper
from repro.network.message import Message


class Network:
    """Registry of parties and channels with delivery queues."""

    def __init__(self) -> None:
        self._parties: set[str] = set()
        self._channels: dict[frozenset[str], Channel] = {}
        self._queues: dict[str, deque[Message]] = defaultdict(deque)

    # -- topology ----------------------------------------------------------

    def add_party(self, name: str) -> None:
        """Register a party; names must be unique and non-empty."""
        if not name:
            raise ChannelError("party name must be non-empty")
        if name in self._parties:
            raise ChannelError(f"party {name!r} already registered")
        self._parties.add(name)

    @property
    def parties(self) -> frozenset[str]:
        return frozenset(self._parties)

    def connect(
        self,
        party_a: str,
        party_b: str,
        secure: bool = True,
        key: bytes | None = None,
        entropy: ReseedablePRNG | None = None,
    ) -> Channel:
        """Create the (single) channel between two registered parties."""
        for name in (party_a, party_b):
            if name not in self._parties:
                raise ChannelError(f"unknown party {name!r}")
        link = frozenset((party_a, party_b))
        if link in self._channels:
            raise ChannelError(f"channel {set(link)} already exists")
        channel = Channel(party_a, party_b, secure=secure, key=key, entropy=entropy)
        self._channels[link] = channel
        return channel

    def channel(self, party_a: str, party_b: str) -> Channel:
        """Look up an existing channel."""
        try:
            return self._channels[frozenset((party_a, party_b))]
        except KeyError:
            raise ChannelError(f"no channel between {party_a!r} and {party_b!r}") from None

    def attach_tap(self, party_a: str, party_b: str, tap: Eavesdropper) -> None:
        """Wiretap the link between two parties."""
        self.channel(party_a, party_b).attach_tap(tap)

    # -- messaging -----------------------------------------------------------

    def send(self, sender: str, recipient: str, kind: str, payload: Any, tag: str = "") -> None:
        """Route one message; it lands in the recipient's FIFO queue."""
        message = self.channel(sender, recipient).transmit(
            sender, recipient, kind, tag, payload
        )
        self._queues[recipient].append(message)

    def receive(self, recipient: str, kind: str | None = None, sender: str | None = None) -> Message:
        """Pop the next queued message for ``recipient``.

        ``kind``/``sender`` act as assertions: a mismatch means the
        protocol state machines have diverged, so we raise
        :class:`ProtocolError` rather than mis-deliver.
        """
        queue = self._queues[recipient]
        if not queue:
            raise ProtocolError(f"{recipient!r} has no pending messages")
        message = queue.popleft()
        if kind is not None and message.kind != kind:
            raise ProtocolError(
                f"{recipient!r} expected kind {kind!r}, got {message.kind!r}"
            )
        if sender is not None and message.sender != sender:
            raise ProtocolError(
                f"{recipient!r} expected sender {sender!r}, got {message.sender!r}"
            )
        return message

    def pending(self, recipient: str) -> int:
        """Number of undelivered messages for a party."""
        return len(self._queues[recipient])

    def peek(self, recipient: str) -> Message | None:
        """The message :meth:`receive` would pop next, without popping.

        The construction scheduler uses this to gate a receive step on
        its message actually being at the head of the FIFO -- steps never
        mis-deliver no matter how they are interleaved.
        """
        queue = self._queues[recipient]
        return queue[0] if queue else None

    # -- accounting ------------------------------------------------------------

    def bytes_sent_by(self, party: str) -> int:
        """Total wire bytes this party transmitted (all links)."""
        total = 0
        for link, channel in self._channels.items():
            if party in link:
                (other,) = link - {party}
                total += channel.stats(party, other).wire_bytes
        return total

    def bytes_on_link(self, party_a: str, party_b: str) -> int:
        """Total wire bytes in both directions of one link."""
        channel = self.channel(party_a, party_b)
        return (
            channel.stats(party_a, party_b).wire_bytes
            + channel.stats(party_b, party_a).wire_bytes
        )

    def total_bytes(self) -> int:
        """Grand total of wire bytes across the whole network."""
        total = 0
        for link, channel in self._channels.items():
            a, b = sorted(link)
            total += channel.stats(a, b).wire_bytes
            total += channel.stats(b, a).wire_bytes
        return total

    def bytes_of_kind(self, sender: str, recipient: str, kind: str) -> int:
        """Wire bytes of one message kind on one directed link."""
        return self.channel(sender, recipient).kind_stats(sender, recipient, kind).wire_bytes

    def bytes_by_tag(self) -> dict[str, int]:
        """Network-wide wire bytes grouped by accounting tag.

        Tags are attribute-scoped (``"numeric/age"``), so this is the
        per-attribute cost breakdown of a whole session.
        """
        totals: dict[str, int] = {}
        for channel in self._channels.values():
            for tag, stats in channel.tag_totals().items():
                totals[tag] = totals.get(tag, 0) + stats.wire_bytes
        return totals

    def messages_sent_by(self, party: str) -> int:
        """Total message count this party transmitted."""
        total = 0
        for link, channel in self._channels.items():
            if party in link:
                (other,) = link - {party}
                total += channel.stats(party, other).messages
        return total

    def assert_drained(self, parties: Iterable[str] | None = None) -> None:
        """Raise unless every queue is empty (protocol completed cleanly)."""
        names = list(parties) if parties is not None else sorted(self._parties)
        leftovers = {name: len(self._queues[name]) for name in names if self._queues[name]}
        if leftovers:
            raise ProtocolError(f"undelivered messages remain: {leftovers}")
