"""The simulated network: parties, links, lanes and traffic accounting.

A :class:`Network` is the single shared object every party holds.  It
owns all channels, delivers messages into per-recipient FIFO queues, and
aggregates the byte counters the communication-cost benchmarks read out.

Since the parallel-execution PR the network is **concurrency-safe**:
the construction scheduler's ``"parallel"`` policy runs protocol steps
on real worker threads, so delivery, accounting and eavesdropper taps
are all lock-protected.  Delivery queues are organised as *lanes*:

* Every message lands in the lane keyed by ``(sender, kind, tag)`` of
  its recipient's queue table.  Tags are attribute-scoped
  (``"numeric/age"``), so one lane carries exactly one protocol run's
  message stream per holder pair direction -- concurrent runs on the
  same link never contend for queue-head gating.
* A *lane receive* (``tag`` given) pops that lane's head and nothing
  else; protocol runs on different attributes or pairs can therefore
  drain their messages in any interleaving without mis-delivery.
* A *legacy receive* (no ``tag``) pops the recipient's global FIFO head
  -- the message with the lowest arrival number across all lanes --
  which is byte-for-byte the pre-lane behaviour: single-threaded
  drivers and the sequential/interleaved schedules are unchanged.

``latency`` models per-message link delay (sleep on send, outside all
locks).  It exists for deployment realism: protocol rounds of a real
consortium spend most wall-clock time in flight, and overlapping those
round trips is exactly what the parallel scheduler buys.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Iterable

from repro.crypto.prng import ReseedablePRNG
from repro.exceptions import ChannelError, ProtocolError
from repro.network.channel import Channel, Eavesdropper
from repro.network.message import Message

#: Lane key: ``(sender, kind, tag)`` of a message, per recipient.
LaneKey = tuple[str, str, str]

#: How many queued messages a diagnostic snapshot lists before truncating.
_SNAPSHOT_LIMIT = 12


class Network:
    """Registry of parties and channels with lane-structured delivery."""

    def __init__(self, latency: float = 0.0) -> None:
        if latency < 0:
            raise ChannelError(f"link latency must be >= 0, got {latency}")
        self.latency = float(latency)
        # guarded-by: self._registry_lock
        self._parties: set[str] = set()
        # guarded-by: self._registry_lock
        self._channels: dict[frozenset[str], Channel] = {}
        #: Per recipient: lane key -> deque of (arrival number, message).
        #: Registration populates the outer dict; delivery mutates a
        #: recipient's lane table under that recipient's own lock.
        # guarded-by: self._registry_lock | self._locks[*]
        self._lanes: dict[str, dict[LaneKey, deque[tuple[int, Message]]]] = {}
        #: Per recipient: next arrival number (global FIFO order in lanes).
        # guarded-by: self._registry_lock | self._locks[*]
        self._arrivals: dict[str, int] = {}
        #: Per recipient: guards that recipient's lane table and counter.
        # guarded-by: self._registry_lock
        self._locks: dict[str, threading.Lock] = {}
        #: Guards party/channel registration (setup is usually serial,
        #: but nothing stops a test hammering topology concurrently).
        self._registry_lock = threading.Lock()

    # -- topology ----------------------------------------------------------

    def add_party(self, name: str) -> None:
        """Register a party; names must be unique and non-empty."""
        if not name:
            raise ChannelError("party name must be non-empty")
        with self._registry_lock:
            if name in self._parties:
                raise ChannelError(f"party {name!r} already registered")
            self._parties.add(name)
            self._lanes[name] = {}
            self._arrivals[name] = 0
            self._locks[name] = threading.Lock()

    @property
    def parties(self) -> frozenset[str]:
        return frozenset(self._parties)

    def connect(
        self,
        party_a: str,
        party_b: str,
        secure: bool = True,
        key: bytes | None = None,
        entropy: ReseedablePRNG | None = None,
    ) -> Channel:
        """Create the (single) channel between two registered parties."""
        for name in (party_a, party_b):
            if name not in self._parties:
                raise ChannelError(f"unknown party {name!r}")
        link = frozenset((party_a, party_b))
        with self._registry_lock:
            if link in self._channels:
                raise ChannelError(f"channel {set(link)} already exists")
            channel = Channel(party_a, party_b, secure=secure, key=key, entropy=entropy)
            self._channels[link] = channel
        return channel

    def _require_party(self, name: str) -> None:
        if name not in self._parties:
            raise ChannelError(f"unknown party {name!r}")

    def channel(self, party_a: str, party_b: str) -> Channel:
        """Look up an existing channel."""
        try:
            return self._channels[frozenset((party_a, party_b))]
        except KeyError:
            raise ChannelError(f"no channel between {party_a!r} and {party_b!r}") from None

    def attach_tap(self, party_a: str, party_b: str, tap: Eavesdropper) -> None:
        """Wiretap the link between two parties."""
        self.channel(party_a, party_b).attach_tap(tap)

    # -- messaging -----------------------------------------------------------

    def send(self, sender: str, recipient: str, kind: str, payload: Any, tag: str = "") -> None:
        """Route one message; it lands in the recipient's ``(sender,
        kind, tag)`` lane after the configured link latency."""
        message = self.channel(sender, recipient).transmit(
            sender, recipient, kind, tag, payload
        )
        if self.latency:
            # Models time-in-flight.  Deliberately outside every lock:
            # messages of independent protocol runs overlap in flight,
            # which is the concurrency a real deployment has.
            time.sleep(self.latency)  # reprolint: disable=RL103 -- models time-in-flight only; no protocol value ever depends on the clock
        self._require_party(recipient)
        with self._locks[recipient]:
            arrival = self._arrivals[recipient]
            self._arrivals[recipient] = arrival + 1
            lanes = self._lanes[recipient]
            lane = lanes.get((sender, kind, tag))
            if lane is None:
                lane = lanes[(sender, kind, tag)] = deque()
            lane.append((arrival, message))

    def _snapshot_locked(self, recipient: str) -> str:
        """Human-readable queue state (kinds + senders, FIFO order,
        truncated) -- must hold the recipient's lock."""
        queued = sorted(
            (arrival, key)
            for key, lane in self._lanes[recipient].items()
            for arrival, _ in lane
        )
        if not queued:
            return "queue empty"
        shown = [
            f"{kind}<-{sender}" + (f" [{tag}]" if tag else "")
            for _, (sender, kind, tag) in queued[:_SNAPSHOT_LIMIT]
        ]
        more = len(queued) - len(shown)
        suffix = f", ... +{more} more" if more else ""
        return f"queued: {', '.join(shown)}{suffix}"

    def _pop_head_locked(self, recipient: str) -> Message | None:
        """Pop the global FIFO head across lanes (lowest arrival)."""
        lanes = self._lanes[recipient]
        best_key: LaneKey | None = None
        best_arrival = -1
        for key, lane in lanes.items():
            arrival = lane[0][0]
            if best_key is None or arrival < best_arrival:
                best_key, best_arrival = key, arrival
        if best_key is None:
            return None
        lane = lanes[best_key]
        _, message = lane.popleft()
        if not lane:
            del lanes[best_key]
        return message

    def receive(
        self,
        recipient: str,
        kind: str | None = None,
        sender: str | None = None,
        tag: str | None = None,
    ) -> Message:
        """Pop the next queued message for ``recipient``.

        With ``tag`` (which requires ``kind`` and ``sender``), pops the
        head of exactly the ``(sender, kind, tag)`` lane -- the receive a
        concurrent protocol run uses, immune to whatever other runs have
        in flight.  Without ``tag``, pops the recipient's global FIFO
        head; ``kind``/``sender`` then act as assertions: a mismatch
        means the protocol state machines have diverged, so we raise
        :class:`ProtocolError` (naming the full queue state, so a
        mis-scheduling is diagnosable) rather than mis-deliver.
        """
        self._require_party(recipient)
        with self._locks[recipient]:
            if tag is not None:
                if kind is None or sender is None:
                    raise ChannelError(
                        "lane receive requires kind and sender alongside tag"
                    )
                lanes = self._lanes[recipient]
                lane = lanes.get((sender, kind, tag))
                if not lane:
                    raise ProtocolError(
                        f"{recipient!r} has no pending {kind!r} from {sender!r} "
                        f"on lane {tag!r}; {self._snapshot_locked(recipient)}"
                    )
                _, message = lane.popleft()
                if not lane:
                    del lanes[(sender, kind, tag)]
                return message
            message = self._pop_head_locked(recipient)
            if message is None:
                raise ProtocolError(f"{recipient!r} has no pending messages")
            if kind is not None and message.kind != kind:
                raise ProtocolError(
                    f"{recipient!r} expected kind {kind!r}, got {message.kind!r} "
                    f"from {message.sender!r}; after popping the head, "
                    f"{self._snapshot_locked(recipient)}"
                )
            if sender is not None and message.sender != sender:
                raise ProtocolError(
                    f"{recipient!r} expected sender {sender!r}, got "
                    f"{message.sender!r} (kind {message.kind!r}); after popping "
                    f"the head, {self._snapshot_locked(recipient)}"
                )
            return message

    def pending(self, recipient: str) -> int:
        """Number of undelivered messages for a party."""
        self._require_party(recipient)
        with self._locks[recipient]:
            return sum(len(lane) for lane in self._lanes[recipient].values())

    def peek(self, recipient: str) -> Message | None:
        """The message a legacy :meth:`receive` would pop next.

        The serial construction schedules use this to gate a receive
        step on its message actually being the FIFO head -- steps never
        mis-deliver no matter how they are interleaved.
        """
        self._require_party(recipient)
        with self._locks[recipient]:
            lanes = self._lanes[recipient]
            best: tuple[int, Message] | None = None
            for lane in lanes.values():
                if best is None or lane[0][0] < best[0]:
                    best = lane[0]
            return best[1] if best else None

    # -- accounting ------------------------------------------------------------

    def bytes_sent_by(self, party: str) -> int:
        """Total wire bytes this party transmitted (all links)."""
        total = 0
        for link, channel in self._channels.items():
            if party in link:
                (other,) = link - {party}
                total += channel.stats(party, other).wire_bytes
        return total

    def bytes_on_link(self, party_a: str, party_b: str) -> int:
        """Total wire bytes in both directions of one link."""
        channel = self.channel(party_a, party_b)
        return (
            channel.stats(party_a, party_b).wire_bytes
            + channel.stats(party_b, party_a).wire_bytes
        )

    def total_bytes(self) -> int:
        """Grand total of wire bytes across the whole network."""
        total = 0
        for link, channel in self._channels.items():
            a, b = sorted(link)
            total += channel.stats(a, b).wire_bytes
            total += channel.stats(b, a).wire_bytes
        return total

    def bytes_of_kind(self, sender: str, recipient: str, kind: str) -> int:
        """Wire bytes of one message kind on one directed link."""
        return self.channel(sender, recipient).kind_stats(sender, recipient, kind).wire_bytes

    def bytes_by_tag(self) -> dict[str, int]:
        """Network-wide wire bytes grouped by accounting tag.

        Tags are attribute-scoped (``"numeric/age"``), so this is the
        per-attribute cost breakdown of a whole session.
        """
        totals: dict[str, int] = {}
        for channel in self._channels.values():
            for tag, stats in channel.tag_totals().items():
                totals[tag] = totals.get(tag, 0) + stats.wire_bytes
        return totals

    def messages_sent_by(self, party: str) -> int:
        """Total message count this party transmitted."""
        total = 0
        for link, channel in self._channels.items():
            if party in link:
                (other,) = link - {party}
                total += channel.stats(party, other).messages
        return total

    def assert_drained(self, parties: Iterable[str] | None = None) -> None:
        """Raise unless every queue is empty (protocol completed cleanly)."""
        names = list(parties) if parties is not None else sorted(self._parties)
        leftovers = {name: self.pending(name) for name in names}
        leftovers = {name: count for name, count in leftovers.items() if count}
        if leftovers:
            raise ProtocolError(f"undelivered messages remain: {leftovers}")
