"""Socket-session control frames and per-link sealing state.

The socket transports (:mod:`repro.network.tcp`) speak a tiny control
protocol around the protocol's own data frames.  Everything on a
connection is one length-prefixed frame
(:func:`repro.network.serialization.encode_frame`) whose body is a dict
with a ``"t"`` discriminator:

``hello``
    First frame each side sends: names the party, its supervisor-issued
    incarnation number, the session fingerprint (both ends must be
    configured from the same session spec), the sender's current *era*
    and how many data frames it has durably delivered from the peer in
    that era (so the peer replays exactly the unacked tail).
``dh``
    The party's Diffie-Hellman public value.  Sent immediately after
    ``hello``; both ends derive the identical pairwise secret a
    single-process session would have derived, because DH entropy is
    session-deterministic.
``data``
    One protocol message: per-connection sequence number, era, lane
    metadata (``kind``/``tag``) and the sealed (or plaintext, on
    insecure links) serialized payload.
``ack``
    Cumulative delivery acknowledgement, so senders can prune their
    replay outbox.
``hb``
    Heartbeat; carries only the era.  Its arrival (like any frame's)
    feeds the receiver's liveness state machine.

Control frames are plaintext by design: they carry only public values
(party names, counters, DH publics, the spec fingerprint).  Everything
the paper requires secrecy for rides inside ``data`` frames, sealed by
:class:`LinkCipher`.

Era/incarnation model (crash recovery)
--------------------------------------
Every party process has an *incarnation* (1 at first launch, bumped by
the supervisor on each restart) and tracks the latest known incarnation
of every peer.  The **era** is the sum of all known incarnations: a
fresh n-party session is era ``n``, and any restart strictly increases
the era at every party that learns of it.  A ``hello`` carrying a higher
incarnation than known is therefore an unforgeable "peer lost its state"
signal; the transport surfaces it as
:class:`~repro.exceptions.SessionResetError` and the party driver
re-enters the protocol from its checkpoint in the new era.  Data frames
are era-stamped so late frames from a dead era are dropped and early
frames from the next era are parked, never misdelivered.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Mapping, Protocol

from repro.crypto.prng import ReseedablePRNG
from repro.crypto.sym import SymmetricCipher
from repro.exceptions import ChannelError
from repro.network.serialization import serialize

#: ``"t"`` discriminator values of the socket control protocol.
HELLO = "hello"
DH = "dh"
DATA = "data"
ACK = "ack"
HEARTBEAT = "hb"


# -- frame builders ---------------------------------------------------------


def hello_frame(
    party: str, incarnation: int, fingerprint: bytes, era: int, delivered: int
) -> dict[str, Any]:
    """The first frame either side of a connection sends."""
    return {
        "t": HELLO,
        "party": party,
        "incarnation": incarnation,
        "fingerprint": fingerprint,
        "era": era,
        "delivered": delivered,
    }


def dh_frame(party: str, public: int) -> dict[str, Any]:
    """The party's DH public value (public by definition)."""
    return {"t": DH, "party": party, "public": public}


def data_frame(
    seq: int, era: int, kind: str, tag: str, body: bytes
) -> dict[str, Any]:
    """One protocol message.  ``body`` is the sealed/serialized payload.

    ``body`` is deliberately the *last* dict entry: the codec preserves
    insertion order, so the fault-injection hook that flips a frame's
    final byte lands inside the ciphertext/MAC region, exactly like a
    real tail-truncation or bit rot would.
    """
    return {"t": DATA, "seq": seq, "era": era, "kind": kind, "tag": tag, "body": body}


def ack_frame(seq: int, era: int) -> dict[str, Any]:
    """Cumulative ack: every data frame up to ``seq`` was delivered."""
    return {"t": ACK, "seq": seq, "era": era}


def heartbeat_frame(era: int) -> dict[str, Any]:
    """Liveness probe; any inbound frame refreshes liveness, this one
    exists so an idle-but-alive peer keeps refreshing it."""
    return {"t": HEARTBEAT, "era": era}


# -- parsed frames ----------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    party: str
    incarnation: int
    fingerprint: bytes = field(repr=False)
    era: int
    delivered: int


@dataclass(frozen=True)
class DhOffer:
    party: str
    public: int = field(repr=False)


@dataclass(frozen=True)
class DataFrame:
    seq: int
    era: int
    kind: str
    tag: str
    body: bytes = field(repr=False)


@dataclass(frozen=True)
class Ack:
    seq: int
    era: int


@dataclass(frozen=True)
class Heartbeat:
    era: int


def frame_type(obj: Any) -> str:
    """The ``"t"`` discriminator of a decoded frame dict."""
    if not isinstance(obj, dict) or not isinstance(obj.get("t"), str):
        raise ChannelError("malformed socket frame: missing type discriminator")
    t: str = obj["t"]
    return t


def _require(obj: Mapping[str, Any], name: str, kind: str, typ: type) -> Any:
    value = obj.get(name)
    # bool is an int subclass; counters must be actual ints.
    if not isinstance(value, typ) or (typ is int and isinstance(value, bool)):
        raise ChannelError(
            f"malformed {kind!r} frame: field {name!r} missing or mistyped"
        )
    return value


def parse_hello(obj: Mapping[str, Any]) -> Hello:
    return Hello(
        party=str(_require(obj, "party", HELLO, str)),
        incarnation=int(_require(obj, "incarnation", HELLO, int)),
        fingerprint=bytes(_require(obj, "fingerprint", HELLO, bytes)),
        era=int(_require(obj, "era", HELLO, int)),
        delivered=int(_require(obj, "delivered", HELLO, int)),
    )


def parse_dh(obj: Mapping[str, Any]) -> DhOffer:
    return DhOffer(
        party=str(_require(obj, "party", DH, str)),
        public=int(_require(obj, "public", DH, int)),
    )


def parse_data(obj: Mapping[str, Any]) -> DataFrame:
    return DataFrame(
        seq=int(_require(obj, "seq", DATA, int)),
        era=int(_require(obj, "era", DATA, int)),
        kind=str(_require(obj, "kind", DATA, str)),
        tag=str(_require(obj, "tag", DATA, str)),
        body=bytes(_require(obj, "body", DATA, bytes)),
    )


def parse_ack(obj: Mapping[str, Any]) -> Ack:
    return Ack(
        seq=int(_require(obj, "seq", ACK, int)),
        era=int(_require(obj, "era", ACK, int)),
    )


def parse_heartbeat(obj: Mapping[str, Any]) -> Heartbeat:
    return Heartbeat(era=int(_require(obj, "era", HEARTBEAT, int)))


def check_fingerprint(expected: bytes, hello: Hello) -> None:
    """Reject a peer configured from a different session spec.

    The fingerprint is a digest of the shared session spec file -- not a
    secret -- so two processes launched against divergent specs fail the
    handshake immediately instead of producing silently different
    transcripts.
    """
    if hello.fingerprint != expected:
        raise ChannelError(
            f"party {hello.party!r} presented a different session "
            f"fingerprint; both processes must be launched from the same "
            f"session spec file"
        )


# -- per-link sealing -------------------------------------------------------


class LinkCipher:
    """One endpoint's sealing state for one link, in simulator lockstep.

    The in-process simulator runs both endpoints of a
    :class:`~repro.network.channel.Channel` against a *single* shared
    nonce-entropy stream, so link nonces advance once per frame in frame
    order.  In a multi-process session each endpoint derives its own
    copy of that same stream and keeps it synchronised by construction:

    * :meth:`seal` draws the nonce (:data:`NONCE_WORDS` words, exactly
      what :meth:`repro.crypto.sym.SymmetricCipher.seal` consumes);
    * :meth:`open` advances the local stream by the same
      :data:`NONCE_WORDS` *after* a successful open -- the nonce itself
      arrives on the wire, but the position must account for the words
      the sender drew.

    Because each link's traffic is processed in the same per-link order
    at both ends (the protocol's phase structure guarantees it), the two
    copies never diverge -- which is what makes multi-process sealed
    bytes byte-identical to the simulator transcript, and what lets a
    checkpoint record a single ``draws`` integer per link.

    An authentication failure in :meth:`open` does **not** advance the
    stream: the transport treats the connection as broken and the peer
    replays the frame, which must then open at the original position.

    A ``LinkCipher`` built with ``key=None`` is the insecure variant:
    :meth:`seal`/:meth:`open` pass bytes through unchanged (the paper's
    Section 4.1 eavesdropper scenario), and :attr:`nonce_draws` is
    ``None``.
    """

    #: 64-bit words one sealed frame's nonce consumes (128-bit nonce).
    NONCE_WORDS = 2

    def __init__(
        self,
        pair: tuple[str, str],
        key: bytes | None = None,
        entropy: ReseedablePRNG | None = None,
    ) -> None:
        if len(pair) != 2 or pair[0] == pair[1]:
            raise ChannelError(f"invalid link pair: {pair}")
        self.pair: tuple[str, str] = (
            (pair[1], pair[0]) if pair[0] > pair[1] else (pair[0], pair[1])
        )
        if key is not None and entropy is None:
            raise ChannelError("secure link cipher requires nonce entropy")
        self._cipher = SymmetricCipher(key) if key is not None else None
        self._entropy = entropy if key is not None else None
        #: Serialises draws/advances so seal order equals write order.
        self._lock = threading.Lock()

    @property
    def secure(self) -> bool:
        return self._cipher is not None

    @property
    def nonce_draws(self) -> int | None:
        """Words consumed from the nonce stream (``None`` if insecure)."""
        if self._entropy is None:
            return None
        return self._entropy.draws

    def seal(self, plain: bytes) -> bytes:
        """Seal one serialized payload (pass-through when insecure)."""
        if self._cipher is None:
            return plain
        assert self._entropy is not None
        with self._lock:
            return self._cipher.seal(plain, self._entropy)

    def open(self, body: bytes) -> bytes:
        """Open one received frame body, then advance the nonce stream.

        Raises :class:`~repro.exceptions.IntegrityError` on tampering,
        in which case the stream does *not* advance (the frame will be
        replayed and must open at the same position).
        """
        if self._cipher is None:
            return body
        assert self._entropy is not None
        with self._lock:
            plain = self._cipher.open(body)
            self._entropy.next_words(self.NONCE_WORDS)
            return plain

    def advance(self, target: int) -> None:
        """Fast-forward the nonce stream to ``target`` drawn words.

        Restore path: a freshly derived stream is advanced to the
        checkpointed position so post-restore frames seal with exactly
        the nonces the uninterrupted run would have used.
        """
        if self._entropy is None:
            raise ChannelError("insecure link has no nonce stream to advance")
        with self._lock:
            behind = target - self._entropy.draws
            if behind < 0:
                raise ChannelError(
                    f"cannot rewind link nonce stream from "
                    f"{self._entropy.draws} to {target} draws"
                )
            if behind:
                self._entropy.next_words(behind)

    def seal_payload(self, payload: Any) -> bytes:
        """Serialize and seal a protocol payload in one step."""
        return self.seal(serialize(payload))


class LinkSecurity(Protocol):
    """What a socket transport needs from the session's key schedule.

    The network layer never imports :mod:`repro.core`; the party runner
    builds a provider from the session's master seed and label grammar
    and injects it here.  Determinism contract: for a given session
    spec, :meth:`dh_entropy` must return the exact DH entropy stream a
    single-process session would hand :func:`repro.crypto.keys.agree_pairwise`,
    and :meth:`link_cipher` must derive the channel cipher the simulator
    would build for the same pair -- those two properties are the whole
    reason socket transcripts are byte-identical to simulator ones.
    """

    def dh_entropy(self) -> ReseedablePRNG:
        """Entropy stream for the local party's DH private exponent."""
        ...

    def link_cipher(self, local: str, peer: str, shared: bytes) -> LinkCipher:
        """Build the link cipher for ``{local, peer}`` from a DH secret
        (a plaintext :class:`LinkCipher` when channels are insecure)."""
        ...
