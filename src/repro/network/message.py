"""Message envelope for the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Message:
    """One delivered protocol message.

    Attributes
    ----------
    sender, recipient:
        Party names.
    kind:
        Protocol-level message type, e.g. ``"masked_vector"`` or
        ``"comparison_matrix"``.  Receivers assert the kind they expect,
        turning out-of-order protocol execution into a loud failure.
    tag:
        Free-form accounting label (``"numeric/age"``); benchmarks group
        byte counts by tag.
    payload:
        The deserialized payload object.
    wire_bytes:
        Exact size this message occupied on the wire, including secure
        channel sealing overhead when applicable.
    sealed:
        Whether the channel encrypted the message in transit.
    crc:
        CRC-32 of the serialized payload, computed by the sending
        channel.  The reliable-delivery shim compares it against the
        frame's wire-side checksum on open, so in-flight corruption is
        detected (and recovered by retransmit) instead of misparsed.
    """

    sender: str
    recipient: str
    kind: str
    tag: str
    payload: Any = field(repr=False)
    wire_bytes: int
    sealed: bool
    crc: int = 0
