"""Real multi-process transport over asyncio TCP / unix-domain sockets.

:class:`SocketTransport` is the :class:`~repro.network.transport.Transport`
implementation a *party process* uses: each of the session's parties runs
in its own OS process, listens on its spec-assigned address, and speaks
the control protocol of :mod:`repro.network.handshake` to every peer over
a full mesh of stream connections (for each pair, the lexicographically
lower name dials the higher).

Determinism contract: everything protocol-visible -- payload bytes,
sealed wire bytes, per-lane delivery order -- is byte-identical to the
in-process :class:`~repro.network.simulator.Network` running the same
session spec.  The socket layer adds reliability *around* those bytes,
never inside them:

* per-connection sequence numbers plus a bounded replay outbox give
  exactly-once, in-order delivery across transient disconnects (the
  reconnect handshake tells the peer how much was delivered, and the
  sender replays exactly the unacked tail);
* a tampered frame fails authenticated open, which tears the connection
  down; the replayed original then opens at the unchanged nonce
  position (:class:`~repro.network.handshake.LinkCipher` only advances
  on success);
* heartbeats drive a per-peer liveness state machine
  (``connecting -> up -> suspect -> down -> reconnecting -> up | dead``);
  a peer that exhausts the reconnect budget or stays down past
  ``dead_after`` is declared ``dead``, at which point sends and blocked
  receives toward it raise :class:`~repro.exceptions.PartyCrashError`
  so the degraded scheduler can take over;
* a ``hello`` announcing a higher peer incarnation (the supervisor
  restarted that party from a checkpoint) voids the current era:
  blocked and subsequent operations raise
  :class:`~repro.exceptions.SessionResetError` until the party driver
  restores its own checkpoint and calls :meth:`SocketTransport.begin_era`.

Threading model: one asyncio event loop runs on a daemon thread and owns
every socket, all sealing/opening (so per-link cipher event order is the
loop's serialized event order, mirroring the simulator's per-channel
lock), and all peer state.  The party's protocol thread calls
:meth:`send` (bridged via ``run_coroutine_threadsafe``) and blocks in
:meth:`receive` on a condition variable the loop notifies.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import os
import threading
import zlib
from collections import deque
from typing import Any, Mapping

from repro.crypto.keys import DiffieHellman
from repro.exceptions import (
    ChannelError,
    LaneTimeoutError,
    PartyCrashError,
    ProtocolError,
    SessionResetError,
)
from repro.network import handshake as hs
from repro.network.handshake import LinkCipher, LinkSecurity
from repro.network.message import Message
from repro.network.retry import RetryPolicy
from repro.network.serialization import (
    FRAME_HEADER_LEN,
    decode_frame,
    deserialize,
    encode_frame,
    frame_body_length,
    serialize,
)
from repro.network.transport import Transport

#: Liveness states of one remote peer, as seen locally.
CONNECTING = "connecting"
UP = "up"
SUSPECT = "suspect"
DOWN = "down"
RECONNECTING = "reconnecting"
DEAD = "dead"

#: Missed-heartbeat multiple after which an ``up`` peer turns ``suspect``.
_SUSPECT_AFTER = 2.5

#: One sender-side transcript record: (era, recipient, kind, tag,
#: sha256 hex digest of the frame body as it crossed the wire).
TranscriptEntry = tuple[int, str, str, str, str]


def parse_address(address: str) -> tuple[str, str, int]:
    """Split a party address spec into ``(scheme, host_or_path, port)``.

    Accepted forms: ``"unix:/path/to.sock"`` and ``"tcp:host:port"``.
    """
    if address.startswith("unix:"):
        path = address[len("unix:") :]
        if not path:
            raise ChannelError(f"empty unix socket path in address {address!r}")
        return ("unix", path, 0)
    if address.startswith("tcp:"):
        host, sep, port_text = address[len("tcp:") :].rpartition(":")
        if not sep or not host or not port_text.isdigit():
            raise ChannelError(
                f"malformed tcp address {address!r}; expected 'tcp:host:port'"
            )
        return ("tcp", host, int(port_text))
    raise ChannelError(
        f"unsupported address {address!r}; expected 'unix:...' or 'tcp:host:port'"
    )


class _Peer:
    """Local view of one remote party (loop-thread state).

    All mutable fields are written on the event-loop thread; the fields
    the protocol thread reads (``status``, ``delivered``, counters) are
    additionally only written while holding the transport's condition.
    """

    def __init__(self, name: str, address: str, dial: bool) -> None:
        self.name = name
        self.address = address
        #: Whether the local party dials this peer (lower dials higher).
        self.dial = dial
        self.status = CONNECTING
        self.writer: asyncio.StreamWriter | None = None
        self.cipher: LinkCipher | None = None
        self.shared: bytes | None = None
        self.handshaken = False
        #: Next outbound data-frame sequence number (current era).
        self.next_seq = 0
        #: Count of inbound data frames delivered (current era).
        self.delivered = 0
        #: Count of outbound frames the peer acknowledged.
        self.acked = 0
        #: Replay buffer of unacked outbound frames: (seq, frame bytes).
        self.outbox: deque[tuple[int, bytes]] = deque()
        #: Data frames from a future era, held until :meth:`begin_era`.
        self.parked: list[hs.DataFrame] = []
        #: Peer's delivered-count from its last hello (in its hello era).
        self.remote_delivered = 0
        self.remote_delivered_era = 0
        self.last_inbound = 0.0
        self.down_since: float | None = None


class SocketTransport(Transport):
    """Per-process socket endpoint implementing the transport contract.

    Parameters
    ----------
    local:
        Name of the party this process runs.
    addresses:
        ``{party_name: address}`` for *every* session party (including
        the local one, whose address this endpoint listens on).
    security:
        The session's :class:`~repro.network.handshake.LinkSecurity`
        provider (DH entropy + link-cipher derivation).
    fingerprint:
        Digest of the shared session spec; handshakes reject peers
        launched from a different spec.
    incarnation:
        Supervisor-issued launch counter (1 on first launch; each
        restart increments it, which is what signals peers to reset).
    reconnect:
        Backoff/budget policy for dialing and re-dialing peers.
    receive_deadline:
        Wall-clock bound on one blocking :meth:`receive`; ``None``
        blocks until liveness declares the sender dead.
    """

    def __init__(
        self,
        local: str,
        addresses: Mapping[str, str],
        security: LinkSecurity,
        fingerprint: bytes,
        *,
        incarnation: int = 1,
        reconnect: RetryPolicy | None = None,
        receive_deadline: float | None = 60.0,
        heartbeat_interval: float = 0.2,
        dead_after: float = 15.0,
        outbox_limit: int = 4096,
    ) -> None:
        if local not in addresses:
            raise ChannelError(f"local party {local!r} missing from the address map")
        if len(addresses) < 2:
            raise ChannelError("a socket session needs at least two parties")
        if incarnation < 1:
            raise ChannelError(f"incarnation must be >= 1, got {incarnation}")
        if outbox_limit < 1:
            raise ChannelError(f"outbox_limit must be >= 1, got {outbox_limit}")
        for address in addresses.values():
            parse_address(address)
        self._local = local
        self._addresses = dict(addresses)
        self._security = security
        self._fingerprint = fingerprint
        # The default redial budget (~30 s) and ``dead_after`` must both
        # comfortably exceed a party-process restart -- interpreter
        # start plus numpy/scipy imports, several seconds on a loaded
        # machine.  Death declared while the supervisor is mid-respawn
        # is sticky and unrecoverable, so these margins are deliberately
        # generous; crash-detection tests tighten them explicitly.
        self._reconnect = reconnect if reconnect is not None else RetryPolicy(
            max_attempts=60, backoff_base=0.05, backoff_cap=0.5
        )
        self._receive_policy = RetryPolicy(max_attempts=1, deadline=receive_deadline)
        self._hb_interval = heartbeat_interval
        self._dead_after = dead_after
        self._outbox_limit = outbox_limit
        #: DH half built from session-deterministic entropy, so the
        #: public value (and every derived pairwise secret) is identical
        #: across restarts and to the single-process session's.
        self._dh = DiffieHellman(security.dh_entropy())
        self._peers: dict[str, _Peer] = {
            name: _Peer(name, addr, dial=name > local)
            for name, addr in self._addresses.items()
            if name != local
        }
        self._cond = threading.Condition()
        # guarded-by: self._cond
        self._inbox: list[tuple[int, Message]] = []
        # guarded-by: self._cond
        self._arrival = 0
        # guarded-by: self._cond
        self._incarnations: dict[str, int] = {name: 1 for name in self._addresses}
        self._incarnations[local] = incarnation
        # guarded-by: self._cond
        self._era = sum(self._incarnations.values())
        # guarded-by: self._cond
        self._pending_reset: tuple[str, int, int] | None = None
        # guarded-by: self._cond
        self._transcript: list[TranscriptEntry] = []
        # guarded-by: self._cond
        self._liveness_log: list[tuple[str, str, str]] = []
        # guarded-by: self._cond
        self._corrupt_next: set[str] = set()
        # A monotonic one-way latch, deliberately unguarded: written once
        # by close() and read racily by the loop's long-lived coroutines,
        # which only ever see it flip False -> True.
        self._closing = False
        self._server: asyncio.AbstractServer | None = None
        self._tasks: list[asyncio.Task[None]] = []
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name=f"transport-{local}",
            daemon=True,
        )
        self._thread.start()

    # -- lifecycle ---------------------------------------------------------

    def connect_all(self, timeout: float = 30.0) -> None:
        """Listen, dial every higher-named peer, and block until the
        handshake (hello + DH + cipher) completed with *every* peer."""
        self._call(self._start_async())
        gate = RetryPolicy(max_attempts=1, deadline=timeout)
        started = gate.start_clock()
        with self._cond:
            while True:
                missing = sorted(
                    name for name, p in self._peers.items() if not p.handshaken
                )
                if not missing:
                    return
                dead = sorted(
                    name for name, p in self._peers.items() if p.status == DEAD
                )
                if dead:
                    raise ChannelError(
                        f"cannot establish the session mesh: {dead} declared dead"
                    )
                if gate.expired(started):
                    raise ChannelError(
                        f"handshake with {missing} did not complete "
                        f"within {timeout} s"
                    )
                self._cond.wait(0.05)

    def close(self) -> None:
        """Tear down connections, the listener and the event loop."""
        if self._closing:
            return
        self._closing = True
        with contextlib.suppress(Exception):
            self._call(self._shutdown_async(), timeout=5.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._loop.is_running():
            self._loop.close()

    def _call(self, coro: Any, timeout: float | None = None) -> Any:
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    async def _start_async(self) -> None:
        scheme, host, port = parse_address(self._addresses[self._local])
        if scheme == "unix":
            with contextlib.suppress(FileNotFoundError):
                os.unlink(host)
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=host
            )
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, host=host, port=port
            )
        for name in sorted(self._peers):
            peer = self._peers[name]
            if peer.dial:
                self._tasks.append(self._loop.create_task(self._dial_loop(peer)))
        self._tasks.append(self._loop.create_task(self._heartbeat_loop()))

    async def _shutdown_async(self) -> None:
        for task in self._tasks:
            task.cancel()
        for name in sorted(self._peers):
            writer = self._peers[name].writer
            if writer is not None:
                writer.close()
        if self._server is not None:
            self._server.close()

    # -- dialing / accepting ----------------------------------------------

    async def _open_stream(
        self, address: str
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        scheme, host, port = parse_address(address)
        if scheme == "unix":
            return await asyncio.open_unix_connection(host)
        return await asyncio.open_connection(host, port)

    async def _dial_loop(self, peer: _Peer) -> None:
        attempt = 0
        while not self._closing:
            try:
                reader, writer = await self._open_stream(peer.address)
            except OSError:
                attempt += 1
                if attempt >= self._reconnect.max_attempts:
                    self._mark_dead(peer, "reconnect budget exhausted")
                    return
                with self._cond:
                    if peer.status == DEAD:
                        return
                    if peer.status not in (CONNECTING, RECONNECTING):
                        self._set_status_locked(peer, RECONNECTING)
                await asyncio.sleep(self._reconnect.backoff_delay(attempt))
                continue
            attempt = 0
            try:
                await self._send_control(writer, self._hello_payload())
                await self._send_control(
                    writer, hs.dh_frame(self._local, self._dh.public_value)
                )
                await self._attach(peer, reader, writer, inbound_hello=None)
            except (ChannelError, OSError, asyncio.IncompleteReadError):
                pass
            finally:
                self._detach(peer, writer)
            with self._cond:
                if peer.status == DEAD or self._closing:
                    return
                self._set_status_locked(peer, RECONNECTING)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer: _Peer | None = None
        try:
            frame = await self._read_frame(reader)
            if hs.frame_type(frame) != hs.HELLO:
                raise ChannelError("connection must open with a hello frame")
            hello = hs.parse_hello(frame)
            candidate = self._peers.get(hello.party)
            if candidate is None or candidate.dial:
                # Unknown party, or one *we* dial (lower name dials
                # higher; an inbound connection from it is bogus).
                raise ChannelError(
                    f"unexpected inbound connection claiming to be "
                    f"{hello.party!r}"
                )
            peer = candidate
            self._process_hello(peer, hello)
            await self._send_control(writer, self._hello_payload())
            await self._send_control(
                writer, hs.dh_frame(self._local, self._dh.public_value)
            )
            await self._attach(peer, reader, writer, inbound_hello=hello)
        except (ChannelError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            if peer is not None:
                self._detach(peer, writer)
                with self._cond:
                    if peer.status not in (DEAD,) and not self._closing:
                        self._set_status_locked(peer, DOWN)
            writer.close()

    def _hello_payload(self) -> dict[str, Any]:
        with self._cond:
            era = self._era
            incarnation = self._incarnations[self._local]
        return hs.hello_frame(
            self._local,
            incarnation,
            self._fingerprint,
            era,
            # Filled per peer at attach time; the generic value is only
            # used before a peer is identified (never happens: hellos go
            # to known peers), so report zero conservatively.
            0,
        )

    async def _attach(
        self,
        peer: _Peer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        inbound_hello: hs.Hello | None,
    ) -> None:
        """Run one established connection until it breaks."""
        if peer.writer is not None and peer.writer is not writer:
            # A stale previous connection; drop it in favour of this one.
            peer.writer.close()
        peer.writer = writer
        while True:
            frame = await self._read_frame(reader)
            kind = hs.frame_type(frame)
            now = self._loop.time()
            with self._cond:
                peer.last_inbound = now
                if peer.status == SUSPECT:
                    self._set_status_locked(peer, UP)
            if kind == hs.HELLO:
                self._process_hello(peer, hs.parse_hello(frame))
            elif kind == hs.DH:
                await self._process_dh(peer, hs.parse_dh(frame), writer)
            elif kind == hs.DATA:
                await self._process_data(peer, hs.parse_data(frame), writer)
            elif kind == hs.ACK:
                self._process_ack(peer, hs.parse_ack(frame))
            elif kind == hs.HEARTBEAT:
                hs.parse_heartbeat(frame)
            else:
                raise ChannelError(f"unknown frame type {kind!r} from {peer.name!r}")

    def _detach(self, peer: _Peer, writer: asyncio.StreamWriter) -> None:
        writer.close()
        if peer.writer is writer:
            peer.writer = None
            peer.handshaken = False
            peer.down_since = self._loop.time()
            with self._cond:
                if peer.status != DEAD and not self._closing:
                    self._set_status_locked(peer, DOWN)

    async def _read_frame(self, reader: asyncio.StreamReader) -> Any:
        header = await reader.readexactly(FRAME_HEADER_LEN)
        body = await reader.readexactly(frame_body_length(header))
        return decode_frame(header + body)

    async def _send_control(
        self, writer: asyncio.StreamWriter, frame: Mapping[str, Any]
    ) -> None:
        writer.write(encode_frame(dict(frame)))
        await writer.drain()

    # -- handshake processing ---------------------------------------------

    def _process_hello(self, peer: _Peer, hello: hs.Hello) -> None:
        if hello.party != peer.name:
            raise ChannelError(
                f"connection to {peer.name!r} answered as {hello.party!r}"
            )
        hs.check_fingerprint(self._fingerprint, hello)
        with self._cond:
            known = self._incarnations[peer.name]
            if hello.incarnation < known:
                raise ChannelError(
                    f"stale hello from {peer.name!r}: incarnation "
                    f"{hello.incarnation} < known {known}"
                )
            if hello.incarnation > known:
                # The peer was restarted from a checkpoint: void this
                # era.  The protocol thread surfaces the reset; the
                # driver restores and calls begin_era().
                self._incarnations[peer.name] = hello.incarnation
                self._era = sum(self._incarnations.values())
                self._pending_reset = (peer.name, hello.incarnation, self._era)
                peer.outbox.clear()
                peer.next_seq = 0
                peer.delivered = 0
                peer.acked = 0
                self._cond.notify_all()
            peer.remote_delivered = hello.delivered
            peer.remote_delivered_era = hello.era

    async def _process_dh(
        self, peer: _Peer, offer: hs.DhOffer, writer: asyncio.StreamWriter
    ) -> None:
        if offer.party != peer.name:
            raise ChannelError(
                f"DH frame on the {peer.name!r} connection names {offer.party!r}"
            )
        peer.shared = self._dh.shared_secret(offer.public)
        if peer.cipher is None:
            # First connection (or post-era rebuild happens in
            # begin_era): derive the link cipher.  On a transient
            # reconnect the existing cipher -- and crucially its nonce
            # position -- must survive, so never rebuild here.
            peer.cipher = self._security.link_cipher(
                self._local, peer.name, peer.shared
            )
        await self._replay(peer, writer)
        # Tell the peer how much of *its* stream we already delivered,
        # so its replay (on the connection it dialed or accepted) can
        # prune correctly even though our initial hello predated
        # knowing which peer connected.
        with self._cond:
            delivered = peer.delivered
            era = self._era
            incarnation = self._incarnations[self._local]
        await self._send_control(
            writer,
            hs.hello_frame(self._local, incarnation, self._fingerprint, era, delivered),
        )
        with self._cond:
            peer.handshaken = True
            if peer.status != DEAD:
                self._set_status_locked(peer, UP)
            self._cond.notify_all()

    async def _replay(self, peer: _Peer, writer: asyncio.StreamWriter) -> None:
        """Re-send the unacked outbound tail the peer reports missing."""
        with self._cond:
            if self._pending_reset is not None:
                return
            if peer.remote_delivered_era != self._era:
                return
            frames = [
                frame for seq, frame in peer.outbox if seq >= peer.remote_delivered
            ]
        for frame in frames:
            writer.write(frame)
        if frames:
            await writer.drain()

    # -- data path ---------------------------------------------------------

    async def _process_data(
        self, peer: _Peer, frame: hs.DataFrame, writer: asyncio.StreamWriter | None
    ) -> None:
        with self._cond:
            era = self._era
            expected = peer.delivered
        if frame.era < era:
            return  # stale era: the sender will reset and re-send
        if frame.era > era:
            peer.parked.append(frame)
            return
        if frame.seq < expected:
            return  # replayed duplicate; already delivered, never re-open
        if frame.seq > expected:
            raise ChannelError(
                f"connection from {peer.name!r} desynchronised: data frame "
                f"seq {frame.seq} arrived while {expected} was expected"
            )
        self._deliver(peer, frame)
        if writer is not None:
            with self._cond:
                delivered = peer.delivered
            await self._send_control(writer, hs.ack_frame(delivered, era))

    def _deliver(self, peer: _Peer, frame: hs.DataFrame) -> None:
        cipher = peer.cipher
        if cipher is None:
            raise ChannelError(
                f"data frame from {peer.name!r} before the link handshake finished"
            )
        # IntegrityError propagates: the connection loop treats the link
        # as broken, and the replayed frame re-opens at the *same* nonce
        # position (open-on-failure never advances).
        plain = cipher.open(frame.body)
        message = Message(
            sender=peer.name,
            recipient=self._local,
            kind=frame.kind,
            tag=frame.tag,
            payload=deserialize(plain),
            wire_bytes=len(frame.body),
            sealed=cipher.secure,
            crc=zlib.crc32(plain),
        )
        with self._cond:
            peer.delivered = frame.seq + 1
            self._inbox.append((self._arrival, message))
            self._arrival += 1
            self._cond.notify_all()

    def _process_ack(self, peer: _Peer, ack: hs.Ack) -> None:
        with self._cond:
            if ack.era != self._era:
                return
            peer.acked = max(peer.acked, ack.seq)
            while peer.outbox and peer.outbox[0][0] < peer.acked:
                peer.outbox.popleft()

    # -- liveness ----------------------------------------------------------

    async def _heartbeat_loop(self) -> None:
        while not self._closing:
            await asyncio.sleep(self._hb_interval)
            now = self._loop.time()
            with self._cond:
                era = self._era
            for name in sorted(self._peers):
                peer = self._peers[name]
                if peer.handshaken and peer.writer is not None:
                    with contextlib.suppress(Exception):
                        peer.writer.write(encode_frame(hs.heartbeat_frame(era)))
                with self._cond:
                    if (
                        peer.status == UP
                        and now - peer.last_inbound > _SUSPECT_AFTER * self._hb_interval
                    ):
                        self._set_status_locked(peer, SUSPECT)
                if (
                    peer.status in (DOWN, RECONNECTING)
                    and peer.down_since is not None
                    and now - peer.down_since > self._dead_after
                ):
                    self._mark_dead(peer, f"down for more than {self._dead_after} s")

    def _set_status_locked(self, peer: _Peer, status: str) -> None:
        """Record one liveness transition (caller holds ``self._cond``)."""
        if peer.status == status:
            return
        self._liveness_log.append((peer.name, peer.status, status))
        peer.status = status
        if status in (UP, DEAD):
            self._cond.notify_all()

    def _mark_dead(self, peer: _Peer, reason: str) -> None:
        with self._cond:
            if peer.status == DEAD:
                return
            self._set_status_locked(peer, DEAD)
            peer.outbox.clear()
            self._cond.notify_all()

    def liveness(self, peer: str) -> str:
        """Current liveness state of one peer."""
        if peer not in self._peers:
            raise ChannelError(f"unknown party {peer!r}")
        with self._cond:
            return self._peers[peer].status

    def liveness_log(self) -> list[tuple[str, str, str]]:
        """Every liveness transition so far: (peer, from, to)."""
        with self._cond:
            return list(self._liveness_log)

    # -- transport interface ----------------------------------------------

    @property
    def parties(self) -> frozenset[str]:
        return frozenset((self._local,))

    @property
    def local_party(self) -> str:
        return self._local

    @property
    def era(self) -> int:
        with self._cond:
            return self._era

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        tag: str = "",
    ) -> None:
        if sender != self._local:
            raise ChannelError(
                f"this endpoint sends as {self._local!r}, not {sender!r}"
            )
        if recipient not in self._peers:
            raise ChannelError(f"unknown party {recipient!r}")
        plain = serialize(payload)
        self._call(self._send_async(recipient, kind, tag, plain))

    async def _send_async(
        self, recipient: str, kind: str, tag: str, plain: bytes
    ) -> None:
        peer = self._peers[recipient]
        with self._cond:
            self._raise_reset_locked()
            if peer.status == DEAD:
                raise PartyCrashError(
                    recipient, f"party {recipient!r} is dead; cannot send {kind!r}"
                )
            era = self._era
        cipher = peer.cipher
        if cipher is None:
            raise ChannelError(
                f"link to {recipient!r} not established; call connect_all first"
            )
        body = cipher.seal(plain)
        with self._cond:
            if len(peer.outbox) >= self._outbox_limit:
                raise ChannelError(
                    f"outbox for {recipient!r} overflowed "
                    f"({self._outbox_limit} frames buffered while the link is down)"
                )
            seq = peer.next_seq
            peer.next_seq = seq + 1
            frame = encode_frame(hs.data_frame(seq, era, kind, tag, body))
            peer.outbox.append((seq, frame))
            self._transcript.append(
                (era, recipient, kind, tag, hashlib.sha256(body).hexdigest())
            )
            corrupt = recipient in self._corrupt_next
            self._corrupt_next.discard(recipient)
        if peer.writer is not None and peer.handshaken:
            out = frame
            if corrupt:
                # Deliberate tamper hook for tests: flip the final byte
                # (inside the MAC tag region, thanks to the frame layout).
                out = frame[:-1] + bytes([frame[-1] ^ 0xFF])
            peer.writer.write(out)
            with contextlib.suppress(OSError, ConnectionError):
                await peer.writer.drain()
        # else: the link is down; the frame waits in the outbox and the
        # reconnect replay delivers it.

    def _raise_reset_locked(self) -> None:
        if self._pending_reset is not None:
            trigger, incarnation, era = self._pending_reset
            raise SessionResetError(trigger, incarnation, era)

    def receive(
        self,
        recipient: str,
        kind: str | None = None,
        sender: str | None = None,
        tag: str | None = None,
    ) -> Message:
        if recipient != self._local:
            raise ChannelError(
                f"this endpoint receives as {self._local!r}, not {recipient!r}"
            )
        if tag is not None and (kind is None or sender is None):
            raise ChannelError("lane receive requires kind and sender alongside tag")
        if sender is not None and sender not in self._peers:
            raise ChannelError(f"unknown party {sender!r}")
        policy = self._receive_policy
        started = policy.start_clock()
        with self._cond:
            while True:
                self._raise_reset_locked()
                message = self._match_locked(kind, sender, tag)
                if message is not None:
                    return message
                if sender is not None and self._peers[sender].status == DEAD:
                    raise PartyCrashError(
                        sender,
                        f"party {sender!r} is dead; expected {kind!r} "
                        f"will never arrive",
                    )
                if policy.expired(started):
                    raise LaneTimeoutError(
                        sender if sender is not None else "*",
                        recipient,
                        kind if kind is not None else "*",
                        tag if tag is not None else "",
                        attempts=1,
                        reason="no frame arrived within the receive deadline",
                    )
                self._cond.wait(0.05)

    def _match_locked(
        self, kind: str | None, sender: str | None, tag: str | None
    ) -> Message | None:
        """Pop the matching inbox entry (caller holds ``self._cond``).

        Mirrors the simulator's semantics: a lane receive pops the first
        frame of exactly that ``(sender, kind, tag)`` lane; a tagless
        receive pops the arrival-order head (scoped to ``sender`` when
        given) and treats ``kind`` as an assertion.
        """
        for index, (_, message) in enumerate(self._inbox):
            if tag is not None:
                if (
                    message.sender == sender
                    and message.kind == kind
                    and message.tag == tag
                ):
                    return self._inbox.pop(index)[1]
                continue
            if sender is not None and message.sender != sender:
                continue
            if kind is not None and message.kind != kind:
                raise ProtocolError(
                    f"{self._local!r} expected kind {kind!r}, got "
                    f"{message.kind!r} from {message.sender!r}"
                )
            return self._inbox.pop(index)[1]
        return None

    def pending(self, recipient: str) -> int:
        if recipient != self._local:
            raise ChannelError(f"unknown party {recipient!r}")
        with self._cond:
            return len(self._inbox)

    def drain(self, recipient: str | None = None) -> int:
        if recipient is not None and recipient != self._local:
            raise ChannelError(f"unknown party {recipient!r}")
        with self._cond:
            dropped = len(self._inbox)
            self._inbox.clear()
            return dropped

    # -- era reset / checkpoint integration --------------------------------

    def begin_era(self, cipher_positions: Mapping[str, int] | None = None) -> None:
        """Enter the pending era after the driver restored its checkpoint.

        Clears the void era's queues, replay state and sequence
        numbers, rebuilds every link cipher from the stored DH secret,
        fast-forwards each to its checkpointed nonce position
        (``cipher_positions`` keyed ``"a|b"`` as in
        :meth:`repro.network.simulator.Network.channel_entropy_positions`),
        and finally processes any frames peers already sent in the new
        era.  Raises :class:`ChannelError` when no reset is pending.
        """
        positions = dict(cipher_positions) if cipher_positions is not None else {}
        self._call(self._begin_era_async(positions))

    async def _begin_era_async(self, positions: dict[str, int]) -> None:
        with self._cond:
            if self._pending_reset is None:
                raise ChannelError("no session reset is pending")
            self._pending_reset = None
            era = self._era
            self._inbox.clear()
            for name in sorted(self._peers):
                peer = self._peers[name]
                peer.next_seq = 0
                peer.delivered = 0
                peer.acked = 0
                peer.outbox.clear()
                if peer.shared is not None:
                    peer.cipher = self._security.link_cipher(
                        self._local, name, peer.shared
                    )
            self._cond.notify_all()
        self.advance_cipher_positions(positions)
        for name in sorted(self._peers):
            peer = self._peers[name]
            parked, peer.parked = peer.parked, []
            for frame in parked:
                if frame.era != era:
                    continue
                await self._process_data(peer, frame, peer.writer)

    def advance_cipher_positions(self, positions: Mapping[str, int]) -> None:
        """Fast-forward link nonce streams to checkpointed positions.

        The restore path for a restarted party (whose ciphers are fresh)
        and the tail of :meth:`begin_era` for survivors.  Labels are the
        sorted-pair ``"a|b"`` keys of
        :meth:`repro.network.simulator.Network.channel_entropy_positions`;
        labels for links this endpoint is not part of are ignored, so a
        whole session checkpoint can be applied as-is.
        """
        for label in sorted(positions):
            a, _, b = label.partition("|")
            if self._local not in (a, b):
                continue
            other = b if a == self._local else a
            peer = self._peers.get(other)
            if peer is None or peer.cipher is None:
                continue
            if peer.cipher.secure:
                peer.cipher.advance(int(positions[label]))

    def shared_secrets(self) -> dict[str, bytes]:
        """DH shared secret per peer, available once handshakes complete.

        The party driver derives the session's pairwise key schedule
        (:class:`repro.crypto.keys.PairwiseSecret`) from these -- they
        are byte-identical to what :func:`repro.crypto.keys.agree_pairwise`
        returns in a single-process session, because every party's DH
        half is built from the same session-deterministic entropy.
        """
        out: dict[str, bytes] = {}
        for name in sorted(self._peers):
            shared = self._peers[name].shared
            if shared is None:
                raise ChannelError(
                    f"handshake with {name!r} has not completed; "
                    f"call connect_all first"
                )
            out[name] = shared
        return out

    def cipher_positions(self) -> dict[str, int]:
        """Nonce-stream positions per secure link, keyed ``"a|b"``.

        The socket analogue of the simulator's
        :meth:`~repro.network.simulator.Network.channel_entropy_positions`,
        recorded into checkpoints.
        """
        positions: dict[str, int] = {}
        for name in sorted(self._peers):
            cipher = self._peers[name].cipher
            if cipher is None:
                continue
            draws = cipher.nonce_draws
            if draws is not None:
                a, b = sorted((self._local, name))
                positions[f"{a}|{b}"] = draws
        return positions

    # -- test / observability hooks ----------------------------------------

    def transcript(self, era: int | None = None) -> list[TranscriptEntry]:
        """Sender-side data-frame records, optionally filtered to one era."""
        with self._cond:
            entries = list(self._transcript)
        if era is None:
            return entries
        return [entry for entry in entries if entry[0] == era]

    def debug_corrupt_next(self, recipient: str) -> None:
        """Arm a one-shot tamper of the next data frame to ``recipient``."""
        if recipient not in self._peers:
            raise ChannelError(f"unknown party {recipient!r}")
        with self._cond:
            self._corrupt_next.add(recipient)

    def debug_drop_connection(self, recipient: str) -> None:
        """Force-close the connection to ``recipient`` (transient fault)."""
        if recipient not in self._peers:
            raise ChannelError(f"unknown party {recipient!r}")
        self._call(self._drop_async(recipient))

    async def _drop_async(self, recipient: str) -> None:
        writer = self._peers[recipient].writer
        if writer is not None:
            writer.close()
