"""Deterministic binary serialization for protocol payloads.

Communication-cost numbers in the benchmarks are *measured* off this
encoding, so it is designed to be an honest proxy for a real wire format:

* integers take ``O(bit_length)`` bytes (a masked 64-bit value costs ~9
  bytes; a 2048-bit Paillier ciphertext costs ~260 -- the gap the T-EDIT
  experiment quantifies),
* containers add small constant framing,
* numpy arrays ship raw buffers plus a dtype/shape header.

The format is self-describing (one tag byte per value) and round-trips
exactly; :func:`deserialize` rejects trailing garbage, which doubles as a
tamper check in tests.

Fast paths
----------
The protocols' O(n^2) payloads are flat lists of Python ints (masked
vectors, comparison-matrix rows), so integer *runs* get batched
implementations: :func:`_encode_int_run` assembles every record of a run
through fixed-width numpy views grouped by magnitude width, and
:func:`_decode_int_run` walks record boundaries once and batch-converts
the bodies the same way.  Both emit/consume the exact bytes of the
per-element :func:`_encode_int` path (the equivalence suite pins this),
and :func:`serialized_size` prices any payload without materializing a
buffer.  ``_FAST_PATHS`` exists so
:func:`repro.crypto.reference.scalar_transport` can replay the seed
transport for transcript-equality tests and benchmarks.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from repro.exceptions import ChannelError

_TAG_NONE = b"N"
_TAG_INT = b"I"
_TAG_FLOAT = b"F"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_TUPLE = b"T"
_TAG_DICT = b"D"
_TAG_ARRAY = b"A"
_TAG_BOOL = b"b"

_ALLOWED_DTYPES = {"uint8", "int8", "int32", "int64", "uint32", "uint64", "float32", "float64"}

#: Batched integer-run codec on/off switch.  Production always runs with
#: fast paths; the scalar-transport context manager flips this to replay
#: the seed's per-element encode/decode for equivalence testing.
_FAST_PATHS = True

#: Largest magnitude that the batched run codec handles in a ``uint64``
#: lane; rarer, wider values inside a run are spliced in per element.
_U64_MAX = (1 << 64) - 1


def _pack_length(value: int) -> bytes:
    return struct.pack(">I", value)


def _encode_int(value: int) -> bytes:
    """One integer's wire bytes: tag, sign byte, 4-byte length, magnitude."""
    sign = b"\x01" if value < 0 else b"\x00"
    magnitude = abs(value)
    body = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
    return _TAG_INT + sign + _pack_length(len(body)) + body


def _int_body_len(magnitude: int) -> int:
    """Bytes of an encoded int's magnitude body (minimum 1)."""
    return (magnitude.bit_length() + 7) // 8 or 1


def _encode_int_run(values: list[Any], out: list[bytes]) -> bool:
    """Append the concatenated :func:`_encode_int` bytes of an int run.

    Returns ``False`` (appending nothing) unless every element is a
    plain ``int`` -- the same predicate the per-element fast path used.
    Records are assembled in one preallocated ``uint8`` buffer: tag,
    sign and length lanes by fancy-indexed stores, magnitude bodies by
    width-grouped big-endian views; magnitudes beyond 64 bits (rare --
    only a masked value that overflowed its mask width) are encoded per
    element and spliced into their slots.
    """
    n = len(values)
    mags = np.empty(n, dtype=np.uint64)
    signs = np.zeros(n, dtype=np.uint8)
    wide: list[int] = []
    for i, value in enumerate(values):
        if type(value) is not int:
            return False
        if value < 0:
            signs[i] = 1
            value = -value
        if value > _U64_MAX:
            wide.append(i)
            mags[i] = 0
        else:
            mags[i] = value
    nbytes = np.ones(n, dtype=np.int64)
    for threshold in range(8, 64, 8):
        nbytes += mags >= np.uint64(1 << threshold)
    for i in wide:
        nbytes[i] = _int_body_len(abs(values[i]))
    record_len = nbytes + 6
    offsets = np.zeros(n, dtype=np.int64)
    np.cumsum(record_len[:-1], out=offsets[1:])
    buf = np.zeros(int(offsets[-1] + record_len[-1]), dtype=np.uint8)
    buf[offsets] = 0x49  # _TAG_INT
    buf[offsets + 1] = signs
    # Length field bytes 2..4 stay zero for the uint64 lanes (body <= 8
    # bytes); wide records are patched wholesale below.
    buf[offsets + 5] = nbytes.astype(np.uint8)
    big_endian = mags.astype(">u8").view(np.uint8).reshape(n, 8)
    narrow = np.ones(n, dtype=bool)
    narrow[wide] = False
    for width in np.unique(nbytes[narrow]) if n > len(wide) else ():
        width = int(width)
        idx = np.flatnonzero(narrow & (nbytes == width))
        positions = offsets[idx, None] + 6 + np.arange(width)
        buf[positions] = big_endian[idx, 8 - width :]
    for i in wide:
        record = _encode_int(values[i])
        start = int(offsets[i])
        buf[start : start + len(record)] = np.frombuffer(record, dtype=np.uint8)
    out.append(buf.tobytes())
    return True


def _encode(obj: Any, out: list[bytes]) -> None:
    if obj is None:
        out.append(_TAG_NONE)
    elif isinstance(obj, (bool, np.bool_)):
        out.append(_TAG_BOOL)
        out.append(b"\x01" if obj else b"\x00")
    elif isinstance(obj, int):
        out.append(_encode_int(obj))
    elif isinstance(obj, float):
        out.append(_TAG_FLOAT)
        out.append(struct.pack(">d", obj))
    elif isinstance(obj, str):
        body = obj.encode("utf-8")
        out.append(_TAG_STR)
        out.append(_pack_length(len(body)))
        out.append(body)
    elif isinstance(obj, bytes):
        out.append(_TAG_BYTES)
        out.append(_pack_length(len(obj)))
        out.append(obj)
    elif isinstance(obj, list):
        out.append(_TAG_LIST)
        out.append(_pack_length(len(obj)))
        # Fast path for the protocols' hot payloads (masked vectors and
        # comparison-matrix rows are flat lists of Python ints); emits
        # byte-identical output to the generic recursion.  The non-batched
        # branch keeps the seed's per-element join so the scalar-transport
        # baseline is the honest seed implementation, not a strawman.
        if _FAST_PATHS and obj and _encode_int_run(obj, out):
            pass
        elif obj and all(type(item) is int for item in obj):
            out.append(b"".join(map(_encode_int, obj)))
        else:
            for item in obj:
                _encode(item, out)
    elif isinstance(obj, tuple):
        out.append(_TAG_TUPLE)
        out.append(_pack_length(len(obj)))
        for item in obj:
            _encode(item, out)
    elif isinstance(obj, dict):
        out.append(_TAG_DICT)
        out.append(_pack_length(len(obj)))
        for key in obj:  # insertion order: deterministic for a given dict
            if not isinstance(key, str):
                raise ChannelError(f"dict keys must be str, got {type(key).__name__}")
            _encode(key, out)
            _encode(obj[key], out)
    elif isinstance(obj, np.ndarray):
        dtype_name = obj.dtype.name
        if dtype_name not in _ALLOWED_DTYPES:
            raise ChannelError(f"unsupported array dtype {dtype_name!r}")
        contiguous = np.ascontiguousarray(obj)
        out.append(_TAG_ARRAY)
        _encode(dtype_name, out)
        _encode(tuple(int(d) for d in contiguous.shape), out)
        raw = contiguous.tobytes()
        out.append(_pack_length(len(raw)))
        out.append(raw)
    elif isinstance(obj, (np.integer,)):
        _encode(int(obj), out)
    elif isinstance(obj, (np.floating,)):
        _encode(float(obj), out)
    else:
        raise ChannelError(f"cannot serialize value of type {type(obj).__name__}")


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise ChannelError(
                f"truncated message: needed {count} byte(s) at offset "
                f"{self._pos} but only {len(self._data) - self._pos} of "
                f"{len(self._data)} remain"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def length(self) -> int:
        return int(struct.unpack(">I", self.take(4))[0])

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)


#: Minimum run of same-width records worth a vectorized chunk; below it
#: the numpy call overhead loses to the scalar record walk.
_VECTOR_RUN_MIN = 32

#: Maximum records validated per speculative chunk.  Headers past the
#: first width change are validated but not consumed, so an uncapped
#: chunk would re-validate the whole remaining run after every break --
#: O(n^2 / run_length) on long payloads.  256 sits near the expected
#: run length of 64-bit masked values (a narrower record every ~256),
#: bounding wasted validation to about one chunk per break.
_VECTOR_CHUNK_MAX = 256


def _decode_int_run(reader: _Reader, count: int) -> list[Any]:
    """Decode up to ``count`` consecutive ``I`` records from the reader.

    The hot payloads encode near-uniform record widths (a 64-bit-masked
    value is 8 body bytes with probability 255/256), so the decoder
    speculates that the records ahead share the width of the current
    one: it validates a whole strided chunk of headers with five array
    comparisons and batch-converts the bodies through one big-endian
    view, re-anchoring at the first mismatch.  Runs that keep breaking
    the speculation fall back to the scalar walk, so heterogeneous lists
    never pay the numpy overhead per record.  Every record body is
    validated against the buffer end -- a declared count with a
    truncated tail raises ``ChannelError("truncated message")`` instead
    of misparsing -- and decoding stops at the first non-``I`` record,
    leaving the remainder to the generic decoder, exactly like the
    scalar path.
    """
    data = reader._data
    pos = reader._pos
    end = len(data)
    u8: np.ndarray | None = None
    items: list[Any] = []
    # Decaying mean of records consumed per chunk; heterogeneous-width
    # payloads drive it down and hand the remainder to the tight scalar
    # walk, so they never pay numpy overhead per record.
    chunk_yield = float(_VECTOR_CHUNK_MAX)
    header_cols = np.array([0, 2, 3, 4, 5])
    while len(items) < count and pos + 6 <= end and data[pos] == 0x49:  # b"I"
        if data[pos + 2] == 0 and data[pos + 3] == 0 and data[pos + 4] == 0:
            width = data[pos + 5]
        else:
            width = int.from_bytes(data[pos + 2 : pos + 6], "big")
        body_end = pos + 6 + width
        if body_end > end:
            raise ChannelError(
                f"truncated message: integer record at offset {pos} declares "
                f"a {width}-byte body ending at {body_end} but the buffer "
                f"holds only {end} byte(s)"
            )
        stride = 6 + width
        possible = min(count - len(items), (end - pos) // stride, _VECTOR_CHUNK_MAX)
        if width <= 8 and possible >= _VECTOR_RUN_MIN:
            if u8 is None:
                u8 = np.frombuffer(data, dtype=np.uint8)
            block = u8[pos : pos + stride * possible].reshape(possible, stride)
            # One gathered comparison validates tag and length of every
            # speculated header (bytes 0 and 2..5; byte 1 is the sign).
            headers_ok = (
                block[:, header_cols]
                == np.array([0x49, 0, 0, 0, width], dtype=np.uint8)
            ).all(axis=1)
            if headers_ok.all():
                good = possible
            else:
                # The record at ``pos`` is already validated, so the
                # chunk always advances by at least one record.
                good = max(int(np.argmin(headers_ok)), 1)
            lanes = np.zeros((good, 8), dtype=np.uint8)
            lanes[:, 8 - width :] = block[:good, 6:]
            chunk = lanes.view(">u8")[:, 0].tolist()
            for i in np.flatnonzero(block[:good, 1] == 1).tolist():
                chunk[i] = -chunk[i]
            items.extend(chunk)
            pos += stride * good
            chunk_yield = 0.75 * chunk_yield + 0.25 * good
            if chunk_yield < _VECTOR_RUN_MIN / 2:
                reader._pos = pos
                items.extend(_decode_int_run_scalar(reader, count - len(items)))
                return items
        else:
            value = int.from_bytes(data[pos + 6 : body_end], "big")
            items.append(-value if data[pos + 1] == 1 else value)
            pos = body_end
    reader._pos = pos
    return items


def _decode_int_run_scalar(reader: _Reader, count: int) -> list[Any]:
    """The seed's per-element integer-run loop (scalar-transport mode)."""
    data = reader._data
    pos = reader._pos
    end = len(data)
    items: list[Any] = []
    while len(items) < count and pos + 6 <= end and data[pos] == 0x49:  # b"I"
        body_len = int.from_bytes(data[pos + 2 : pos + 6], "big")
        body_end = pos + 6 + body_len
        if body_end > end:
            raise ChannelError(
                f"truncated message: integer record at offset {pos} declares "
                f"a {body_len}-byte body ending at {body_end} but the buffer "
                f"holds only {end} byte(s)"
            )
        value = int.from_bytes(data[pos + 6 : body_end], "big")
        items.append(-value if data[pos + 1] == 1 else value)
        pos = body_end
    reader._pos = pos
    return items


def _decode(reader: _Reader) -> Any:
    tag = reader.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BOOL:
        return reader.take(1) == b"\x01"
    if tag == _TAG_INT:
        negative = reader.take(1) == b"\x01"
        body = reader.take(reader.length())
        value = int.from_bytes(body, "big")
        return -value if negative else value
    if tag == _TAG_FLOAT:
        return float(struct.unpack(">d", reader.take(8))[0])
    if tag == _TAG_STR:
        return reader.take(reader.length()).decode("utf-8")
    if tag == _TAG_BYTES:
        return reader.take(reader.length())
    if tag == _TAG_LIST:
        count = reader.length()
        # Fast path mirroring the encoder's: a run of plain integers is
        # parsed with batched slicing instead of per-element recursion.
        # The scalar branch is the seed's in-place loop, kept as the
        # honest baseline for the scalar-transport replay.
        if _FAST_PATHS:
            items = _decode_int_run(reader, count)
        else:
            items = _decode_int_run_scalar(reader, count)
        items.extend(_decode(reader) for _ in range(count - len(items)))
        return items
    if tag == _TAG_TUPLE:
        return tuple(_decode(reader) for _ in range(reader.length()))
    if tag == _TAG_DICT:
        count = reader.length()
        result = {}
        for _ in range(count):
            key = _decode(reader)
            result[key] = _decode(reader)
        return result
    if tag == _TAG_ARRAY:
        dtype_name = _decode(reader)
        shape = _decode(reader)
        raw = reader.take(reader.length())
        return np.frombuffer(raw, dtype=np.dtype(dtype_name)).reshape(shape).copy()
    raise ChannelError(f"unknown serialization tag {tag!r}")


def serialize(obj: Any) -> bytes:
    """Encode a payload into deterministic bytes."""
    out: list[bytes] = []
    _encode(obj, out)
    return b"".join(out)


def deserialize(data: bytes) -> Any:
    """Inverse of :func:`serialize`; rejects trailing bytes."""
    reader = _Reader(data)
    value = _decode(reader)
    if not reader.exhausted:
        raise ChannelError("trailing bytes after payload")
    return value


#: Length-prefix header size of a socket frame (big-endian u32).
FRAME_HEADER_LEN = 4

#: Upper bound on one frame's body.  A real session's largest payload is
#: a full comparison matrix (megabytes at most); a header past this cap
#: means the stream desynchronised or a peer is garbage, and the
#: connection should be torn down instead of allocating gigabytes.
MAX_FRAME_BODY = 1 << 30


def encode_frame(obj: Any) -> bytes:
    """One socket frame: 4-byte big-endian length prefix + payload bytes.

    This is the unit the socket transports write to a connection; the
    payload is the deterministic :func:`serialize` encoding, so framing
    adds exactly :data:`FRAME_HEADER_LEN` bytes and nothing else.
    """
    body = serialize(obj)
    if len(body) > MAX_FRAME_BODY:
        raise ChannelError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BODY}-byte cap"
        )
    return _pack_length(len(body)) + body


def frame_body_length(header: bytes) -> int:
    """Decode a frame's length prefix into its body byte count.

    Socket readers call this on exactly :data:`FRAME_HEADER_LEN` bytes;
    a short header (peer died mid-frame) or an implausible length (the
    stream desynchronised) raises :class:`ChannelError` so the transport
    treats the connection as broken rather than misparsing.
    """
    if len(header) != FRAME_HEADER_LEN:
        raise ChannelError(
            f"frame header must be {FRAME_HEADER_LEN} byte(s), "
            f"got {len(header)}"
        )
    length = int(struct.unpack(">I", header)[0])
    if length > MAX_FRAME_BODY:
        raise ChannelError(
            f"frame header declares a {length}-byte body, beyond the "
            f"{MAX_FRAME_BODY}-byte cap; stream is desynchronised"
        )
    return length


def decode_frame(data: bytes) -> Any:
    """Inverse of :func:`encode_frame` for a complete buffered frame."""
    body_len = frame_body_length(data[:FRAME_HEADER_LEN])
    body = data[FRAME_HEADER_LEN:]
    if len(body) != body_len:
        raise ChannelError(
            f"frame declares a {body_len}-byte body but carries {len(body)}"
        )
    return deserialize(body)


def serialized_size(obj: Any) -> int:
    """Wire size of a payload in bytes (what cost accounting charges).

    Computed structurally, without materializing the buffer -- cost
    probes over O(n^2) payloads pay for arithmetic, not allocation.
    Always equals ``len(serialize(obj))`` (property-tested), including
    the :class:`ChannelError` cases.
    """
    if obj is None:
        return 1
    if isinstance(obj, (bool, np.bool_)):
        return 2
    if isinstance(obj, int):
        return 6 + _int_body_len(abs(obj))
    if isinstance(obj, float):
        return 9
    if isinstance(obj, str):
        return 5 + len(obj.encode("utf-8"))
    if isinstance(obj, bytes):
        return 5 + len(obj)
    if isinstance(obj, list):
        if obj and all(type(item) is int for item in obj):
            return 5 + 6 * len(obj) + sum(_int_body_len(abs(v)) for v in obj)
        return 5 + sum(serialized_size(item) for item in obj)
    if isinstance(obj, tuple):
        return 5 + sum(serialized_size(item) for item in obj)
    if isinstance(obj, dict):
        total = 5
        for key in obj:
            if not isinstance(key, str):
                raise ChannelError(f"dict keys must be str, got {type(key).__name__}")
            total += serialized_size(key) + serialized_size(obj[key])
        return total
    if isinstance(obj, np.ndarray):
        if obj.dtype.name not in _ALLOWED_DTYPES:
            raise ChannelError(f"unsupported array dtype {obj.dtype.name!r}")
        shape = tuple(int(d) for d in obj.shape)
        return (
            1
            + serialized_size(obj.dtype.name)
            + serialized_size(shape)
            + 4
            + obj.size * obj.itemsize
        )
    if isinstance(obj, np.integer):
        return serialized_size(int(obj))
    if isinstance(obj, np.floating):
        return 9
    raise ChannelError(f"cannot serialize value of type {type(obj).__name__}")
