"""Deterministic binary serialization for protocol payloads.

Communication-cost numbers in the benchmarks are *measured* off this
encoding, so it is designed to be an honest proxy for a real wire format:

* integers take ``O(bit_length)`` bytes (a masked 64-bit value costs ~9
  bytes; a 2048-bit Paillier ciphertext costs ~260 -- the gap the T-EDIT
  experiment quantifies),
* containers add small constant framing,
* numpy arrays ship raw buffers plus a dtype/shape header.

The format is self-describing (one tag byte per value) and round-trips
exactly; :func:`deserialize` rejects trailing garbage, which doubles as a
tamper check in tests.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from repro.exceptions import ChannelError

_TAG_NONE = b"N"
_TAG_INT = b"I"
_TAG_FLOAT = b"F"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_TUPLE = b"T"
_TAG_DICT = b"D"
_TAG_ARRAY = b"A"
_TAG_BOOL = b"b"

_ALLOWED_DTYPES = {"uint8", "int8", "int32", "int64", "uint32", "uint64", "float32", "float64"}


def _pack_length(value: int) -> bytes:
    return struct.pack(">I", value)


def _encode_int(value: int) -> bytes:
    """One integer's wire bytes: tag, sign byte, 4-byte length, magnitude."""
    sign = b"\x01" if value < 0 else b"\x00"
    magnitude = abs(value)
    body = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
    return _TAG_INT + sign + _pack_length(len(body)) + body


def _encode(obj: Any, out: list[bytes]) -> None:
    if obj is None:
        out.append(_TAG_NONE)
    elif isinstance(obj, bool):
        out.append(_TAG_BOOL)
        out.append(b"\x01" if obj else b"\x00")
    elif isinstance(obj, int):
        out.append(_encode_int(obj))
    elif isinstance(obj, float):
        out.append(_TAG_FLOAT)
        out.append(struct.pack(">d", obj))
    elif isinstance(obj, str):
        body = obj.encode("utf-8")
        out.append(_TAG_STR)
        out.append(_pack_length(len(body)))
        out.append(body)
    elif isinstance(obj, bytes):
        out.append(_TAG_BYTES)
        out.append(_pack_length(len(obj)))
        out.append(obj)
    elif isinstance(obj, list):
        out.append(_TAG_LIST)
        out.append(_pack_length(len(obj)))
        # Fast path for the protocols' hot payloads (masked vectors and
        # comparison-matrix rows are flat lists of Python ints); emits
        # byte-identical output to the generic recursion.
        if obj and all(type(item) is int for item in obj):
            out.append(b"".join(map(_encode_int, obj)))
        else:
            for item in obj:
                _encode(item, out)
    elif isinstance(obj, tuple):
        out.append(_TAG_TUPLE)
        out.append(_pack_length(len(obj)))
        for item in obj:
            _encode(item, out)
    elif isinstance(obj, dict):
        out.append(_TAG_DICT)
        out.append(_pack_length(len(obj)))
        for key in obj:  # insertion order: deterministic for a given dict
            if not isinstance(key, str):
                raise ChannelError(f"dict keys must be str, got {type(key).__name__}")
            _encode(key, out)
            _encode(obj[key], out)
    elif isinstance(obj, np.ndarray):
        dtype_name = obj.dtype.name
        if dtype_name not in _ALLOWED_DTYPES:
            raise ChannelError(f"unsupported array dtype {dtype_name!r}")
        contiguous = np.ascontiguousarray(obj)
        out.append(_TAG_ARRAY)
        _encode(dtype_name, out)
        _encode(tuple(int(d) for d in contiguous.shape), out)
        raw = contiguous.tobytes()
        out.append(_pack_length(len(raw)))
        out.append(raw)
    elif isinstance(obj, (np.integer,)):
        _encode(int(obj), out)
    elif isinstance(obj, (np.floating,)):
        _encode(float(obj), out)
    else:
        raise ChannelError(f"cannot serialize value of type {type(obj).__name__}")


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise ChannelError("truncated message")
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def length(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)


def _decode(reader: _Reader) -> Any:
    tag = reader.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BOOL:
        return reader.take(1) == b"\x01"
    if tag == _TAG_INT:
        negative = reader.take(1) == b"\x01"
        body = reader.take(reader.length())
        value = int.from_bytes(body, "big")
        return -value if negative else value
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", reader.take(8))[0]
    if tag == _TAG_STR:
        return reader.take(reader.length()).decode("utf-8")
    if tag == _TAG_BYTES:
        return reader.take(reader.length())
    if tag == _TAG_LIST:
        count = reader.length()
        # Fast path mirroring the encoder's: a run of plain integers is
        # parsed with local slicing instead of per-element recursion.
        data = reader._data
        pos = reader._pos
        end = len(data)
        items: list[Any] = []
        while len(items) < count and pos + 6 <= end and data[pos] == 0x49:  # b"I"
            body_len = int.from_bytes(data[pos + 2 : pos + 6], "big")
            body_end = pos + 6 + body_len
            if body_end > end:
                raise ChannelError("truncated message")
            value = int.from_bytes(data[pos + 6 : body_end], "big")
            items.append(-value if data[pos + 1] == 1 else value)
            pos = body_end
        reader._pos = pos
        items.extend(_decode(reader) for _ in range(count - len(items)))
        return items
    if tag == _TAG_TUPLE:
        return tuple(_decode(reader) for _ in range(reader.length()))
    if tag == _TAG_DICT:
        count = reader.length()
        result = {}
        for _ in range(count):
            key = _decode(reader)
            result[key] = _decode(reader)
        return result
    if tag == _TAG_ARRAY:
        dtype_name = _decode(reader)
        shape = _decode(reader)
        raw = reader.take(reader.length())
        return np.frombuffer(raw, dtype=np.dtype(dtype_name)).reshape(shape).copy()
    raise ChannelError(f"unknown serialization tag {tag!r}")


def serialize(obj: Any) -> bytes:
    """Encode a payload into deterministic bytes."""
    out: list[bytes] = []
    _encode(obj, out)
    return b"".join(out)


def deserialize(data: bytes) -> Any:
    """Inverse of :func:`serialize`; rejects trailing bytes."""
    reader = _Reader(data)
    value = _decode(reader)
    if not reader.exhausted:
        raise ChannelError("trailing bytes after payload")
    return value


def serialized_size(obj: Any) -> int:
    """Wire size of a payload in bytes (what cost accounting charges)."""
    return len(serialize(obj))
