"""``python -m repro`` -- a 30-second guided demo of the full pipeline.

Runs the paper's motivating scenario (multi-institution DNA clustering)
end to end, printing the published result, the accuracy check against a
trusted aggregator, and the measured communication costs.
"""

from __future__ import annotations

import numpy as np

from repro import ClusteringSession, SessionConfig
from repro.baselines.centralized import centralized_pipeline
from repro.clustering.quality import adjusted_rand_index
from repro.data.datasets import bird_flu


def main() -> None:
    print(__doc__)
    dataset = bird_flu(num_institutions=3, per_cluster=6, num_strains=3, seed=1)
    print("Scenario: 3 institutions, 18 private DNA sequences, 3 strains.\n")

    session = ClusteringSession(
        SessionConfig(num_clusters=3, linkage="average", master_seed=1),
        dataset.partitions,
    )
    result = session.run()

    print("Published result (membership lists only, paper Figure 13):")
    print(result.format_figure13())
    print()

    central, _, central_labels, index = centralized_pipeline(
        dataset.partitions, num_clusters=3
    )
    private = session.final_matrix()
    max_diff = float(np.abs(private.condensed - central.condensed).max())
    ari = adjusted_rand_index(
        central_labels, result.labels_for(list(index.refs()))
    )
    print("Zero-accuracy-loss check against a trusted aggregator:")
    print(f"  max |private - centralized| matrix entry: {max_diff}")
    print(f"  clustering agreement (ARI):               {ari}")
    print()

    print("Measured communication (real serialized bytes, sealed channels):")
    for site in dataset.index.sites:
        print(f"  institution {site} sent {session.network.bytes_sent_by(site):>8,} bytes")
    print(f"  third party sent   {session.network.bytes_sent_by('TP'):>8,} bytes")
    print(f"  total              {session.total_bytes():>8,} bytes")
    print()
    print("Next steps: examples/ for scenarios, EXPERIMENTS.md for the")
    print("paper-vs-measured record, benchmarks/ to regenerate it.")


if __name__ == "__main__":
    main()
