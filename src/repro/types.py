"""Shared type definitions used across the library.

The paper (Section 2.1) distinguishes three attribute domains -- numeric,
alphanumeric and categorical -- each with its own comparison function and
privacy-preserving comparison protocol.  :class:`AttributeType` is the
single source of truth for that distinction; every schema, protocol and
dissimilarity-construction routine dispatches on it.
"""

from __future__ import annotations

import enum
from typing import Union

#: A single cell of a data matrix.  Numeric attributes are ``int`` or
#: ``float``; alphanumeric and categorical attributes are ``str``.
CellValue = Union[int, float, str]

#: Identifier of an object *within* a site: plain row index.
LocalId = int

#: Identifier of a data-holder site.
SiteId = str


class AttributeType(enum.Enum):
    """Domain of a data-matrix column (paper Section 2.1).

    Each member knows which Python types are acceptable for its cells and
    which privacy-preserving comparison protocol applies:

    * :attr:`NUMERIC` -- distance is ``abs(x - y)`` (Section 4.1),
    * :attr:`ALPHANUMERIC` -- distance is the edit distance computed from a
      character comparison matrix (Section 4.2),
    * :attr:`CATEGORICAL` -- 0/1 equality distance via deterministic
      encryption (Section 4.3).
    """

    NUMERIC = "numeric"
    ALPHANUMERIC = "alphanumeric"
    CATEGORICAL = "categorical"

    def accepts(self, value: CellValue) -> bool:
        """Return ``True`` when ``value`` belongs to this attribute domain.

        Booleans are rejected for numeric columns even though ``bool`` is a
        subclass of ``int``: treating flags as numbers is almost always a
        schema mistake and would silently skew distances.
        """
        if self is AttributeType.NUMERIC:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, str)

    @property
    def is_string_valued(self) -> bool:
        """Whether cells of this type are strings."""
        return self is not AttributeType.NUMERIC


class LinkageMethod(enum.Enum):
    """Agglomerative linkage strategies supported by :mod:`repro.clustering`.

    All are expressed through Lance-Williams update coefficients, so any of
    them can consume the dissimilarity matrix the third party constructs.
    """

    SINGLE = "single"
    COMPLETE = "complete"
    AVERAGE = "average"
    WEIGHTED = "weighted"
    WARD = "ward"


class ProtocolRole(enum.Enum):
    """Role a party plays inside one pairwise comparison protocol run.

    The paper names the two data holders ``DHJ`` (initiator, masks its
    inputs) and ``DHK`` (responder, builds the pairwise comparison matrix)
    and the third party ``TP`` (unmasks and assembles distances).
    """

    INITIATOR = "DHJ"
    RESPONDER = "DHK"
    THIRD_PARTY = "TP"
