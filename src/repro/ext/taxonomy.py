"""Hierarchical categorical attributes (the second half of §4.3's
future work) -- third-party assembly.

The :class:`~repro.data.taxonomy.Taxonomy` structure itself (tree, path
metric, holder-side encryption) lives in :mod:`repro.data.taxonomy` so
schemas can embed it; this module re-exports it and adds the TP-side
global matrix builder, mirroring
:func:`repro.core.categorical.third_party_categorical_matrix`.

The privacy-preserving construction generalises Section 4.3's scheme
directly: instead of one deterministic ciphertext per value, each holder
ships the ciphertexts of every prefix of the value's root path.  The
third party counts coinciding leading ciphertexts -- that count *is* the
LCA depth -- and evaluates the path metric without learning any label.
Per-holder communication stays ``O(n * depth)``.  Leakage mirrors the
flat scheme's: the TP learns pairwise LCA depths, exactly the
information carried by the distances it must output anyway.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.data.partition import GlobalIndex
from repro.data.taxonomy import Taxonomy
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ProtocolError

__all__ = ["Taxonomy", "third_party_taxonomy_matrix"]


def third_party_taxonomy_matrix(
    encrypted_columns: Mapping[str, Sequence[Sequence[bytes]]],
    index: GlobalIndex,
) -> DissimilarityMatrix:
    """TP step: global taxonomy-distance matrix from ciphertext paths.

    Columns are merged in canonical site order and Figure 12's loop runs
    over ciphertext path lists.
    """
    if set(encrypted_columns) != set(index.sites):
        raise ProtocolError(
            f"columns from sites {sorted(encrypted_columns)} do not match "
            f"index sites {list(index.sites)}"
        )
    merged: list[Sequence[bytes]] = []
    for site in index.sites:
        column = list(encrypted_columns[site])
        if len(column) != index.size_of(site):
            raise ProtocolError(
                f"site {site!r} sent {len(column)} paths, "
                f"index expects {index.size_of(site)}"
            )
        merged.extend(column)
    return DissimilarityMatrix.from_pairwise(
        len(merged),
        lambda i, j: Taxonomy.distance_from_ciphertext_paths(merged[i], merged[j]),
    )
