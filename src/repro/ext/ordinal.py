"""Ordered categorical attributes (the first half of §4.3's future work).

An ordered categorical domain ("basic" < "plus" < "premium") has a
natural metric: the rank difference, optionally normalised by the rank
span.  The key observation making this *free* under the paper's
framework: rank-encode the column and the values become plain integers,
so the **numeric protocol of Section 4.1 applies unchanged** -- masks,
batching, frequency-attack trade-offs and all.  No new protocol, no new
security argument.

:class:`OrdinalScale` owns the category order, the distance definition
and the schema/encoding helpers that plug an ordinal column into an
existing session.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.data.matrix import AttributeSpec
from repro.exceptions import SchemaError
from repro.types import AttributeType


class OrdinalScale:
    """An ordered categorical domain with a rank metric.

    Parameters
    ----------
    categories:
        Categories in ascending order; must be unique and non-empty.
    normalized:
        When ``True`` (default) the cleartext reference metric is scaled
        into [0, 1] by the rank span.  The protocol carries raw ranks
        either way -- the final matrix normalisation (Figure 11)
        performs exactly this scaling, which is why rank encoding
        composes with the paper pipeline with zero accuracy loss.
    """

    def __init__(self, categories: Iterable[str], normalized: bool = True) -> None:
        self.categories = tuple(categories)
        self.normalized = normalized
        if not self.categories:
            raise SchemaError("ordinal scale needs at least one category")
        if len(set(self.categories)) != len(self.categories):
            raise SchemaError("ordinal categories must be unique")
        self._ranks = {c: i for i, c in enumerate(self.categories)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrdinalScale({'<'.join(self.categories)})"

    @property
    def span(self) -> int:
        """Largest possible rank difference."""
        return max(1, len(self.categories) - 1)

    def rank(self, value: str) -> int:
        """Rank of a category (0-based)."""
        try:
            return self._ranks[value]
        except KeyError:
            raise SchemaError(
                f"value {value!r} not in ordinal scale {self.categories}"
            ) from None

    def distance(self, a: str, b: str) -> float:
        """Cleartext reference metric: |rank(a) - rank(b)| (scaled)."""
        raw = abs(self.rank(a) - self.rank(b))
        if self.normalized:
            return raw / self.span
        return float(raw)

    # -- session integration -------------------------------------------------

    def encode_column(self, values: Sequence[str]) -> list[int]:
        """Column of categories -> column of ranks (numeric-protocol input)."""
        return [self.rank(v) for v in values]

    def attribute_spec(self, name: str) -> AttributeSpec:
        """The numeric schema entry carrying this scale's ranks.

        Ranks are exact integers, so ``precision=0``.
        """
        return AttributeSpec(name, AttributeType.NUMERIC, precision=0)

    def decode_rank(self, rank: int) -> str:
        """Inverse of :meth:`rank` (for holders displaying results)."""
        if not 0 <= rank < len(self.categories):
            raise SchemaError(f"rank {rank} out of range for {self.categories}")
        return self.categories[rank]
