"""Extensions beyond the paper's published scope.

Section 4.3: "This distance function is not adequate to measure the
dissimilarity between ordered or hierarchical categorical attributes.
Such categorical data requires more complex distance functions which are
left as future work."  This package is that future work:

* :mod:`repro.ext.ordinal` -- ordered categorical attributes via rank
  encoding, privacy-preserved by the *unchanged* numeric protocol,
* :mod:`repro.ext.taxonomy` -- hierarchical categorical attributes via
  per-prefix deterministic encryption, a strict generalisation of the
  Section 4.3 equality scheme (cost stays O(n * depth) per holder).

Everything here composes with the existing session machinery: ordinals
become numeric columns before partitioning; taxonomies get their own
TP-side matrix builder mirroring
:func:`repro.core.categorical.third_party_categorical_matrix`.
"""

from repro.ext.ordinal import OrdinalScale
from repro.ext.taxonomy import Taxonomy, third_party_taxonomy_matrix

__all__ = ["OrdinalScale", "Taxonomy", "third_party_taxonomy_matrix"]
