"""Comparison functions and dissimilarity structures (paper Sections 2.2-2.3).

* :mod:`repro.distance.numeric` -- ``|x - y|`` plus the fixed-point codec
  that lets the integer-valued protocol carry real values exactly,
* :mod:`repro.distance.categorical` -- 0/1 equality distance,
* :mod:`repro.distance.edit` -- edit distance, both directly on strings
  and on a character comparison matrix,
* :mod:`repro.distance.ccm` -- character comparison matrices,
* :mod:`repro.distance.dissimilarity` -- the object-by-object
  :class:`DissimilarityMatrix` (Figure 2), condensed storage,
* :mod:`repro.distance.local` -- local dissimilarity matrix construction
  (Figure 12),
* :mod:`repro.distance.merge` -- weighted merge of per-attribute matrices,
* :mod:`repro.distance.normalize` -- max-normalisation to [0, 1] and the
  Section 2.1 equivalence with attribute min-max normalisation.
"""

from repro.distance.categorical import categorical_distance
from repro.distance.ccm import ccm_from_strings
from repro.distance.dissimilarity import (
    DissimilarityMatrix,
    condensed_argmin,
    condensed_offsets,
    condensed_pair_indices,
    condensed_position,
    condensed_row_gather,
    condensed_row_positions,
    condensed_row_scatter,
    condensed_size,
    same_label_mask,
)
from repro.distance.edit import edit_distance, edit_distance_from_ccm
from repro.distance.local import local_dissimilarity
from repro.distance.merge import merge_weighted
from repro.distance.normalize import max_normalize, min_max_normalize_column
from repro.distance.numeric import FixedPointCodec, numeric_distance

__all__ = [
    "categorical_distance",
    "ccm_from_strings",
    "DissimilarityMatrix",
    "condensed_argmin",
    "condensed_offsets",
    "condensed_pair_indices",
    "condensed_position",
    "condensed_row_gather",
    "condensed_row_positions",
    "condensed_row_scatter",
    "condensed_size",
    "same_label_mask",
    "edit_distance",
    "edit_distance_from_ccm",
    "local_dissimilarity",
    "merge_weighted",
    "max_normalize",
    "min_max_normalize_column",
    "FixedPointCodec",
    "numeric_distance",
]
