"""Local dissimilarity matrix construction (paper Figure 12).

Every data holder runs this on each attribute column of its own
partition: no privacy machinery is needed for pairs of objects held by
the same party (Section 4, first paragraph).  The same routine also
serves the third party in the categorical protocol, where it runs over
the merged *ciphertext* column.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.distance.dissimilarity import DissimilarityMatrix

T = TypeVar("T")


def local_dissimilarity(
    column: Sequence[T], distance: Callable[[T, T], float]
) -> DissimilarityMatrix:
    """Pairwise distances within one attribute column.

    Follows Figure 12 exactly: fill ``d[m][n] = distance(D[m], D[n])``
    for ``n <= m`` (the diagonal stays implicitly zero in our condensed
    representation).
    """
    values = list(column)
    return DissimilarityMatrix.from_pairwise(
        len(values), lambda i, j: distance(values[i], values[j])
    )
