"""The object-by-object dissimilarity matrix (paper Figure 2).

"An m x m dissimilarity matrix stores the distance or dissimilarity
between each pair of objects ... the distance of an object to itself is 0
... only the entries below the diagonal are filled, since
d[i][j] = d[j][i]."

:class:`DissimilarityMatrix` stores exactly that strict lower triangle in
condensed layout -- half the memory of a square matrix and an honest
representation of what the third party actually materialises.  Pair
``(i, j)`` with ``i > j`` lives at position ``i*(i-1)/2 + j``, i.e.
row-major over Figure 2's filled entries.

Storage is delegated to a :class:`~repro.distance.store.CondensedStore`
backend (in-memory float64 by default; float32 and memory-mapped
row-block shards for out-of-core scale).  Every operation asks the
backend for :meth:`~repro.distance.store.CondensedStore.array_view`
first: when that returns an ndarray (the in-memory backend) the
historical numpy expressions run on it verbatim -- bit-identical to the
pre-backend code -- and otherwise the same operation streams block-wise
through the store, so no consumer algorithm changes per backend.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.distance.store import (
    CondensedStore,
    StoreSpec,
    open_store,
)
from repro.exceptions import ClusteringError, ConfigurationError


# -- condensed primitives ------------------------------------------------------
#
# Free functions over the condensed layout (pair (i, j), i > j, at position
# i*(i-1)/2 + j).  The clustering layer runs directly on condensed vectors
# through these, so the O(n^2)-memory algorithms never materialise a square.
# Value-carrying primitives accept either a plain ndarray or a
# CondensedStore and stream in the latter case.


def condensed_size(num_objects: int) -> int:
    """Length of the condensed vector for ``num_objects`` objects."""
    return num_objects * (num_objects - 1) // 2


def condensed_position(i, j):
    """Condensed position(s) of pair(s) ``(i, j)``; order-insensitive.

    Accepts scalars or broadcastable integer arrays; pairs with ``i == j``
    have no condensed slot and must not be passed.
    """
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    upper = np.maximum(i, j)
    lower = np.minimum(i, j)
    return upper * (upper - 1) // 2 + lower


def condensed_unravel(positions) -> tuple[np.ndarray, np.ndarray]:
    """Pair indices ``(i, j)``, ``i > j``, of condensed position(s).

    The inverse of :func:`condensed_position`: a float sqrt solve with an
    integer correction pass, exact at any position a float64 sqrt can
    land within one row of (guarded both ways).  This is what lets
    block-wise streams recover pair structure from a span of positions
    without materialising :func:`condensed_pair_indices` for the whole
    triangle.
    """
    positions = np.asarray(positions, dtype=np.int64)
    rows = (1 + np.sqrt(1 + 8 * positions.astype(np.float64))) // 2
    rows = rows.astype(np.int64)
    # Guard against float rounding at huge positions.
    rows[rows * (rows - 1) // 2 > positions] -= 1
    rows[(rows + 1) * rows // 2 <= positions] += 1
    cols = positions - rows * (rows - 1) // 2
    return rows, cols


def condensed_offsets(num_objects: int) -> np.ndarray:
    """Row-start offsets: ``offsets[i]`` is the position of pair (i, 0)."""
    rows = np.arange(num_objects, dtype=np.int64)
    return rows * (rows - 1) // 2


def condensed_row_positions(
    index: int, num_objects: int, offsets: np.ndarray | None = None
) -> np.ndarray:
    """Condensed positions of row ``index`` against every other object.

    Returns a length-``num_objects`` int64 array where entry ``k`` is the
    position of pair ``(index, k)``; the diagonal entry (``k == index``,
    which has no condensed slot) is set to ``-1``.  ``offsets`` may be the
    precomputed :func:`condensed_offsets` to amortise repeated calls.
    """
    if offsets is None:
        offsets = condensed_offsets(num_objects)
    pos = np.empty(num_objects, dtype=np.int64)
    pos[:index] = offsets[index] + np.arange(index, dtype=np.int64)
    pos[index] = -1
    pos[index + 1 :] = offsets[index + 1 :] + index
    return pos


def condensed_row_gather(
    values: np.ndarray | CondensedStore,
    index: int,
    num_objects: int,
    offsets: np.ndarray | None = None,
    diagonal: float = 0.0,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Row ``index`` of the square matrix, read straight off the condensed
    vector: a contiguous slice below the diagonal plus a strided gather
    above it.  The diagonal entry is filled with ``diagonal``.

    Hot loops (the NN-chain clustering path) amortise allocation by
    passing a preallocated ``out`` (length ``num_objects``, the row) and
    ``scratch`` (length ``num_objects``, int64, workspace for the
    above-diagonal gather positions).  ``values`` may be a
    :class:`~repro.distance.store.CondensedStore`, in which case the
    below-diagonal part is one contiguous block read and the tail one
    ascending grouped gather.
    """
    if offsets is None:
        offsets = condensed_offsets(num_objects)
    if isinstance(values, np.ndarray):
        if out is None:
            out = np.empty(num_objects, dtype=values.dtype)
        start = int(offsets[index])
        out[:index] = values[start : start + index]
        out[index] = diagonal
        if index + 1 < num_objects:
            if scratch is None:
                positions = offsets[index + 1 :] + index
            else:
                positions = scratch[: num_objects - index - 1]
                np.add(offsets[index + 1 :], index, out=positions)
            np.take(values, positions, out=out[index + 1 :])
        return out
    if out is None:
        out = np.empty(num_objects, dtype=np.float64)
    start = int(offsets[index])
    out[:index] = values.read(start, start + index)
    out[index] = diagonal
    if index + 1 < num_objects:
        if scratch is None:
            positions = offsets[index + 1 :] + index
        else:
            positions = scratch[: num_objects - index - 1]
            np.add(offsets[index + 1 :], index, out=positions)
        values.gather(positions, out=out[index + 1 :])
    return out


def condensed_row_scatter(
    values: np.ndarray | CondensedStore,
    index: int,
    num_objects: int,
    row: np.ndarray,
    where: np.ndarray | None = None,
    offsets: np.ndarray | None = None,
) -> None:
    """Write ``row`` (length ``num_objects``) back into row ``index`` of the
    condensed vector, optionally restricted to a boolean ``where`` mask.
    The diagonal entry is ignored."""
    pos = condensed_row_positions(index, num_objects, offsets)
    if where is None:
        where = np.ones(num_objects, dtype=bool)
    mask = where.copy()
    mask[index] = False
    if isinstance(values, np.ndarray):
        values[pos[mask]] = row[mask]
    else:
        values.scatter(pos[mask], row[mask])


def condensed_argmin(
    values: np.ndarray | CondensedStore, num_objects: int
) -> tuple[int, int]:
    """Pair ``(i, j)``, ``i > j``, holding the smallest condensed value.

    Ties break exactly like ``np.argmin`` over the corresponding square
    matrix: the smallest ``(min(i, j), max(i, j))`` in lexicographic order
    -- the rule the seed agglomerative loop used, preserved so condensed
    consumers stay merge-for-merge deterministic.  For a store backend
    the scan streams block-wise: a min pass, then a tie-collection pass
    at the exact minimum, then the identical tie-break -- the selected
    pair is bit-for-bit the in-memory answer.
    """
    if isinstance(values, np.ndarray):
        if values.size == 0:
            raise ClusteringError("condensed argmin needs at least one pair")
        minimum = values.min()
        ties = np.flatnonzero(values == minimum)
    else:
        if values.size == 0:
            raise ClusteringError("condensed argmin needs at least one pair")
        minimum = np.inf
        for start, stop in values.block_ranges():
            minimum = min(minimum, float(values.read(start, stop).min()))
        tie_spans = []
        for start, stop in values.block_ranges():
            local = np.flatnonzero(values.read(start, stop) == minimum)
            if local.size:
                tie_spans.append(local + start)
        ties = np.concatenate(tie_spans)
    rows, cols = condensed_unravel(ties)
    best = np.lexsort((rows, cols))[0]
    return int(rows[best]), int(cols[best])


#: Byte budget for one hash-partition group of the streamed duplicate
#: scan (the tie detector's transient working set).
_DUPLICATE_SCAN_BYTES = 512 << 20
#: Odd 64-bit multiplier spreading IEEE bit patterns across groups.
_DUPLICATE_HASH = np.uint64(0x9E3779B97F4A7C15)


def condensed_has_duplicates(
    values: np.ndarray | CondensedStore, budget_bytes: int = _DUPLICATE_SCAN_BYTES
) -> bool:
    """Whether any two condensed entries hold the same value.

    The in-memory answer is one sort plus an adjacent compare.  For a
    store backend the same *boolean* is computed without materialising
    the vector: values are partitioned by a hash of their (zero-
    canonicalised) IEEE bit pattern into groups sized to ``budget_bytes``
    and each group is sorted separately -- identical values share a bit
    pattern, hence a group, so no duplicate can hide across groups.  The
    linkage layer's tie check uses this, keeping NN-chain vs cached-
    argmin path selection identical across backends.
    """
    if isinstance(values, np.ndarray):
        if values.size < 2:
            return False
        ordered = np.sort(values)
        return bool(np.any(ordered[1:] == ordered[:-1]))
    size = values.size
    if size < 2:
        return False
    groups = max(1, -(-(size * 8) // budget_bytes))
    for group in range(groups):
        parts = []
        for start, stop in values.block_ranges():
            block = values.read(start, stop)
            if group == 0:
                # Local duplicates resolve without any partitioning work.
                local = np.sort(block)
                if np.any(local[1:] == local[:-1]):
                    return True
                if groups == 1:
                    continue
            # Canonicalise -0.0 to +0.0: equal values, distinct patterns.
            block = block + 0.0
            bits = block.view(np.uint64)
            mask = (bits * _DUPLICATE_HASH) % np.uint64(groups) == np.uint64(group)
            part = block[mask]
            if part.size:
                parts.append(part)
        if groups == 1:
            return False
        if not parts:
            continue
        merged = np.concatenate(parts)
        merged.sort()
        if np.any(merged[1:] == merged[:-1]):
            return True
    return False


def condensed_pair_indices(num_objects: int) -> tuple[np.ndarray, np.ndarray]:
    """Index arrays (I, J) with ``I[p] > J[p]`` for every condensed position
    ``p``, in layout order (row-major over the strict lower triangle)."""
    return np.tril_indices(num_objects, -1)


def condensed_tail_indices(
    old_size: int, new_size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pair indices of the condensed *tail*: rows ``old_size..new_size-1``
    against every earlier row, in layout order.

    This is :func:`condensed_pair_indices` restricted to the segment a
    grown site's delta covers, built directly at O(tail) cost -- the
    incremental path must never pay O(new_size^2) for a small batch.
    """
    rows = np.arange(old_size, new_size, dtype=np.int64)
    i = np.repeat(rows, rows)
    starts = np.cumsum(rows) - rows
    j = np.arange(i.size, dtype=np.int64) - np.repeat(starts, rows)
    return i, j


def same_label_mask(labels: Sequence[int]) -> np.ndarray:
    """Condensed boolean mask: True where a pair's objects share a label."""
    arr = np.asarray(labels)
    i, j = condensed_pair_indices(arr.shape[0])
    return arr[i] == arr[j]


#: Row-block budget (float64 cells) for the chunked triangle-inequality
#: scan: ~1 MiB per block keeps peak memory far below the n^2 square.
_TRIANGLE_CHUNK_CELLS = 1 << 17


class DissimilarityMatrix:
    """Symmetric, zero-diagonal distance matrix in condensed storage.

    ``store_spec`` picks the storage backend; ``None`` means the
    historical in-memory float64 array.  The ``REPRO_STORE_BACKEND``
    environment override is deliberately *not* consulted here: it flows
    in through :meth:`repro.core.config.ProtocolSuiteConfig.store_spec`,
    so it re-points the session-owned matrices (the third party's
    attribute and merged matrices -- the ones that scale with n) while
    transient construction-time matrices stay exact float64 regardless.
    Matrices derived from an existing one (copies, normalisations,
    submatrices, grown or shrunk epochs) inherit their source's backend.
    """

    def __init__(
        self,
        num_objects: int,
        condensed: np.ndarray | None = None,
        *,
        store_spec: StoreSpec | None = None,
    ) -> None:
        if num_objects < 1:
            raise ConfigurationError(
                f"dissimilarity matrix needs >= 1 object, got {num_objects}"
            )
        expected = condensed_size(num_objects)
        spec = store_spec if store_spec is not None else StoreSpec()
        if condensed is None:
            self._store = open_store(spec, expected)
        else:
            condensed = np.asarray(condensed, dtype=np.float64)
            if condensed.shape != (expected,):
                raise ConfigurationError(
                    f"condensed vector must have length {expected}, got {condensed.shape}"
                )
            if np.any(condensed < 0):
                raise ConfigurationError("distances must be non-negative")
            if np.any(~np.isfinite(condensed)):
                raise ConfigurationError("distances must be finite")
            self._store = open_store(spec, expected, values=condensed)
        self._n = num_objects

    # -- construction ------------------------------------------------------

    @classmethod
    def _adopt(cls, num_objects: int, store: CondensedStore) -> "DissimilarityMatrix":
        """Wrap an existing backend store (internal; invariants already hold)."""
        matrix = cls.__new__(cls)
        matrix._n = num_objects
        matrix._store = store
        return matrix

    @classmethod
    def zeros(
        cls, num_objects: int, store_spec: StoreSpec | None = None
    ) -> "DissimilarityMatrix":
        """All-zero matrix, ready to be filled."""
        return cls(num_objects, store_spec=store_spec)

    @classmethod
    def from_square(
        cls,
        square: np.ndarray,
        atol: float = 1e-9,
        store_spec: StoreSpec | None = None,
    ) -> "DissimilarityMatrix":
        """Validate and condense a full square distance matrix.

        The strict lower triangle is lifted with one fancy-indexing read
        and routed through the validating constructor, so negative or
        non-finite entries are rejected exactly like any other
        construction path.
        """
        square = np.asarray(square, dtype=np.float64)
        if square.ndim != 2 or square.shape[0] != square.shape[1]:
            raise ConfigurationError(f"square matrix expected, got shape {square.shape}")
        if not np.allclose(square, square.T, atol=atol):
            raise ConfigurationError("matrix is not symmetric")
        if not np.allclose(np.diag(square), 0.0, atol=atol):
            raise ConfigurationError("diagonal must be zero")
        n = square.shape[0]
        return cls(n, square[np.tril_indices(n, -1)], store_spec=store_spec)

    @classmethod
    def from_pairwise(
        cls,
        num_objects: int,
        distance: Callable[[int, int], float],
        store_spec: StoreSpec | None = None,
    ) -> "DissimilarityMatrix":
        """Fill by evaluating ``distance(i, j)`` over the lower triangle.

        This is the paper's Figure 12 loop shape; the callable receives
        global positions ``i > j``.
        """
        values = np.zeros(condensed_size(num_objects), dtype=np.float64)
        pos = 0
        for i in range(1, num_objects):
            for j in range(i):
                value = float(distance(i, j))
                if value < 0 or not np.isfinite(value):
                    raise ConfigurationError(
                        f"distance({i}, {j}) returned invalid value {value}"
                    )
                values[pos] = value
                pos += 1
        return cls(num_objects, values, store_spec=store_spec)

    # -- indexing ------------------------------------------------------------

    @property
    def num_objects(self) -> int:
        return self._n

    @property
    def store(self) -> CondensedStore:
        """The storage backend.  Algorithms use this to dispatch: a
        non-``None`` :meth:`~repro.distance.store.CondensedStore.array_view`
        is the dense fast path, otherwise they stream block-wise."""
        return self._store

    @property
    def store_kind(self) -> str:
        """Backend name (``memory`` | ``float32`` | ``memmap``)."""
        return self._store.kind

    @property
    def condensed(self) -> np.ndarray:
        """The strict lower triangle, Figure 2 order (read-only).

        A zero-copy view for the in-memory backend; sharded backends
        materialise a fresh array, so large-scale consumers should
        stream through :meth:`read_condensed` /
        :attr:`store` instead.
        """
        view = self._store.array_view()
        if view is not None:
            view = view.view()
            view.flags.writeable = False
            return view
        full = self._store.read(0, condensed_size(self._n))
        full.flags.writeable = False
        return full

    def read_condensed(self, start: int, stop: int) -> np.ndarray:
        """One condensed span ``[start, stop)`` as a fresh float64 array."""
        if not 0 <= start <= stop <= condensed_size(self._n):
            raise ConfigurationError(
                f"condensed span [{start}, {stop}) out of range"
            )
        return self._store.read(start, stop)

    def write_condensed(self, start: int, values: np.ndarray) -> None:
        """Overwrite one condensed span, with constructor-grade validation.

        The streaming construction hook: synthetic-scale builders (the
        storage probe, benchmarks) fill a matrix block-by-block without
        ever materialising the whole triangle.
        """
        values = np.asarray(values, dtype=np.float64)
        if not 0 <= start <= start + values.size <= condensed_size(self._n):
            raise ConfigurationError(
                f"condensed span [{start}, {start + values.size}) out of range"
            )
        if np.any(values < 0):
            raise ConfigurationError("distances must be non-negative")
        if np.any(~np.isfinite(values)):
            raise ConfigurationError("distances must be finite")
        self._store.write(start, values)

    @staticmethod
    def _position(i: int, j: int) -> int:
        return i * (i - 1) // 2 + j

    def _check_pair(self, i: int, j: int) -> tuple[int, int]:
        if not (0 <= i < self._n and 0 <= j < self._n):
            raise ConfigurationError(
                f"pair ({i}, {j}) out of range for {self._n} objects"
            )
        if i < j:
            i, j = j, i
        return i, j

    def __getitem__(self, pair: tuple[int, int]) -> float:
        i, j = self._check_pair(*pair)
        if i == j:
            return 0.0
        values = self._store.array_view()
        if values is not None:
            return float(values[self._position(i, j)])
        position = self._position(i, j)
        return float(self._store.read(position, position + 1)[0])

    def __setitem__(self, pair: tuple[int, int], value: float) -> None:
        i, j = self._check_pair(*pair)
        if i == j:
            if value != 0:
                raise ConfigurationError("diagonal entries are fixed at zero")
            return
        if value < 0 or not np.isfinite(value):
            raise ConfigurationError(f"invalid distance value {value}")
        values = self._store.array_view()
        if values is not None:
            values[self._position(i, j)] = value
        else:
            self._store.write(
                self._position(i, j), np.array([value], dtype=np.float64)
            )

    def set_block(self, rows: Sequence[int], cols: Sequence[int], block: np.ndarray) -> None:
        """Assign a rectangular cross-site block.

        The third party uses this to drop a comparison-protocol output
        (a ``len(rows) x len(cols)`` matrix of distances) into the global
        matrix, as one fancy-indexed write over the condensed triangle.
        Row/column index sets must each be duplicate-free (a duplicate
        would silently let a later block entry overwrite an earlier one)
        and mutually disjoint -- cross-site blocks never touch the
        diagonal.
        """
        rows = list(rows)
        cols = list(cols)
        block = np.asarray(block, dtype=np.float64)
        if block.shape != (len(rows), len(cols)):
            raise ConfigurationError(
                f"block shape {block.shape} != ({len(rows)}, {len(cols)})"
            )
        if len(set(rows)) != len(rows) or len(set(cols)) != len(cols):
            raise ConfigurationError("block row/column indices must be unique")
        if set(rows) & set(cols):
            raise ConfigurationError("cross block must not intersect the diagonal")
        if block.size == 0:
            return
        row_idx = np.asarray(rows, dtype=np.int64)
        col_idx = np.asarray(cols, dtype=np.int64)
        for name, idx in (("row", row_idx), ("column", col_idx)):
            if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self._n):
                raise ConfigurationError(
                    f"block {name} indices out of range for {self._n} objects"
                )
        if np.any(block < 0) or np.any(~np.isfinite(block)):
            raise ConfigurationError("block distances must be non-negative and finite")
        positions = condensed_position(row_idx[:, None], col_idx[None, :])
        values = self._store.array_view()
        if values is not None:
            values[positions] = block
        else:
            self._store.scatter(positions, block)

    def cross_block(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Read a rectangular block as one fancy-indexed condensed gather.

        The read counterpart of :meth:`set_block`: applications (record
        linkage on the cross-site block, for one) pull a
        ``len(rows) x len(cols)`` distance block without materialising the
        square matrix or looping per entry.  Unlike :meth:`set_block`, the
        index sets may intersect -- diagonal hits read as 0.
        """
        row_idx = np.asarray(list(rows), dtype=np.int64)
        col_idx = np.asarray(list(cols), dtype=np.int64)
        for name, idx in (("row", row_idx), ("column", col_idx)):
            if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self._n):
                raise ConfigurationError(
                    f"block {name} indices out of range for {self._n} objects"
                )
        block = np.zeros((row_idx.size, col_idx.size), dtype=np.float64)
        if block.size == 0:
            return block
        off_diagonal = row_idx[:, None] != col_idx[None, :]
        positions = condensed_position(row_idx[:, None], col_idx[None, :])
        values = self._store.array_view()
        if values is not None:
            block[off_diagonal] = values[positions[off_diagonal]]
        else:
            block[off_diagonal] = self._store.gather(positions[off_diagonal])
        return block

    # -- whole-matrix operations ----------------------------------------------

    def to_square(self) -> np.ndarray:
        """Full symmetric square matrix (copies)."""
        square = np.zeros((self._n, self._n), dtype=np.float64)
        values = self._store.array_view()
        if values is not None:
            square[np.tril_indices(self._n, -1)] = values
        else:
            for start, stop in self._store.block_ranges():
                i, j = condensed_unravel(np.arange(start, stop, dtype=np.int64))
                square[i, j] = self._store.read(start, stop)
        return square + square.T

    def to_scipy_condensed(self) -> np.ndarray:
        """Reorder into scipy's condensed format (upper triangle, row-major).

        Used by tests that cross-validate our clustering against
        ``scipy.cluster.hierarchy``.
        """
        i, j = np.triu_indices(self._n, 1)
        positions = condensed_position(i, j)
        values = self._store.array_view()
        if values is not None:
            return values[positions]
        return self._store.gather(positions)

    def max_value(self) -> float:
        """Largest pairwise distance (the Figure 11 normaliser)."""
        if self._store.size == 0:
            return 0.0
        values = self._store.array_view()
        if values is not None:
            return float(values.max())
        peak = -np.inf
        for start, stop in self._store.block_ranges():
            peak = max(peak, float(self._store.read(start, stop).max()))
        return peak

    def normalized(self) -> "DissimilarityMatrix":
        """Scale into [0, 1] by the maximum distance (Figure 11, step 4).

        An all-zero matrix normalises to itself (all objects identical).
        """
        peak = self.max_value()
        if peak == 0.0:
            return self.copy()
        values = self._store.array_view()
        if values is not None:
            return DissimilarityMatrix._adopt(
                self._n, self._store.adopt(values / peak)
            )
        fresh = self._store.spawn(self._store.size)
        for start, stop in fresh.block_ranges():
            fresh.write(start, self._store.read(start, stop) / peak)
        return DissimilarityMatrix._adopt(self._n, fresh)

    def submatrix(self, indices: Sequence[int]) -> "DissimilarityMatrix":
        """Restriction to a subset of objects, in the given order."""
        indices = list(indices)
        if len(set(indices)) != len(indices):
            raise ConfigurationError("submatrix indices must be unique")
        if not indices:
            raise ConfigurationError("submatrix needs at least one index")
        idx = np.asarray(indices, dtype=np.int64)
        if int(idx.min()) < 0 or int(idx.max()) >= self._n:
            raise ConfigurationError(
                f"submatrix indices out of range for {self._n} objects"
            )
        values = self._store.array_view()
        if values is not None:
            a, b = np.tril_indices(len(indices), -1)
            return DissimilarityMatrix._adopt(
                len(indices),
                self._store.adopt(values[condensed_position(idx[a], idx[b])]),
            )
        fresh = self._store.spawn(condensed_size(len(indices)))
        for start, stop in fresh.block_ranges():
            a, b = condensed_unravel(np.arange(start, stop, dtype=np.int64))
            fresh.write(
                start, self._store.gather(condensed_position(idx[a], idx[b]))
            )
        return DissimilarityMatrix._adopt(len(indices), fresh)

    def set_submatrix(self, indices: Sequence[int], local: "DissimilarityMatrix") -> None:
        """Scatter a small matrix onto an arbitrary subset of objects.

        The write counterpart of :meth:`submatrix`: ``local``'s pair
        ``(a, b)`` lands on the global pair ``(indices[a], indices[b])``
        with one fancy-indexed condensed write.  The delta-construction
        path uses this to drop new-arrival blocks whose global positions
        are scattered across several sites' regions.  Indices must be
        unique and in range; ``local`` must cover exactly
        ``len(indices)`` objects.
        """
        indices = list(indices)
        if len(set(indices)) != len(indices):
            raise ConfigurationError("submatrix indices must be unique")
        if local.num_objects != len(indices):
            raise ConfigurationError(
                f"matrix covers {local.num_objects} objects, got {len(indices)} indices"
            )
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self._n):
            raise ConfigurationError(
                f"submatrix indices out of range for {self._n} objects"
            )
        if local.num_objects < 2:
            return
        values = self._store.array_view()
        local_values = local._store.array_view()
        if values is not None and local_values is not None:
            a, b = np.tril_indices(local.num_objects, -1)
            values[condensed_position(idx[a], idx[b])] = local_values
            return
        for start, stop in local._store.block_ranges():
            a, b = condensed_unravel(np.arange(start, stop, dtype=np.int64))
            self._store.scatter(
                condensed_position(idx[a], idx[b]), local._store.read(start, stop)
            )

    def insert_objects(self, new_positions: Sequence[int]) -> "DissimilarityMatrix":
        """Grown matrix with fresh objects at the given (new-frame) positions.

        ``new_positions`` are the rows the inserted objects occupy in the
        grown matrix; existing objects keep their relative order in the
        remaining rows.  Every pair of surviving objects keeps its exact
        value via one condensed remap (streamed block-wise on sharded
        backends); every pair touching an inserted object starts at 0, to
        be filled by the delta construction (:mod:`repro.core.delta`).
        """
        new_positions = list(new_positions)
        if len(set(new_positions)) != len(new_positions):
            raise ConfigurationError("insert positions must be unique")
        grown = self._n + len(new_positions)
        for position in new_positions:
            if not 0 <= position < grown:
                raise ConfigurationError(
                    f"insert position {position} out of range for {grown} objects"
                )
        if not new_positions:
            return self.copy()
        inserted = np.zeros(grown, dtype=bool)
        inserted[np.asarray(new_positions, dtype=np.int64)] = True
        new_of_old = np.flatnonzero(~inserted)
        out_store = self._store.spawn(condensed_size(grown))
        out = DissimilarityMatrix._adopt(grown, out_store)
        if self._n >= 2:
            values = self._store.array_view()
            out_values = out_store.array_view()
            if values is not None and out_values is not None:
                i, j = condensed_pair_indices(self._n)
                # The map old->new is strictly increasing, so i > j survives
                # remapping and the condensed slot is direct arithmetic (no
                # per-pair max/min) -- this runs on every ingest epoch.
                upper = new_of_old[i]
                targets = upper * (upper - 1) // 2
                targets += new_of_old[j]
                out_values[targets] = values
            else:
                for start, stop in self._store.block_ranges():
                    i, j = condensed_unravel(np.arange(start, stop, dtype=np.int64))
                    upper = new_of_old[i]
                    targets = upper * (upper - 1) // 2
                    targets += new_of_old[j]
                    out_store.scatter(targets, self._store.read(start, stop))
        return out

    def remove_objects(self, positions: Sequence[int]) -> "DissimilarityMatrix":
        """Shrunk matrix without the given objects (surviving order kept).

        The inverse of :meth:`insert_objects`; the condensed shrink is the
        :meth:`submatrix` gather over the surviving positions.
        """
        positions = list(positions)
        if len(set(positions)) != len(positions):
            raise ConfigurationError("removal positions must be unique")
        for position in positions:
            if not 0 <= position < self._n:
                raise ConfigurationError(
                    f"removal position {position} out of range for {self._n} objects"
                )
        keep = np.ones(self._n, dtype=bool)
        if positions:
            keep[np.asarray(positions, dtype=np.int64)] = False
        survivors = np.flatnonzero(keep)
        if survivors.size == 0:
            raise ConfigurationError("cannot remove every object")
        return self.submatrix(survivors.tolist())

    def set_diagonal_block(self, offset: int, local: "DissimilarityMatrix") -> None:
        """Place a (validated) local matrix on the diagonal at ``offset``.

        This is how the third party drops one holder's Figure 12 output
        into the global matrix: the local condensed triangle lands in the
        global condensed triangle with one fancy-indexed write.
        """
        size = local.num_objects
        if offset < 0 or offset + size > self._n:
            raise ConfigurationError(
                f"diagonal block [{offset}, {offset + size}) out of range "
                f"for {self._n} objects"
            )
        if size < 2:
            return
        values = self._store.array_view()
        local_values = local._store.array_view()
        if values is not None and local_values is not None:
            i, j = np.tril_indices(size, -1)
            values[condensed_position(i + offset, j + offset)] = local_values
            return
        for start, stop in local._store.block_ranges():
            i, j = condensed_unravel(np.arange(start, stop, dtype=np.int64))
            self._store.scatter(
                condensed_position(i + offset, j + offset),
                local._store.read(start, stop),
            )

    def set_diagonal_delta(
        self, offset: int, old_size: int, new_size: int, tail: np.ndarray
    ) -> None:
        """Patch the *tail* of a diagonal block after a site grew.

        ``tail`` holds the new condensed entries of the site's grown
        local matrix -- rows ``old_size..new_size-1`` against every
        earlier local row, in Figure 2 order (one contiguous condensed
        segment on the holder's side, scattered here into the global
        triangle with one fancy-indexed write).  Entries among the
        site's surviving rows are untouched.
        """
        if not 0 <= old_size <= new_size:
            raise ConfigurationError(
                f"invalid diagonal delta sizes ({old_size}, {new_size})"
            )
        if offset < 0 or offset + new_size > self._n:
            raise ConfigurationError(
                f"diagonal block [{offset}, {offset + new_size}) out of range "
                f"for {self._n} objects"
            )
        tail = np.asarray(tail, dtype=np.float64)
        expected = condensed_size(new_size) - condensed_size(old_size)
        if tail.shape != (expected,):
            raise ConfigurationError(
                f"diagonal delta must have length {expected}, got {tail.shape}"
            )
        if expected == 0:
            return
        if np.any(tail < 0) or np.any(~np.isfinite(tail)):
            raise ConfigurationError("distances must be non-negative and finite")
        i, j = condensed_tail_indices(old_size, new_size)
        positions = condensed_position(i + offset, j + offset)
        values = self._store.array_view()
        if values is not None:
            values[positions] = tail
        else:
            self._store.scatter(positions, tail)

    def copy(self) -> "DissimilarityMatrix":
        values = self._store.array_view()
        if values is not None:
            return DissimilarityMatrix._adopt(
                self._n, self._store.adopt(values.copy())
            )
        fresh = self._store.spawn(self._store.size)
        for start, stop in fresh.block_ranges():
            fresh.write(start, self._store.read(start, stop))
        return DissimilarityMatrix._adopt(self._n, fresh)

    def allclose(self, other: "DissimilarityMatrix", atol: float = 1e-9) -> bool:
        """Entry-wise comparison; the zero-accuracy-loss assertions use this."""
        if self._n != other._n:
            return False
        values = self._store.array_view()
        other_values = other._store.array_view()
        if values is not None and other_values is not None:
            return bool(np.allclose(values, other_values, atol=atol))
        for start, stop in self._store.block_ranges():
            if not np.allclose(
                self._store.read(start, stop),
                other._store.read(start, stop),
                atol=atol,
            ):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DissimilarityMatrix):
            return NotImplemented
        if self._n != other._n:
            return False
        values = self._store.array_view()
        other_values = other._store.array_view()
        if values is not None and other_values is not None:
            return bool(np.array_equal(values, other_values))
        for start, stop in self._store.block_ranges():
            if not np.array_equal(
                self._store.read(start, stop), other._store.read(start, stop)
            ):
                return False
        return True

    def mean_value(self) -> float:
        """Average pairwise distance (quality reporting)."""
        if self._store.size == 0:
            return 0.0
        values = self._store.array_view()
        if values is not None:
            return float(values.mean())
        total = 0.0
        for start, stop in self._store.block_ranges():
            total += float(self._store.read(start, stop).sum())
        return total / self._store.size

    def check_triangle_inequality(
        self, atol: float = 1e-9, chunk_rows: int | None = None
    ) -> bool:
        """Whether d(i,k) <= d(i,j) + d(j,k) holds for all triples.

        True for the per-attribute metrics the paper uses; weighted merges
        of metrics stay metrics, so this doubles as an integration check.

        The scan is chunked over the intermediate vertex ``j`` (and, per
        ``j``-chunk, over rows ``i``): only two ``chunk_rows x n`` row
        blocks are ever materialised -- never the O(n^2) square -- and the
        first violating ``(j, i)`` block returns immediately, so a
        non-metric matrix with an early violation costs O(chunk * n)
        instead of a full O(n^3) sweep over a square copy.  Row gathers
        go through :func:`condensed_row_gather`, which streams on store
        backends, so the bound holds there too.
        """
        n = self._n
        if n < 3:
            return True
        if chunk_rows is None:
            chunk_rows = min(n, max(1, _TRIANGLE_CHUNK_CELLS // n))
        chunk_rows = max(1, min(chunk_rows, n))
        offsets = condensed_offsets(n)
        scratch = np.empty(n, dtype=np.int64)
        rows_j = np.empty((chunk_rows, n), dtype=np.float64)
        rows_i = np.empty((chunk_rows, n), dtype=np.float64)
        values = self._store.array_view()
        source: np.ndarray | CondensedStore = (
            values if values is not None else self._store
        )
        for j_start in range(0, n, chunk_rows):
            j_stop = min(n, j_start + chunk_rows)
            block_j = rows_j[: j_stop - j_start]
            for offset, j in enumerate(range(j_start, j_stop)):
                condensed_row_gather(
                    source, j, n, offsets, out=block_j[offset], scratch=scratch
                )
            for i_start in range(0, n, chunk_rows):
                i_stop = min(n, i_start + chunk_rows)
                if i_start == j_start:
                    block_i = block_j
                else:
                    block_i = rows_i[: i_stop - i_start]
                    for offset, i in enumerate(range(i_start, i_stop)):
                        condensed_row_gather(
                            source, i, n, offsets, out=block_i[offset], scratch=scratch
                        )
                for offset in range(j_stop - j_start):
                    via_j = (
                        block_j[offset, i_start:i_stop][:, None]
                        + block_j[offset][None, :]
                    )
                    if np.any(block_i[: i_stop - i_start] > via_j + atol):
                        return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DissimilarityMatrix(n={self._n}, max={self.max_value():.4g})"
