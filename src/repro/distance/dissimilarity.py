"""The object-by-object dissimilarity matrix (paper Figure 2).

"An m x m dissimilarity matrix stores the distance or dissimilarity
between each pair of objects ... the distance of an object to itself is 0
... only the entries below the diagonal are filled, since
d[i][j] = d[j][i]."

:class:`DissimilarityMatrix` stores exactly that strict lower triangle in
a condensed numpy vector -- half the memory of a square matrix and an
honest representation of what the third party actually materialises.
Pair ``(i, j)`` with ``i > j`` lives at position ``i*(i-1)/2 + j``, i.e.
row-major over Figure 2's filled entries.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ClusteringError, ConfigurationError


# -- condensed primitives ------------------------------------------------------
#
# Free functions over the condensed layout (pair (i, j), i > j, at position
# i*(i-1)/2 + j).  The clustering layer runs directly on condensed vectors
# through these, so the O(n^2)-memory algorithms never materialise a square.


def condensed_size(num_objects: int) -> int:
    """Length of the condensed vector for ``num_objects`` objects."""
    return num_objects * (num_objects - 1) // 2


def condensed_position(i, j):
    """Condensed position(s) of pair(s) ``(i, j)``; order-insensitive.

    Accepts scalars or broadcastable integer arrays; pairs with ``i == j``
    have no condensed slot and must not be passed.
    """
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    upper = np.maximum(i, j)
    lower = np.minimum(i, j)
    return upper * (upper - 1) // 2 + lower


def condensed_offsets(num_objects: int) -> np.ndarray:
    """Row-start offsets: ``offsets[i]`` is the position of pair (i, 0)."""
    rows = np.arange(num_objects, dtype=np.int64)
    return rows * (rows - 1) // 2


def condensed_row_positions(
    index: int, num_objects: int, offsets: np.ndarray | None = None
) -> np.ndarray:
    """Condensed positions of row ``index`` against every other object.

    Returns a length-``num_objects`` int64 array where entry ``k`` is the
    position of pair ``(index, k)``; the diagonal entry (``k == index``,
    which has no condensed slot) is set to ``-1``.  ``offsets`` may be the
    precomputed :func:`condensed_offsets` to amortise repeated calls.
    """
    if offsets is None:
        offsets = condensed_offsets(num_objects)
    pos = np.empty(num_objects, dtype=np.int64)
    pos[:index] = offsets[index] + np.arange(index, dtype=np.int64)
    pos[index] = -1
    pos[index + 1 :] = offsets[index + 1 :] + index
    return pos


def condensed_row_gather(
    values: np.ndarray,
    index: int,
    num_objects: int,
    offsets: np.ndarray | None = None,
    diagonal: float = 0.0,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Row ``index`` of the square matrix, read straight off the condensed
    vector: a contiguous slice below the diagonal plus a strided gather
    above it.  The diagonal entry is filled with ``diagonal``.

    Hot loops (the NN-chain clustering path) amortise allocation by
    passing a preallocated ``out`` (length ``num_objects``, the row) and
    ``scratch`` (length ``num_objects``, int64, workspace for the
    above-diagonal gather positions).
    """
    if offsets is None:
        offsets = condensed_offsets(num_objects)
    if out is None:
        out = np.empty(num_objects, dtype=values.dtype)
    start = int(offsets[index])
    out[:index] = values[start : start + index]
    out[index] = diagonal
    if index + 1 < num_objects:
        if scratch is None:
            positions = offsets[index + 1 :] + index
        else:
            positions = scratch[: num_objects - index - 1]
            np.add(offsets[index + 1 :], index, out=positions)
        np.take(values, positions, out=out[index + 1 :])
    return out


def condensed_row_scatter(
    values: np.ndarray,
    index: int,
    num_objects: int,
    row: np.ndarray,
    where: np.ndarray | None = None,
    offsets: np.ndarray | None = None,
) -> None:
    """Write ``row`` (length ``num_objects``) back into row ``index`` of the
    condensed vector, optionally restricted to a boolean ``where`` mask.
    The diagonal entry is ignored."""
    pos = condensed_row_positions(index, num_objects, offsets)
    if where is None:
        where = np.ones(num_objects, dtype=bool)
    mask = where.copy()
    mask[index] = False
    values[pos[mask]] = row[mask]


def condensed_argmin(values: np.ndarray, num_objects: int) -> tuple[int, int]:
    """Pair ``(i, j)``, ``i > j``, holding the smallest condensed value.

    Ties break exactly like ``np.argmin`` over the corresponding square
    matrix: the smallest ``(min(i, j), max(i, j))`` in lexicographic order
    -- the rule the seed agglomerative loop used, preserved so condensed
    consumers stay merge-for-merge deterministic.
    """
    if values.size == 0:
        raise ClusteringError("condensed argmin needs at least one pair")
    minimum = values.min()
    ties = np.flatnonzero(values == minimum)
    rows = (1 + np.sqrt(1 + 8 * ties.astype(np.float64))) // 2
    rows = rows.astype(np.int64)
    # Guard against float rounding at huge positions.
    rows[rows * (rows - 1) // 2 > ties] -= 1
    rows[(rows + 1) * rows // 2 <= ties] += 1
    cols = ties - rows * (rows - 1) // 2
    best = np.lexsort((rows, cols))[0]
    return int(rows[best]), int(cols[best])


def condensed_pair_indices(num_objects: int) -> tuple[np.ndarray, np.ndarray]:
    """Index arrays (I, J) with ``I[p] > J[p]`` for every condensed position
    ``p``, in layout order (row-major over the strict lower triangle)."""
    return np.tril_indices(num_objects, -1)


def same_label_mask(labels: Sequence[int]) -> np.ndarray:
    """Condensed boolean mask: True where a pair's objects share a label."""
    arr = np.asarray(labels)
    i, j = condensed_pair_indices(arr.shape[0])
    return arr[i] == arr[j]


class DissimilarityMatrix:
    """Symmetric, zero-diagonal distance matrix in condensed storage."""

    def __init__(self, num_objects: int, condensed: np.ndarray | None = None) -> None:
        if num_objects < 1:
            raise ConfigurationError(
                f"dissimilarity matrix needs >= 1 object, got {num_objects}"
            )
        expected = condensed_size(num_objects)
        if condensed is None:
            condensed = np.zeros(expected, dtype=np.float64)
        else:
            condensed = np.asarray(condensed, dtype=np.float64)
            if condensed.shape != (expected,):
                raise ConfigurationError(
                    f"condensed vector must have length {expected}, got {condensed.shape}"
                )
            if np.any(condensed < 0):
                raise ConfigurationError("distances must be non-negative")
            if np.any(~np.isfinite(condensed)):
                raise ConfigurationError("distances must be finite")
        self._n = num_objects
        self._values = condensed

    # -- construction ------------------------------------------------------

    @classmethod
    def zeros(cls, num_objects: int) -> "DissimilarityMatrix":
        """All-zero matrix, ready to be filled."""
        return cls(num_objects)

    @classmethod
    def from_square(cls, square: np.ndarray, atol: float = 1e-9) -> "DissimilarityMatrix":
        """Validate and condense a full square distance matrix.

        The strict lower triangle is lifted with one fancy-indexing read
        and routed through the validating constructor, so negative or
        non-finite entries are rejected exactly like any other
        construction path.
        """
        square = np.asarray(square, dtype=np.float64)
        if square.ndim != 2 or square.shape[0] != square.shape[1]:
            raise ConfigurationError(f"square matrix expected, got shape {square.shape}")
        if not np.allclose(square, square.T, atol=atol):
            raise ConfigurationError("matrix is not symmetric")
        if not np.allclose(np.diag(square), 0.0, atol=atol):
            raise ConfigurationError("diagonal must be zero")
        n = square.shape[0]
        return cls(n, square[np.tril_indices(n, -1)])

    @classmethod
    def from_pairwise(
        cls, num_objects: int, distance: Callable[[int, int], float]
    ) -> "DissimilarityMatrix":
        """Fill by evaluating ``distance(i, j)`` over the lower triangle.

        This is the paper's Figure 12 loop shape; the callable receives
        global positions ``i > j``.
        """
        out = cls(num_objects)
        pos = 0
        for i in range(1, num_objects):
            for j in range(i):
                value = float(distance(i, j))
                if value < 0:
                    raise ConfigurationError(
                        f"distance({i}, {j}) returned negative value {value}"
                    )
                out._values[pos] = value
                pos += 1
        return out

    # -- indexing ------------------------------------------------------------

    @property
    def num_objects(self) -> int:
        return self._n

    @property
    def condensed(self) -> np.ndarray:
        """Read-only view of the strict lower triangle, Figure 2 order."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @staticmethod
    def _position(i: int, j: int) -> int:
        return i * (i - 1) // 2 + j

    def _check_pair(self, i: int, j: int) -> tuple[int, int]:
        if not (0 <= i < self._n and 0 <= j < self._n):
            raise ConfigurationError(
                f"pair ({i}, {j}) out of range for {self._n} objects"
            )
        if i < j:
            i, j = j, i
        return i, j

    def __getitem__(self, pair: tuple[int, int]) -> float:
        i, j = self._check_pair(*pair)
        if i == j:
            return 0.0
        return float(self._values[self._position(i, j)])

    def __setitem__(self, pair: tuple[int, int], value: float) -> None:
        i, j = self._check_pair(*pair)
        if i == j:
            if value != 0:
                raise ConfigurationError("diagonal entries are fixed at zero")
            return
        if value < 0 or not np.isfinite(value):
            raise ConfigurationError(f"invalid distance value {value}")
        self._values[self._position(i, j)] = value

    def set_block(self, rows: Sequence[int], cols: Sequence[int], block: np.ndarray) -> None:
        """Assign a rectangular cross-site block.

        The third party uses this to drop a comparison-protocol output
        (a ``len(rows) x len(cols)`` matrix of distances) into the global
        matrix, as one fancy-indexed write over the condensed triangle.
        Row/column index sets must each be duplicate-free (a duplicate
        would silently let a later block entry overwrite an earlier one)
        and mutually disjoint -- cross-site blocks never touch the
        diagonal.
        """
        rows = list(rows)
        cols = list(cols)
        block = np.asarray(block, dtype=np.float64)
        if block.shape != (len(rows), len(cols)):
            raise ConfigurationError(
                f"block shape {block.shape} != ({len(rows)}, {len(cols)})"
            )
        if len(set(rows)) != len(rows) or len(set(cols)) != len(cols):
            raise ConfigurationError("block row/column indices must be unique")
        if set(rows) & set(cols):
            raise ConfigurationError("cross block must not intersect the diagonal")
        if block.size == 0:
            return
        row_idx = np.asarray(rows, dtype=np.int64)
        col_idx = np.asarray(cols, dtype=np.int64)
        for name, idx in (("row", row_idx), ("column", col_idx)):
            if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self._n):
                raise ConfigurationError(
                    f"block {name} indices out of range for {self._n} objects"
                )
        if np.any(block < 0) or np.any(~np.isfinite(block)):
            raise ConfigurationError("block distances must be non-negative and finite")
        self._values[condensed_position(row_idx[:, None], col_idx[None, :])] = block

    def cross_block(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Read a rectangular block as one fancy-indexed condensed gather.

        The read counterpart of :meth:`set_block`: applications (record
        linkage on the cross-site block, for one) pull a
        ``len(rows) x len(cols)`` distance block without materialising the
        square matrix or looping per entry.  Unlike :meth:`set_block`, the
        index sets may intersect -- diagonal hits read as 0.
        """
        row_idx = np.asarray(list(rows), dtype=np.int64)
        col_idx = np.asarray(list(cols), dtype=np.int64)
        for name, idx in (("row", row_idx), ("column", col_idx)):
            if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self._n):
                raise ConfigurationError(
                    f"block {name} indices out of range for {self._n} objects"
                )
        block = np.zeros((row_idx.size, col_idx.size), dtype=np.float64)
        if block.size == 0:
            return block
        off_diagonal = row_idx[:, None] != col_idx[None, :]
        positions = condensed_position(row_idx[:, None], col_idx[None, :])
        block[off_diagonal] = self._values[positions[off_diagonal]]
        return block

    # -- whole-matrix operations ----------------------------------------------

    def to_square(self) -> np.ndarray:
        """Full symmetric square matrix (copies)."""
        square = np.zeros((self._n, self._n), dtype=np.float64)
        square[np.tril_indices(self._n, -1)] = self._values
        return square + square.T

    def to_scipy_condensed(self) -> np.ndarray:
        """Reorder into scipy's condensed format (upper triangle, row-major).

        Used by tests that cross-validate our clustering against
        ``scipy.cluster.hierarchy``.
        """
        i, j = np.triu_indices(self._n, 1)
        return self._values[condensed_position(i, j)]

    def max_value(self) -> float:
        """Largest pairwise distance (the Figure 11 normaliser)."""
        if self._values.size == 0:
            return 0.0
        return float(self._values.max())

    def normalized(self) -> "DissimilarityMatrix":
        """Scale into [0, 1] by the maximum distance (Figure 11, step 4).

        An all-zero matrix normalises to itself (all objects identical).
        """
        peak = self.max_value()
        if peak == 0.0:
            return self.copy()
        return DissimilarityMatrix(self._n, self._values / peak)

    def submatrix(self, indices: Sequence[int]) -> "DissimilarityMatrix":
        """Restriction to a subset of objects, in the given order."""
        indices = list(indices)
        if len(set(indices)) != len(indices):
            raise ConfigurationError("submatrix indices must be unique")
        if not indices:
            raise ConfigurationError("submatrix needs at least one index")
        idx = np.asarray(indices, dtype=np.int64)
        if int(idx.min()) < 0 or int(idx.max()) >= self._n:
            raise ConfigurationError(
                f"submatrix indices out of range for {self._n} objects"
            )
        a, b = np.tril_indices(len(indices), -1)
        return DissimilarityMatrix(
            len(indices), self._values[condensed_position(idx[a], idx[b])]
        )

    def set_diagonal_block(self, offset: int, local: "DissimilarityMatrix") -> None:
        """Place a (validated) local matrix on the diagonal at ``offset``.

        This is how the third party drops one holder's Figure 12 output
        into the global matrix: the local condensed triangle lands in the
        global condensed triangle with one fancy-indexed write.
        """
        size = local.num_objects
        if offset < 0 or offset + size > self._n:
            raise ConfigurationError(
                f"diagonal block [{offset}, {offset + size}) out of range "
                f"for {self._n} objects"
            )
        if size < 2:
            return
        i, j = np.tril_indices(size, -1)
        self._values[condensed_position(i + offset, j + offset)] = local._values

    def copy(self) -> "DissimilarityMatrix":
        return DissimilarityMatrix(self._n, self._values.copy())

    def allclose(self, other: "DissimilarityMatrix", atol: float = 1e-9) -> bool:
        """Entry-wise comparison; the zero-accuracy-loss assertions use this."""
        return self._n == other._n and bool(
            np.allclose(self._values, other._values, atol=atol)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DissimilarityMatrix):
            return NotImplemented
        return self._n == other._n and bool(np.array_equal(self._values, other._values))

    def mean_value(self) -> float:
        """Average pairwise distance (quality reporting)."""
        if self._values.size == 0:
            return 0.0
        return float(self._values.mean())

    def check_triangle_inequality(self, atol: float = 1e-9) -> bool:
        """Whether d(i,k) <= d(i,j) + d(j,k) holds for all triples.

        True for the per-attribute metrics the paper uses; weighted merges
        of metrics stay metrics, so this doubles as an integration check.
        """
        square = self.to_square()
        for j in range(self._n):
            via_j = square[:, j][:, None] + square[j, :][None, :]
            if np.any(square > via_j + atol):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DissimilarityMatrix(n={self._n}, max={self.max_value():.4g})"
