"""The object-by-object dissimilarity matrix (paper Figure 2).

"An m x m dissimilarity matrix stores the distance or dissimilarity
between each pair of objects ... the distance of an object to itself is 0
... only the entries below the diagonal are filled, since
d[i][j] = d[j][i]."

:class:`DissimilarityMatrix` stores exactly that strict lower triangle in
a condensed numpy vector -- half the memory of a square matrix and an
honest representation of what the third party actually materialises.
Pair ``(i, j)`` with ``i > j`` lives at position ``i*(i-1)/2 + j``, i.e.
row-major over Figure 2's filled entries.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ClusteringError, ConfigurationError


# -- condensed primitives ------------------------------------------------------
#
# Free functions over the condensed layout (pair (i, j), i > j, at position
# i*(i-1)/2 + j).  The clustering layer runs directly on condensed vectors
# through these, so the O(n^2)-memory algorithms never materialise a square.


def condensed_size(num_objects: int) -> int:
    """Length of the condensed vector for ``num_objects`` objects."""
    return num_objects * (num_objects - 1) // 2


def condensed_position(i, j):
    """Condensed position(s) of pair(s) ``(i, j)``; order-insensitive.

    Accepts scalars or broadcastable integer arrays; pairs with ``i == j``
    have no condensed slot and must not be passed.
    """
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    upper = np.maximum(i, j)
    lower = np.minimum(i, j)
    return upper * (upper - 1) // 2 + lower


def condensed_offsets(num_objects: int) -> np.ndarray:
    """Row-start offsets: ``offsets[i]`` is the position of pair (i, 0)."""
    rows = np.arange(num_objects, dtype=np.int64)
    return rows * (rows - 1) // 2


def condensed_row_positions(
    index: int, num_objects: int, offsets: np.ndarray | None = None
) -> np.ndarray:
    """Condensed positions of row ``index`` against every other object.

    Returns a length-``num_objects`` int64 array where entry ``k`` is the
    position of pair ``(index, k)``; the diagonal entry (``k == index``,
    which has no condensed slot) is set to ``-1``.  ``offsets`` may be the
    precomputed :func:`condensed_offsets` to amortise repeated calls.
    """
    if offsets is None:
        offsets = condensed_offsets(num_objects)
    pos = np.empty(num_objects, dtype=np.int64)
    pos[:index] = offsets[index] + np.arange(index, dtype=np.int64)
    pos[index] = -1
    pos[index + 1 :] = offsets[index + 1 :] + index
    return pos


def condensed_row_gather(
    values: np.ndarray,
    index: int,
    num_objects: int,
    offsets: np.ndarray | None = None,
    diagonal: float = 0.0,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Row ``index`` of the square matrix, read straight off the condensed
    vector: a contiguous slice below the diagonal plus a strided gather
    above it.  The diagonal entry is filled with ``diagonal``.

    Hot loops (the NN-chain clustering path) amortise allocation by
    passing a preallocated ``out`` (length ``num_objects``, the row) and
    ``scratch`` (length ``num_objects``, int64, workspace for the
    above-diagonal gather positions).
    """
    if offsets is None:
        offsets = condensed_offsets(num_objects)
    if out is None:
        out = np.empty(num_objects, dtype=values.dtype)
    start = int(offsets[index])
    out[:index] = values[start : start + index]
    out[index] = diagonal
    if index + 1 < num_objects:
        if scratch is None:
            positions = offsets[index + 1 :] + index
        else:
            positions = scratch[: num_objects - index - 1]
            np.add(offsets[index + 1 :], index, out=positions)
        np.take(values, positions, out=out[index + 1 :])
    return out


def condensed_row_scatter(
    values: np.ndarray,
    index: int,
    num_objects: int,
    row: np.ndarray,
    where: np.ndarray | None = None,
    offsets: np.ndarray | None = None,
) -> None:
    """Write ``row`` (length ``num_objects``) back into row ``index`` of the
    condensed vector, optionally restricted to a boolean ``where`` mask.
    The diagonal entry is ignored."""
    pos = condensed_row_positions(index, num_objects, offsets)
    if where is None:
        where = np.ones(num_objects, dtype=bool)
    mask = where.copy()
    mask[index] = False
    values[pos[mask]] = row[mask]


def condensed_argmin(values: np.ndarray, num_objects: int) -> tuple[int, int]:
    """Pair ``(i, j)``, ``i > j``, holding the smallest condensed value.

    Ties break exactly like ``np.argmin`` over the corresponding square
    matrix: the smallest ``(min(i, j), max(i, j))`` in lexicographic order
    -- the rule the seed agglomerative loop used, preserved so condensed
    consumers stay merge-for-merge deterministic.
    """
    if values.size == 0:
        raise ClusteringError("condensed argmin needs at least one pair")
    minimum = values.min()
    ties = np.flatnonzero(values == minimum)
    rows = (1 + np.sqrt(1 + 8 * ties.astype(np.float64))) // 2
    rows = rows.astype(np.int64)
    # Guard against float rounding at huge positions.
    rows[rows * (rows - 1) // 2 > ties] -= 1
    rows[(rows + 1) * rows // 2 <= ties] += 1
    cols = ties - rows * (rows - 1) // 2
    best = np.lexsort((rows, cols))[0]
    return int(rows[best]), int(cols[best])


def condensed_pair_indices(num_objects: int) -> tuple[np.ndarray, np.ndarray]:
    """Index arrays (I, J) with ``I[p] > J[p]`` for every condensed position
    ``p``, in layout order (row-major over the strict lower triangle)."""
    return np.tril_indices(num_objects, -1)


def condensed_tail_indices(
    old_size: int, new_size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pair indices of the condensed *tail*: rows ``old_size..new_size-1``
    against every earlier row, in layout order.

    This is :func:`condensed_pair_indices` restricted to the segment a
    grown site's delta covers, built directly at O(tail) cost -- the
    incremental path must never pay O(new_size^2) for a small batch.
    """
    rows = np.arange(old_size, new_size, dtype=np.int64)
    i = np.repeat(rows, rows)
    starts = np.cumsum(rows) - rows
    j = np.arange(i.size, dtype=np.int64) - np.repeat(starts, rows)
    return i, j


def same_label_mask(labels: Sequence[int]) -> np.ndarray:
    """Condensed boolean mask: True where a pair's objects share a label."""
    arr = np.asarray(labels)
    i, j = condensed_pair_indices(arr.shape[0])
    return arr[i] == arr[j]


#: Row-block budget (float64 cells) for the chunked triangle-inequality
#: scan: ~1 MiB per block keeps peak memory far below the n^2 square.
_TRIANGLE_CHUNK_CELLS = 1 << 17


class DissimilarityMatrix:
    """Symmetric, zero-diagonal distance matrix in condensed storage."""

    def __init__(self, num_objects: int, condensed: np.ndarray | None = None) -> None:
        if num_objects < 1:
            raise ConfigurationError(
                f"dissimilarity matrix needs >= 1 object, got {num_objects}"
            )
        expected = condensed_size(num_objects)
        if condensed is None:
            condensed = np.zeros(expected, dtype=np.float64)
        else:
            condensed = np.asarray(condensed, dtype=np.float64)
            if condensed.shape != (expected,):
                raise ConfigurationError(
                    f"condensed vector must have length {expected}, got {condensed.shape}"
                )
            if np.any(condensed < 0):
                raise ConfigurationError("distances must be non-negative")
            if np.any(~np.isfinite(condensed)):
                raise ConfigurationError("distances must be finite")
        self._n = num_objects
        self._values = condensed

    # -- construction ------------------------------------------------------

    @classmethod
    def zeros(cls, num_objects: int) -> "DissimilarityMatrix":
        """All-zero matrix, ready to be filled."""
        return cls(num_objects)

    @classmethod
    def from_square(cls, square: np.ndarray, atol: float = 1e-9) -> "DissimilarityMatrix":
        """Validate and condense a full square distance matrix.

        The strict lower triangle is lifted with one fancy-indexing read
        and routed through the validating constructor, so negative or
        non-finite entries are rejected exactly like any other
        construction path.
        """
        square = np.asarray(square, dtype=np.float64)
        if square.ndim != 2 or square.shape[0] != square.shape[1]:
            raise ConfigurationError(f"square matrix expected, got shape {square.shape}")
        if not np.allclose(square, square.T, atol=atol):
            raise ConfigurationError("matrix is not symmetric")
        if not np.allclose(np.diag(square), 0.0, atol=atol):
            raise ConfigurationError("diagonal must be zero")
        n = square.shape[0]
        return cls(n, square[np.tril_indices(n, -1)])

    @classmethod
    def from_pairwise(
        cls, num_objects: int, distance: Callable[[int, int], float]
    ) -> "DissimilarityMatrix":
        """Fill by evaluating ``distance(i, j)`` over the lower triangle.

        This is the paper's Figure 12 loop shape; the callable receives
        global positions ``i > j``.
        """
        out = cls(num_objects)
        pos = 0
        for i in range(1, num_objects):
            for j in range(i):
                value = float(distance(i, j))
                if value < 0 or not np.isfinite(value):
                    raise ConfigurationError(
                        f"distance({i}, {j}) returned invalid value {value}"
                    )
                out._values[pos] = value
                pos += 1
        return out

    # -- indexing ------------------------------------------------------------

    @property
    def num_objects(self) -> int:
        return self._n

    @property
    def condensed(self) -> np.ndarray:
        """Read-only view of the strict lower triangle, Figure 2 order."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @staticmethod
    def _position(i: int, j: int) -> int:
        return i * (i - 1) // 2 + j

    def _check_pair(self, i: int, j: int) -> tuple[int, int]:
        if not (0 <= i < self._n and 0 <= j < self._n):
            raise ConfigurationError(
                f"pair ({i}, {j}) out of range for {self._n} objects"
            )
        if i < j:
            i, j = j, i
        return i, j

    def __getitem__(self, pair: tuple[int, int]) -> float:
        i, j = self._check_pair(*pair)
        if i == j:
            return 0.0
        return float(self._values[self._position(i, j)])

    def __setitem__(self, pair: tuple[int, int], value: float) -> None:
        i, j = self._check_pair(*pair)
        if i == j:
            if value != 0:
                raise ConfigurationError("diagonal entries are fixed at zero")
            return
        if value < 0 or not np.isfinite(value):
            raise ConfigurationError(f"invalid distance value {value}")
        self._values[self._position(i, j)] = value

    def set_block(self, rows: Sequence[int], cols: Sequence[int], block: np.ndarray) -> None:
        """Assign a rectangular cross-site block.

        The third party uses this to drop a comparison-protocol output
        (a ``len(rows) x len(cols)`` matrix of distances) into the global
        matrix, as one fancy-indexed write over the condensed triangle.
        Row/column index sets must each be duplicate-free (a duplicate
        would silently let a later block entry overwrite an earlier one)
        and mutually disjoint -- cross-site blocks never touch the
        diagonal.
        """
        rows = list(rows)
        cols = list(cols)
        block = np.asarray(block, dtype=np.float64)
        if block.shape != (len(rows), len(cols)):
            raise ConfigurationError(
                f"block shape {block.shape} != ({len(rows)}, {len(cols)})"
            )
        if len(set(rows)) != len(rows) or len(set(cols)) != len(cols):
            raise ConfigurationError("block row/column indices must be unique")
        if set(rows) & set(cols):
            raise ConfigurationError("cross block must not intersect the diagonal")
        if block.size == 0:
            return
        row_idx = np.asarray(rows, dtype=np.int64)
        col_idx = np.asarray(cols, dtype=np.int64)
        for name, idx in (("row", row_idx), ("column", col_idx)):
            if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self._n):
                raise ConfigurationError(
                    f"block {name} indices out of range for {self._n} objects"
                )
        if np.any(block < 0) or np.any(~np.isfinite(block)):
            raise ConfigurationError("block distances must be non-negative and finite")
        self._values[condensed_position(row_idx[:, None], col_idx[None, :])] = block

    def cross_block(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Read a rectangular block as one fancy-indexed condensed gather.

        The read counterpart of :meth:`set_block`: applications (record
        linkage on the cross-site block, for one) pull a
        ``len(rows) x len(cols)`` distance block without materialising the
        square matrix or looping per entry.  Unlike :meth:`set_block`, the
        index sets may intersect -- diagonal hits read as 0.
        """
        row_idx = np.asarray(list(rows), dtype=np.int64)
        col_idx = np.asarray(list(cols), dtype=np.int64)
        for name, idx in (("row", row_idx), ("column", col_idx)):
            if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self._n):
                raise ConfigurationError(
                    f"block {name} indices out of range for {self._n} objects"
                )
        block = np.zeros((row_idx.size, col_idx.size), dtype=np.float64)
        if block.size == 0:
            return block
        off_diagonal = row_idx[:, None] != col_idx[None, :]
        positions = condensed_position(row_idx[:, None], col_idx[None, :])
        block[off_diagonal] = self._values[positions[off_diagonal]]
        return block

    # -- whole-matrix operations ----------------------------------------------

    def to_square(self) -> np.ndarray:
        """Full symmetric square matrix (copies)."""
        square = np.zeros((self._n, self._n), dtype=np.float64)
        square[np.tril_indices(self._n, -1)] = self._values
        return square + square.T

    def to_scipy_condensed(self) -> np.ndarray:
        """Reorder into scipy's condensed format (upper triangle, row-major).

        Used by tests that cross-validate our clustering against
        ``scipy.cluster.hierarchy``.
        """
        i, j = np.triu_indices(self._n, 1)
        return self._values[condensed_position(i, j)]

    def max_value(self) -> float:
        """Largest pairwise distance (the Figure 11 normaliser)."""
        if self._values.size == 0:
            return 0.0
        return float(self._values.max())

    def normalized(self) -> "DissimilarityMatrix":
        """Scale into [0, 1] by the maximum distance (Figure 11, step 4).

        An all-zero matrix normalises to itself (all objects identical).
        """
        peak = self.max_value()
        if peak == 0.0:
            return self.copy()
        return DissimilarityMatrix(self._n, self._values / peak)

    def submatrix(self, indices: Sequence[int]) -> "DissimilarityMatrix":
        """Restriction to a subset of objects, in the given order."""
        indices = list(indices)
        if len(set(indices)) != len(indices):
            raise ConfigurationError("submatrix indices must be unique")
        if not indices:
            raise ConfigurationError("submatrix needs at least one index")
        idx = np.asarray(indices, dtype=np.int64)
        if int(idx.min()) < 0 or int(idx.max()) >= self._n:
            raise ConfigurationError(
                f"submatrix indices out of range for {self._n} objects"
            )
        a, b = np.tril_indices(len(indices), -1)
        return DissimilarityMatrix(
            len(indices), self._values[condensed_position(idx[a], idx[b])]
        )

    def set_submatrix(self, indices: Sequence[int], local: "DissimilarityMatrix") -> None:
        """Scatter a small matrix onto an arbitrary subset of objects.

        The write counterpart of :meth:`submatrix`: ``local``'s pair
        ``(a, b)`` lands on the global pair ``(indices[a], indices[b])``
        with one fancy-indexed condensed write.  The delta-construction
        path uses this to drop new-arrival blocks whose global positions
        are scattered across several sites' regions.  Indices must be
        unique and in range; ``local`` must cover exactly
        ``len(indices)`` objects.
        """
        indices = list(indices)
        if len(set(indices)) != len(indices):
            raise ConfigurationError("submatrix indices must be unique")
        if local.num_objects != len(indices):
            raise ConfigurationError(
                f"matrix covers {local.num_objects} objects, got {len(indices)} indices"
            )
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self._n):
            raise ConfigurationError(
                f"submatrix indices out of range for {self._n} objects"
            )
        if local.num_objects < 2:
            return
        a, b = np.tril_indices(local.num_objects, -1)
        self._values[condensed_position(idx[a], idx[b])] = local._values

    def insert_objects(self, new_positions: Sequence[int]) -> "DissimilarityMatrix":
        """Grown matrix with fresh objects at the given (new-frame) positions.

        ``new_positions`` are the rows the inserted objects occupy in the
        grown matrix; existing objects keep their relative order in the
        remaining rows.  Every pair of surviving objects keeps its exact
        value via one fancy-indexed condensed remap; every pair touching
        an inserted object starts at 0, to be filled by the delta
        construction (:mod:`repro.core.delta`).
        """
        new_positions = list(new_positions)
        if len(set(new_positions)) != len(new_positions):
            raise ConfigurationError("insert positions must be unique")
        grown = self._n + len(new_positions)
        for position in new_positions:
            if not 0 <= position < grown:
                raise ConfigurationError(
                    f"insert position {position} out of range for {grown} objects"
                )
        if not new_positions:
            return self.copy()
        inserted = np.zeros(grown, dtype=bool)
        inserted[np.asarray(new_positions, dtype=np.int64)] = True
        new_of_old = np.flatnonzero(~inserted)
        out = DissimilarityMatrix(grown)
        if self._n >= 2:
            i, j = condensed_pair_indices(self._n)
            # The map old->new is strictly increasing, so i > j survives
            # remapping and the condensed slot is direct arithmetic (no
            # per-pair max/min) -- this runs on every ingest epoch.
            upper = new_of_old[i]
            targets = upper * (upper - 1) // 2
            targets += new_of_old[j]
            out._values[targets] = self._values
        return out

    def remove_objects(self, positions: Sequence[int]) -> "DissimilarityMatrix":
        """Shrunk matrix without the given objects (surviving order kept).

        The inverse of :meth:`insert_objects`; the condensed shrink is the
        :meth:`submatrix` gather over the surviving positions.
        """
        positions = list(positions)
        if len(set(positions)) != len(positions):
            raise ConfigurationError("removal positions must be unique")
        for position in positions:
            if not 0 <= position < self._n:
                raise ConfigurationError(
                    f"removal position {position} out of range for {self._n} objects"
                )
        keep = np.ones(self._n, dtype=bool)
        if positions:
            keep[np.asarray(positions, dtype=np.int64)] = False
        survivors = np.flatnonzero(keep)
        if survivors.size == 0:
            raise ConfigurationError("cannot remove every object")
        return self.submatrix(survivors.tolist())

    def set_diagonal_block(self, offset: int, local: "DissimilarityMatrix") -> None:
        """Place a (validated) local matrix on the diagonal at ``offset``.

        This is how the third party drops one holder's Figure 12 output
        into the global matrix: the local condensed triangle lands in the
        global condensed triangle with one fancy-indexed write.
        """
        size = local.num_objects
        if offset < 0 or offset + size > self._n:
            raise ConfigurationError(
                f"diagonal block [{offset}, {offset + size}) out of range "
                f"for {self._n} objects"
            )
        if size < 2:
            return
        i, j = np.tril_indices(size, -1)
        self._values[condensed_position(i + offset, j + offset)] = local._values

    def set_diagonal_delta(
        self, offset: int, old_size: int, new_size: int, tail: np.ndarray
    ) -> None:
        """Patch the *tail* of a diagonal block after a site grew.

        ``tail`` holds the new condensed entries of the site's grown
        local matrix -- rows ``old_size..new_size-1`` against every
        earlier local row, in Figure 2 order (one contiguous condensed
        segment on the holder's side, scattered here into the global
        triangle with one fancy-indexed write).  Entries among the
        site's surviving rows are untouched.
        """
        if not 0 <= old_size <= new_size:
            raise ConfigurationError(
                f"invalid diagonal delta sizes ({old_size}, {new_size})"
            )
        if offset < 0 or offset + new_size > self._n:
            raise ConfigurationError(
                f"diagonal block [{offset}, {offset + new_size}) out of range "
                f"for {self._n} objects"
            )
        tail = np.asarray(tail, dtype=np.float64)
        expected = condensed_size(new_size) - condensed_size(old_size)
        if tail.shape != (expected,):
            raise ConfigurationError(
                f"diagonal delta must have length {expected}, got {tail.shape}"
            )
        if expected == 0:
            return
        if np.any(tail < 0) or np.any(~np.isfinite(tail)):
            raise ConfigurationError("distances must be non-negative and finite")
        i, j = condensed_tail_indices(old_size, new_size)
        self._values[condensed_position(i + offset, j + offset)] = tail

    def copy(self) -> "DissimilarityMatrix":
        return DissimilarityMatrix(self._n, self._values.copy())

    def allclose(self, other: "DissimilarityMatrix", atol: float = 1e-9) -> bool:
        """Entry-wise comparison; the zero-accuracy-loss assertions use this."""
        return self._n == other._n and bool(
            np.allclose(self._values, other._values, atol=atol)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DissimilarityMatrix):
            return NotImplemented
        return self._n == other._n and bool(np.array_equal(self._values, other._values))

    def mean_value(self) -> float:
        """Average pairwise distance (quality reporting)."""
        if self._values.size == 0:
            return 0.0
        return float(self._values.mean())

    def check_triangle_inequality(
        self, atol: float = 1e-9, chunk_rows: int | None = None
    ) -> bool:
        """Whether d(i,k) <= d(i,j) + d(j,k) holds for all triples.

        True for the per-attribute metrics the paper uses; weighted merges
        of metrics stay metrics, so this doubles as an integration check.

        The scan is chunked over the intermediate vertex ``j`` (and, per
        ``j``-chunk, over rows ``i``): only two ``chunk_rows x n`` row
        blocks are ever materialised -- never the O(n^2) square -- and the
        first violating ``(j, i)`` block returns immediately, so a
        non-metric matrix with an early violation costs O(chunk * n)
        instead of a full O(n^3) sweep over a square copy.
        """
        n = self._n
        if n < 3:
            return True
        if chunk_rows is None:
            chunk_rows = min(n, max(1, _TRIANGLE_CHUNK_CELLS // n))
        chunk_rows = max(1, min(chunk_rows, n))
        offsets = condensed_offsets(n)
        scratch = np.empty(n, dtype=np.int64)
        rows_j = np.empty((chunk_rows, n), dtype=np.float64)
        rows_i = np.empty((chunk_rows, n), dtype=np.float64)
        for j_start in range(0, n, chunk_rows):
            j_stop = min(n, j_start + chunk_rows)
            block_j = rows_j[: j_stop - j_start]
            for offset, j in enumerate(range(j_start, j_stop)):
                condensed_row_gather(
                    self._values, j, n, offsets, out=block_j[offset], scratch=scratch
                )
            for i_start in range(0, n, chunk_rows):
                i_stop = min(n, i_start + chunk_rows)
                if i_start == j_start:
                    block_i = block_j
                else:
                    block_i = rows_i[: i_stop - i_start]
                    for offset, i in enumerate(range(i_start, i_stop)):
                        condensed_row_gather(
                            self._values, i, n, offsets, out=block_i[offset], scratch=scratch
                        )
                for offset in range(j_stop - j_start):
                    via_j = (
                        block_j[offset, i_start:i_stop][:, None]
                        + block_j[offset][None, :]
                    )
                    if np.any(block_i[: i_stop - i_start] > via_j + atol):
                        return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DissimilarityMatrix(n={self._n}, max={self.max_value():.4g})"
