"""Categorical comparison function.

Section 4.3: "Categorical attributes are only compared for equality so
that any categorical value is equally distant to all other values but
itself":

.. math::

    distance(a, b) = 0 \\text{ if } a = b \\text{ else } 1

The paper explicitly leaves ordered/hierarchical categorical domains as
future work; this module therefore implements the flat 0/1 metric only,
plus the ciphertext-side variant the third party runs (it never sees
plaintexts, only deterministic ciphertexts whose equality mirrors
plaintext equality).
"""

from __future__ import annotations

from typing import Hashable


def categorical_distance(a: Hashable, b: Hashable) -> int:
    """0 when equal, 1 otherwise -- over plaintext values."""
    return 0 if a == b else 1


def ciphertext_distance(ciphertext_a: bytes, ciphertext_b: bytes) -> int:
    """The third party's version: equality of deterministic ciphertexts.

    Correct because the encryption is deterministic and injective per
    attribute (collisions are birthday-bounded far below any categorical
    domain size; see :class:`repro.crypto.detenc.DeterministicEncryptor`).
    """
    return 0 if ciphertext_a == ciphertext_b else 1
