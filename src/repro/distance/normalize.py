"""Normalisation, and the paper's Section 2.1 equivalence argument.

"Data matrix is not normalized in our protocol.  We rather choose to
normalize the dissimilarity matrix.  The reason is that each horizontal
partition may contain values from a different range in which case another
privacy preserving protocol for finding the global minimum and maximum of
each attribute would be required.  Normalization on the dissimilarity
matrix yields the same effect, without loss of accuracy and the need for
another protocol."

The equivalence is exact for the numeric metric: for a column with global
range ``[lo, hi]``, min-max scaling every value and then taking ``|x'-y'|``
equals ``|x-y| / (hi-lo)``, and the maximum pairwise distance *is*
``hi - lo`` -- so dividing the dissimilarity matrix by its maximum is the
same operation computed without a min/max protocol.
:func:`min_max_normalize_column` exists so tests and the T-NORM benchmark
can verify that equivalence numerically.
"""

from __future__ import annotations

from typing import Sequence

from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ConfigurationError


def max_normalize(matrix: DissimilarityMatrix) -> DissimilarityMatrix:
    """Scale a dissimilarity matrix into [0, 1] by its maximum entry."""
    return matrix.normalized()


def min_max_normalize_column(values: Sequence[float]) -> list[float]:
    """Classic min-max scaling of a (conceptually global) numeric column.

    This is the operation the paper *avoids* doing privately; it exists
    here as the reference side of the equivalence test.  A constant
    column maps to all zeros.
    """
    if not values:
        raise ConfigurationError("cannot normalise an empty column")
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return [0.0 for _ in values]
    span = hi - lo
    return [(v - lo) / span for v in values]
