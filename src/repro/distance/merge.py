"""Weighted merge of per-attribute dissimilarity matrices.

Section 2.2: "Involved parties construct separate dissimilarity matrices
for each attribute in our protocol.  Then these matrices are merged into
a single matrix using a weight function on the attributes."  Section 5
adds that each per-attribute matrix is normalised to [0, 1] first and
that "every data holder can impose a different weight vector".

The merge is a convex combination: with normalised inputs the result is
again normalised-compatible (entries in [0, 1] when weights sum to 1; we
renormalise weights so callers may pass any positive vector).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ConfigurationError


def merge_weighted(
    matrices: Sequence[DissimilarityMatrix],
    weights: Sequence[float] | None = None,
) -> DissimilarityMatrix:
    """Combine per-attribute matrices with a weight vector.

    Parameters
    ----------
    matrices:
        One (typically normalised) matrix per attribute, all over the same
        object set.
    weights:
        Positive attribute weights; ``None`` means equal weights.  Weights
        are renormalised to sum to 1, so only their ratios matter --
        matching the paper's loose "weight function on the attributes".
    """
    if not matrices:
        raise ConfigurationError("need at least one matrix to merge")
    sizes = {m.num_objects for m in matrices}
    if len(sizes) != 1:
        raise ConfigurationError(f"matrices disagree on object count: {sorted(sizes)}")
    if weights is None:
        weights = [1.0] * len(matrices)
    if len(weights) != len(matrices):
        raise ConfigurationError(
            f"{len(weights)} weights for {len(matrices)} matrices"
        )
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ConfigurationError("weights must be non-negative and finite")
    total = weights.sum()
    if total <= 0:
        raise ConfigurationError("at least one weight must be positive")
    weights = weights / total
    num_objects = matrices[0].num_objects
    lead = matrices[0].store
    views = [m.store.array_view() for m in matrices]
    if all(view is not None for view in views):
        combined = np.zeros_like(views[0])
        for weight, view in zip(weights, views):
            combined = combined + weight * view
        return DissimilarityMatrix._adopt(num_objects, lead.adopt(combined))
    # Streamed path: per block the accumulation order matches the dense
    # loop addend-for-addend, so a float64 sharded merge is bit-identical.
    fresh = lead.spawn(lead.size)
    for start, stop in fresh.block_ranges():
        combined = np.zeros(stop - start, dtype=np.float64)
        for weight, matrix in zip(weights, matrices):
            combined = combined + weight * matrix.store.read(start, stop)
        fresh.write(start, combined)
    return DissimilarityMatrix._adopt(num_objects, fresh)
