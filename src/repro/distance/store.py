"""Sharded storage backends beneath the condensed dissimilarity matrix.

The paper's protocols produce one global dissimilarity matrix, and every
consumer in this repo (NN-chain linkage, FasterPAM, quality metrics,
delta ingest) runs on its condensed vector.  Holding that vector as one
resident float64 array caps the reachable scale at what RAM affords --
~40 GB at n = 10^5 -- so this module splits the storage *policy* away
from the matrix *semantics*:

* :class:`InMemoryStore` -- the seed representation, one float64 array.
  The default, and bit-identical to the pre-backend code: the matrix
  layer short-circuits through :meth:`CondensedStore.array_view` so the
  exact historical numpy expressions run on the exact same array.
* :class:`Float32Store` -- same shape, half the bytes.  Storage
  precision only: every read upcasts to float64, every write rounds to
  float32, so consumers always compute in float64 and the *stored*
  rounding is the single documented source of divergence.
* :class:`MemmapStore` -- fixed-size row-block shard files under a
  session directory, memory-mapped on demand through an LRU cache with
  a configurable byte budget and dirty-block writeback.  Evicting a
  block unmaps it, so peak RSS tracks the cache budget plus the
  caller's working buffers, not the triangle size.

Every store speaks float64 at the interface: ``read``/``gather`` return
fresh float64 arrays (never views into a shard -- eviction unmaps the
backing pages), ``write``/``scatter`` accept float64.  Positions are
condensed-layout indices (pair ``(i, j)``, ``i > j``, at
``i*(i-1)/2 + j``); a *row block* is therefore a contiguous span of the
condensed vector, which keeps whole-row reads (one contiguous segment
below the diagonal) single-shard-friendly.

Backend selection is a :class:`StoreSpec`, resolved by default from the
environment (``REPRO_STORE_BACKEND`` = ``memory`` | ``float32`` |
``memmap``, plus ``REPRO_STORE_BLOCK_ENTRIES`` /
``REPRO_STORE_CACHE_BYTES`` / ``REPRO_STORE_DIR``) so whole test suites
and spawned party processes can be re-pointed at a backend without code
changes; explicit specs flow through
:class:`~repro.core.config.ProtocolSuiteConfig`.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import weakref
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

from repro.exceptions import ConfigurationError

#: Entries (float64 cells) per row-block shard: 2^21 cells = 16 MiB.
DEFAULT_BLOCK_ENTRIES = 1 << 21
#: LRU budget for resident memmap blocks: 256 MiB.
DEFAULT_CACHE_BYTES = 256 << 20

#: Environment knobs honoured by :func:`default_store_spec`.
ENV_BACKEND = "REPRO_STORE_BACKEND"
ENV_BLOCK_ENTRIES = "REPRO_STORE_BLOCK_ENTRIES"
ENV_CACHE_BYTES = "REPRO_STORE_CACHE_BYTES"
ENV_DIRECTORY = "REPRO_STORE_DIR"

_BACKENDS = ("memory", "float32", "memmap")

#: Name of the per-store metadata file that makes a shard directory
#: self-describing (reopenable without the creating process).
_META_FILE = "meta.json"
_META_FORMAT = 1


@dataclass(frozen=True)
class StoreSpec:
    """How to materialise a condensed vector: backend plus its knobs.

    ``block_entries``/``cache_bytes`` only shape the memmap backend (and
    the streaming granularity of generic block-wise code); ``directory``
    is the *base* under which each memmap store creates its own unique
    shard directory (``None`` means the system temp dir).
    """

    backend: str = "memory"
    block_entries: int = DEFAULT_BLOCK_ENTRIES
    cache_bytes: int = DEFAULT_CACHE_BYTES
    directory: str | None = None

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown store backend {self.backend!r}; expected one of {_BACKENDS}"
            )
        if self.block_entries < 1:
            raise ConfigurationError(
                f"store block_entries must be >= 1, got {self.block_entries}"
            )
        if self.cache_bytes < 1:
            raise ConfigurationError(
                f"store cache_bytes must be >= 1, got {self.cache_bytes}"
            )


def default_store_spec() -> StoreSpec:
    """The process-wide default spec, resolved from the environment.

    Unset or empty variables fall back to the in-memory float64 backend
    with the module defaults -- exactly the pre-backend behaviour -- so
    the environment is a pure opt-in override (the ``storage-matrix`` CI
    job and spawned party processes use it to re-point whole runs).
    """
    backend = os.environ.get(ENV_BACKEND, "").strip() or "memory"
    spec_kwargs: dict[str, object] = {"backend": backend}
    for env, field in (
        (ENV_BLOCK_ENTRIES, "block_entries"),
        (ENV_CACHE_BYTES, "cache_bytes"),
    ):
        raw = os.environ.get(env, "").strip()
        if raw:
            try:
                spec_kwargs[field] = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"{env} must be an integer, got {raw!r}"
                ) from None
    directory = os.environ.get(ENV_DIRECTORY, "").strip()
    if directory:
        spec_kwargs["directory"] = directory
    return StoreSpec(**spec_kwargs)  # type: ignore[arg-type]


def open_store(
    spec: StoreSpec, size: int, values: np.ndarray | None = None
) -> "CondensedStore":
    """Materialise a condensed vector of ``size`` entries under ``spec``.

    With ``values`` (a float64 array of length ``size``) the store is
    filled block-wise; without, it starts at zero (free for the memmap
    backend -- shard files are created sparse).
    """
    store: CondensedStore
    if spec.backend == "memory":
        if values is not None:
            return InMemoryStore(np.asarray(values, dtype=np.float64))
        return InMemoryStore(np.zeros(size, dtype=np.float64))
    if spec.backend == "float32":
        store = Float32Store(size, block_entries=spec.block_entries)
    else:
        store = MemmapStore.create(
            size,
            block_entries=spec.block_entries,
            cache_bytes=spec.cache_bytes,
            base_directory=spec.directory,
        )
    if values is not None:
        values = np.asarray(values, dtype=np.float64)
        for start, stop in store.block_ranges():
            store.write(start, values[start:stop])
    return store


class CondensedStore(ABC):
    """Storage backend for one condensed vector.

    The contract every :class:`~repro.distance.dissimilarity.DissimilarityMatrix`
    operation is written against: the matrix layer asks for
    :meth:`array_view` first and, when it gets an ndarray, runs the
    historical in-memory code verbatim (bit-identical default); when it
    gets ``None``, it streams through ``read``/``write``/``gather``/
    ``scatter`` in :meth:`block_ranges`-sized spans.
    """

    #: Backend name, matching :class:`StoreSpec.backend`.
    kind: str = "abstract"

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of condensed entries."""

    @property
    @abstractmethod
    def block_entries(self) -> int:
        """Streaming granularity (entries per block)."""

    def array_view(self) -> np.ndarray | None:
        """The backing float64 ndarray, or ``None`` for sharded backends.

        Non-``None`` means the array *is* the storage (writes through the
        view are writes to the store) -- the in-memory fast path.
        """
        return None

    @abstractmethod
    def read(self, start: int, stop: int) -> np.ndarray:
        """Entries ``[start, stop)`` as a fresh float64 array."""

    @abstractmethod
    def write(self, start: int, values: np.ndarray) -> None:
        """Overwrite entries ``[start, start + len(values))``."""

    @abstractmethod
    def gather(self, positions: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Entries at ``positions`` (any order), as float64.

        Ascending position runs are the fast path (one grouped read per
        touched block); callers in hot loops pass ``out`` to amortise
        allocation.
        """

    @abstractmethod
    def scatter(self, positions: np.ndarray, values: np.ndarray) -> None:
        """Write ``values`` at ``positions`` (duplicate-free)."""

    @abstractmethod
    def spawn(
        self,
        size: int,
        block_entries: int | None = None,
        cache_bytes: int | None = None,
    ) -> "CondensedStore":
        """Fresh all-zero sibling store of the same kind.

        Derived matrices (copies, submatrices, grown/shrunk epochs) and
        algorithm workspaces inherit their source's backend through this
        -- the overrides let a workspace pick coarser blocks or a larger
        cache than the source without changing backends.
        """

    def adopt(self, values: np.ndarray) -> "CondensedStore":
        """Sibling store holding ``values`` (float64, fully materialised).

        The in-memory backend overrides this to wrap without copying --
        preserving the historical constructor's aliasing semantics --
        while sharded backends stream the array in.
        """
        values = np.asarray(values, dtype=np.float64)
        fresh = self.spawn(values.size)
        for start, stop in fresh.block_ranges():
            fresh.write(start, values[start:stop])
        return fresh

    def flush(self) -> None:
        """Push dirty state to durable storage (no-op for RAM backends)."""

    def close(self) -> None:
        """Release resources; sharded backends drop their shard files."""

    def block_ranges(self) -> Iterator[tuple[int, int]]:
        """``(start, stop)`` spans covering ``[0, size)`` block by block."""
        step = self.block_entries
        for start in range(0, self.size, step):
            yield start, min(self.size, start + step)


class InMemoryStore(CondensedStore):
    """The seed representation: one resident float64 array.

    :meth:`array_view` hands the backing array out directly, so matrix
    code that takes the dense fast path is byte-for-byte the pre-backend
    implementation (including its aliasing: constructing from an
    existing float64 array wraps it, never copies).
    """

    kind = "memory"

    def __init__(self, values: np.ndarray) -> None:
        self._values = np.asarray(values, dtype=np.float64)

    @property
    def size(self) -> int:
        return int(self._values.size)

    @property
    def block_entries(self) -> int:
        return DEFAULT_BLOCK_ENTRIES

    def array_view(self) -> np.ndarray:
        return self._values

    def read(self, start: int, stop: int) -> np.ndarray:
        return self._values[start:stop].copy()

    def write(self, start: int, values: np.ndarray) -> None:
        self._values[start : start + len(values)] = values

    def gather(self, positions: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if out is not None:
            np.take(self._values, positions, out=out)
            return out
        return self._values[positions]

    def scatter(self, positions: np.ndarray, values: np.ndarray) -> None:
        self._values[positions] = values

    def spawn(
        self,
        size: int,
        block_entries: int | None = None,
        cache_bytes: int | None = None,
    ) -> "InMemoryStore":
        return InMemoryStore(np.zeros(size, dtype=np.float64))

    def adopt(self, values: np.ndarray) -> "InMemoryStore":
        return InMemoryStore(np.asarray(values, dtype=np.float64))


class Float32Store(CondensedStore):
    """Half-width storage: float32 at rest, float64 at the interface.

    The only divergence from the reference backend is the
    round-to-nearest float32 quantisation applied at *write* time; reads
    upcast exactly (every float32 is exactly representable in float64),
    so all downstream arithmetic stays float64 and the error budget is
    one rounding per stored value, not per operation.
    """

    kind = "float32"

    def __init__(self, size: int, block_entries: int = DEFAULT_BLOCK_ENTRIES) -> None:
        self._values = np.zeros(size, dtype=np.float32)
        self._block_entries = int(block_entries)

    @property
    def size(self) -> int:
        return int(self._values.size)

    @property
    def block_entries(self) -> int:
        return self._block_entries

    def read(self, start: int, stop: int) -> np.ndarray:
        return self._values[start:stop].astype(np.float64)

    def write(self, start: int, values: np.ndarray) -> None:
        self._values[start : start + len(values)] = np.asarray(
            values, dtype=np.float32
        )

    def gather(self, positions: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        taken = self._values[positions]
        if out is not None:
            out[...] = taken
            return out
        return taken.astype(np.float64)

    def scatter(self, positions: np.ndarray, values: np.ndarray) -> None:
        self._values[positions] = np.asarray(values, dtype=np.float32)

    def spawn(
        self,
        size: int,
        block_entries: int | None = None,
        cache_bytes: int | None = None,
    ) -> "Float32Store":
        return Float32Store(
            size, block_entries=block_entries or self._block_entries
        )


def _cleanup_shards(
    cache: "OrderedDict[int, np.memmap]",
    dirty: set[int],
    directory: str,
    owns_directory: bool,
) -> None:
    """GC/close hook for :class:`MemmapStore` (no ``self``: a bound
    method inside ``weakref.finalize`` would keep the store alive)."""
    for block in list(dirty):
        mapped = cache.get(block)
        if mapped is not None:
            mapped.flush()
    dirty.clear()
    cache.clear()
    if owns_directory:
        shutil.rmtree(directory, ignore_errors=True)


class MemmapStore(CondensedStore):
    """Row-block shard files, memory-mapped through a bounded LRU cache.

    Layout: entries ``[b * block_entries, (b+1) * block_entries)`` live
    in ``block-<b>.f64`` (raw little-endian float64, the numpy memmap
    dtype) under one shard directory, beside a ``meta.json`` describing
    ``size`` and ``block_entries`` so the directory is self-contained
    (:meth:`open` reopens it).  Shard files are created sparse via
    ``mode="w+"``, so an all-zero store costs no disk writes.

    Cache/writeback contract: at most ``cache_bytes`` worth of blocks
    are mapped at once.  Eviction flushes a dirty block and drops the
    mapping (munmap), which is what bounds RSS; clean evictions just
    unmap.  Data remains coherent across evict/reopen within a machine
    regardless of :meth:`flush` (shared file mappings), while
    :meth:`flush` additionally makes it crash-durable -- the service
    checkpoint path calls it before declaring a snapshot taken.

    Stores created here own their shard directory and delete it on
    :meth:`close` (or garbage collection); stores from :meth:`open`
    borrow the directory and leave it in place.
    """

    kind = "memmap"

    def __init__(
        self,
        size: int,
        block_entries: int,
        cache_bytes: int,
        directory: str,
        base_directory: str | None,
        owns_directory: bool,
    ) -> None:
        if size < 0:
            raise ConfigurationError(f"store size must be >= 0, got {size}")
        self._size = int(size)
        self._block_entries = int(block_entries)
        self._cache_bytes = int(cache_bytes)
        self._max_blocks = max(1, self._cache_bytes // (self._block_entries * 8))
        self._directory = directory
        self._base_directory = base_directory
        self._lock = threading.RLock()
        #: Mapped blocks, LRU order (oldest first).
        # guarded-by: self._lock
        self._cache: OrderedDict[int, np.memmap] = OrderedDict()
        #: Blocks written since their last flush.
        # guarded-by: self._lock
        self._dirty: set[int] = set()
        self._finalizer = weakref.finalize(
            self, _cleanup_shards, self._cache, self._dirty, directory, owns_directory
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        size: int,
        block_entries: int = DEFAULT_BLOCK_ENTRIES,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        base_directory: str | None = None,
    ) -> "MemmapStore":
        """New zero store in a fresh shard directory under ``base_directory``."""
        if base_directory is not None:
            os.makedirs(base_directory, exist_ok=True)
            directory = tempfile.mkdtemp(prefix="condensed-", dir=base_directory)
        else:
            directory = tempfile.mkdtemp(prefix="repro-condensed-")
        meta = {
            "format": _META_FORMAT,
            "size": int(size),
            "block_entries": int(block_entries),
        }
        with open(os.path.join(directory, _META_FILE), "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
        return cls(
            size,
            block_entries=block_entries,
            cache_bytes=cache_bytes,
            directory=directory,
            base_directory=base_directory,
            owns_directory=True,
        )

    @classmethod
    def open(cls, directory: str, cache_bytes: int = DEFAULT_CACHE_BYTES) -> "MemmapStore":
        """Reopen an existing shard directory (does not take ownership)."""
        meta_path = os.path.join(directory, _META_FILE)
        try:
            with open(meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                f"not a condensed shard directory ({meta_path}): {exc}"
            ) from exc
        if meta.get("format") != _META_FORMAT:
            raise ConfigurationError(
                f"unsupported shard format {meta.get('format')!r} in {directory}"
            )
        return cls(
            int(meta["size"]),
            block_entries=int(meta["block_entries"]),
            cache_bytes=cache_bytes,
            directory=directory,
            base_directory=os.path.dirname(directory) or None,
            owns_directory=False,
        )

    # -- introspection -----------------------------------------------------

    @property
    def size(self) -> int:
        return self._size

    @property
    def block_entries(self) -> int:
        return self._block_entries

    @property
    def directory(self) -> str:
        """The shard directory (reopenable via :meth:`open` after flush)."""
        return self._directory

    @property
    def cached_blocks(self) -> int:
        """Currently mapped blocks (the LRU test hook)."""
        with self._lock:
            return len(self._cache)

    # -- block machinery ---------------------------------------------------

    def _block_locked(self, block: int) -> np.memmap:
        """Map (or touch) one block; evict past the budget.  Caller holds
        ``self._lock``."""
        mapped = self._cache.get(block)
        if mapped is not None:
            self._cache.move_to_end(block)
            return mapped
        start = block * self._block_entries
        entries = min(self._size - start, self._block_entries)
        path = os.path.join(self._directory, f"block-{block:06d}.f64")
        mode = "r+" if os.path.exists(path) else "w+"
        mapped = np.memmap(path, dtype=np.float64, mode=mode, shape=(entries,))
        self._cache[block] = mapped
        while len(self._cache) > self._max_blocks:
            evicted, evicted_map = self._cache.popitem(last=False)
            if evicted == block:  # budget of one: keep the requested block
                self._cache[evicted] = evicted_map
                break
            if evicted in self._dirty:
                evicted_map.flush()
                self._dirty.discard(evicted)
            # Dropping the last reference unmaps the block -- that munmap
            # is what keeps RSS at the cache budget.
            del evicted_map
        return mapped

    def _segments(
        self, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
        """Group flat positions by block: (blocks, starts, stops, order).

        ``order`` is ``None`` when positions are already block-ascending
        (the structured-gather fast path); otherwise it is the stable
        permutation that sorts them by block.
        """
        blocks = positions // self._block_entries
        if blocks.size and np.any(blocks[:-1] > blocks[1:]):
            order = np.argsort(blocks, kind="stable")
            blocks = blocks[order]
        else:
            order = None
        bounds = np.flatnonzero(blocks[1:] != blocks[:-1]) + 1
        starts = np.concatenate(([0], bounds))
        stops = np.concatenate((bounds, [blocks.size]))
        return blocks, starts, stops, order

    # -- CondensedStore interface ------------------------------------------

    def read(self, start: int, stop: int) -> np.ndarray:
        out = np.empty(stop - start, dtype=np.float64)
        with self._lock:
            position = start
            while position < stop:
                block = position // self._block_entries
                boundary = min(stop, (block + 1) * self._block_entries)
                mapped = self._block_locked(block)
                local = position - block * self._block_entries
                out[position - start : boundary - start] = mapped[
                    local : local + (boundary - position)
                ]
                position = boundary
        return out

    def write(self, start: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        stop = start + values.size
        with self._lock:
            position = start
            while position < stop:
                block = position // self._block_entries
                boundary = min(stop, (block + 1) * self._block_entries)
                mapped = self._block_locked(block)
                local = position - block * self._block_entries
                mapped[local : local + (boundary - position)] = values[
                    position - start : boundary - start
                ]
                self._dirty.add(block)
                position = boundary

    def gather(self, positions: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        if out is None:
            out = np.empty(positions.shape, dtype=np.float64)
        flat_out = out.reshape(-1)
        flat_pos = positions.reshape(-1)
        if flat_pos.size == 0:
            return out
        with self._lock:
            blocks, starts, stops, order = self._segments(flat_pos)
            sorted_pos = flat_pos if order is None else flat_pos[order]
            gathered = flat_out if order is None else np.empty_like(flat_out)
            for seg_start, seg_stop in zip(starts, stops):
                block = int(blocks[seg_start])
                mapped = self._block_locked(block)
                np.take(
                    mapped,
                    sorted_pos[seg_start:seg_stop] - block * self._block_entries,
                    out=gathered[seg_start:seg_stop],
                )
            if order is not None:
                flat_out[order] = gathered
        return out

    def scatter(self, positions: np.ndarray, values: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.int64).reshape(-1)
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if positions.size != values.size:
            raise ConfigurationError(
                f"scatter got {positions.size} positions for {values.size} values"
            )
        if positions.size == 0:
            return
        with self._lock:
            blocks, starts, stops, order = self._segments(positions)
            sorted_pos = positions if order is None else positions[order]
            sorted_vals = values if order is None else values[order]
            for seg_start, seg_stop in zip(starts, stops):
                block = int(blocks[seg_start])
                mapped = self._block_locked(block)
                mapped[
                    sorted_pos[seg_start:seg_stop] - block * self._block_entries
                ] = sorted_vals[seg_start:seg_stop]
                self._dirty.add(block)

    def spawn(
        self,
        size: int,
        block_entries: int | None = None,
        cache_bytes: int | None = None,
    ) -> "MemmapStore":
        return MemmapStore.create(
            size,
            block_entries=block_entries or self._block_entries,
            cache_bytes=cache_bytes or self._cache_bytes,
            base_directory=self._base_directory,
        )

    def flush(self) -> None:
        with self._lock:
            for block in sorted(self._dirty):
                mapped = self._cache.get(block)
                if mapped is not None:
                    mapped.flush()
            self._dirty.clear()

    def close(self) -> None:
        """Flush, unmap everything, and (if owned) remove the shards."""
        self._finalizer()


def spec_of(store: CondensedStore) -> StoreSpec:
    """Reconstruct the :class:`StoreSpec` a store was built under (the
    knobs a sibling would inherit) -- used when a matrix must hand its
    configuration to a component that builds matrices itself."""
    if isinstance(store, MemmapStore):
        return StoreSpec(
            backend="memmap",
            block_entries=store.block_entries,
            cache_bytes=store._cache_bytes,
            directory=store._base_directory,
        )
    if isinstance(store, Float32Store):
        return StoreSpec(backend="float32", block_entries=store.block_entries)
    return StoreSpec(backend="memory")


def with_backend(spec: StoreSpec, backend: str) -> StoreSpec:
    """``spec`` with its backend swapped (knobs preserved)."""
    return replace(spec, backend=backend)
