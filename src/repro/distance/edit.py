"""Edit (Levenshtein) distance, on strings and on character comparison
matrices.

Section 2.3: "Edit distance algorithm returns the number of operations
required to transform a source string into a target string.  Available
operations are insertion, deletion and transformation of a character.
The algorithm makes use of the dynamic programming paradigm.  An
(n+1) x (m+1) matrix is iteratively filled ... Input of the edit distance
algorithm need not be the input strings [: a CCM] is equally expressive."

Both entry points share one DP core: the string variant derives the
substitution cost from character equality, the CCM variant reads it from
the matrix.  Unit costs (1 per insert/delete/substitute) follow the paper.
The DP is vectorised row-by-row with numpy, which keeps the third party's
bulk workload (one DP per cross-site string pair) fast enough for the
benchmark sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def _dp_edit_distance(substitution_cost: np.ndarray) -> int:
    """Core DP over a (rows x cols) 0/1 substitution-cost matrix.

    ``substitution_cost[q, p]`` is the cost of aligning target char ``q``
    with source char ``p``.  Rows correspond to the target string and
    columns to the source, matching the protocol's CCM orientation.
    """
    rows, cols = substitution_cost.shape
    previous = np.arange(cols + 1, dtype=np.int64)
    for q in range(rows):
        current = np.empty(cols + 1, dtype=np.int64)
        current[0] = q + 1
        # current[p] = min(previous[p] + 1,            # insert/delete
        #                  current[p-1] + 1,           # delete/insert
        #                  previous[p-1] + cost[q, p]) # substitute/match
        diagonal = previous[:-1] + substitution_cost[q]
        vertical = previous[1:] + 1
        best = np.minimum(diagonal, vertical)
        # The horizontal dependency is sequential; resolve it with a scan.
        running = current[0]
        for p in range(cols):
            running = min(best[p], running + 1)
            current[p + 1] = running
        previous = current
    return int(previous[-1])


def edit_distance(source: str, target: str) -> int:
    """Levenshtein distance between two strings (symmetric, unit costs)."""
    if source == target:
        return 0
    if not source:
        return len(target)
    if not target:
        return len(source)
    cost = np.ones((len(target), len(source)), dtype=np.int64)
    source_codes = np.frombuffer(source.encode("utf-32-le"), dtype=np.uint32)
    target_codes = np.frombuffer(target.encode("utf-32-le"), dtype=np.uint32)
    cost[np.equal.outer(target_codes, source_codes)] = 0
    return _dp_edit_distance(cost)


def edit_distance_from_ccm(ccm: np.ndarray) -> int:
    """Levenshtein distance computed from a character comparison matrix.

    ``ccm`` has one row per target character and one column per source
    character; entries are 0 for equal characters, non-zero otherwise
    (Figure 10 binarises before calling EditDistance).  Degenerate shapes
    encode empty strings: a (0, p) matrix means an empty target, so the
    distance is the source length, and vice versa.
    """
    if ccm.ndim != 2:
        raise ConfigurationError(f"CCM must be 2-D, got shape {ccm.shape}")
    rows, cols = ccm.shape
    if rows == 0:
        return cols
    if cols == 0:
        return rows
    cost = (ccm != 0).astype(np.int64)
    return _dp_edit_distance(cost)
