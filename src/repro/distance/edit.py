"""Edit (Levenshtein) distance, on strings and on character comparison
matrices.

Section 2.3: "Edit distance algorithm returns the number of operations
required to transform a source string into a target string.  Available
operations are insertion, deletion and transformation of a character.
The algorithm makes use of the dynamic programming paradigm.  An
(n+1) x (m+1) matrix is iteratively filled ... Input of the edit distance
algorithm need not be the input strings [: a CCM] is equally expressive."

All entry points share one DP core that is vectorised two ways: the
horizontal (in-row) dependency -- a min-plus prefix scan -- collapses to
``np.minimum.accumulate`` instead of a Python loop, and independent
string pairs of equal shape are stacked and solved *simultaneously*
along a batch axis.  The third party's bulk workload (one DP per
cross-site string pair) and the holders' local matrices both ride the
batch path.  Unit costs (1 per insert/delete/substitute) follow the
paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError


def _dp_edit_distance_batch(substitution_costs: np.ndarray) -> np.ndarray:
    """DP over a stack of (batch x rows x cols) 0/1 substitution costs.

    ``substitution_costs[b, q, p]`` is the cost of aligning target char
    ``q`` with source char ``p`` in pair ``b``.  The row recurrence

        current[p+1] = min(prev[p] + cost, prev[p+1] + 1, current[p] + 1)

    has a sequential horizontal term; substituting ``g_p = current[p+1]
    - p`` turns it into a running minimum (``g_p = min(g_{p-1}, best_p -
    p)``), which ``np.minimum.accumulate`` evaluates for every pair of
    the batch at once.
    """
    batch, rows, cols = substitution_costs.shape
    offsets = np.arange(cols, dtype=np.int64)
    previous = np.broadcast_to(
        np.arange(cols + 1, dtype=np.int64), (batch, cols + 1)
    ).copy()
    for q in range(rows):
        best = np.minimum(
            previous[:, :-1] + substitution_costs[:, q, :], previous[:, 1:] + 1
        )
        best -= offsets
        np.minimum(best[:, 0], q + 2, out=best[:, 0])
        np.minimum.accumulate(best, axis=1, out=best)
        previous[:, 0] = q + 1
        previous[:, 1:] = best + offsets
    return previous[:, -1]


def _dp_edit_distance(substitution_cost: np.ndarray) -> int:
    """Core DP over one (rows x cols) 0/1 substitution-cost matrix."""
    return int(_dp_edit_distance_batch(substitution_cost[None, :, :])[0])


#: Per-chunk budget for stacked cost matrices (int64 cells).  Batching
#: wins come from amortising row updates over a few thousand pairs;
#: beyond that, stacking only inflates peak memory.
_BATCH_CELL_BUDGET = 4_000_000


def _batch_chunk(rows: int, cols: int) -> int:
    return max(1, _BATCH_CELL_BUDGET // max(1, rows * cols))


def edit_distance(source: str, target: str) -> int:
    """Levenshtein distance between two strings (symmetric, unit costs)."""
    if source == target:
        return 0
    if not source:
        return len(target)
    if not target:
        return len(source)
    cost = np.ones((len(target), len(source)), dtype=np.int64)
    source_codes = np.frombuffer(source.encode("utf-32-le"), dtype=np.uint32)
    target_codes = np.frombuffer(target.encode("utf-32-le"), dtype=np.uint32)
    cost[np.equal.outer(target_codes, source_codes)] = 0
    return _dp_edit_distance(cost)


def edit_distance_from_ccm(ccm: np.ndarray) -> int:
    """Levenshtein distance computed from a character comparison matrix.

    ``ccm`` has one row per target character and one column per source
    character; entries are 0 for equal characters, non-zero otherwise
    (Figure 10 binarises before calling EditDistance).  Degenerate shapes
    encode empty strings: a (0, p) matrix means an empty target, so the
    distance is the source length, and vice versa.
    """
    if ccm.ndim != 2:
        raise ConfigurationError(f"CCM must be 2-D, got shape {ccm.shape}")
    rows, cols = ccm.shape
    if rows == 0:
        return cols
    if cols == 0:
        return rows
    cost = (ccm != 0).astype(np.int64)
    return _dp_edit_distance(cost)


def edit_distances_from_ccms(ccms: Sequence[np.ndarray]) -> np.ndarray:
    """Distances for many CCMs, batching equal-shaped DPs together.

    Output order matches the input order; shape groups are solved with
    one stacked DP each, so ``k`` uniform-length pairs cost ``rows``
    numpy row updates total instead of ``k * rows``.
    """
    out = np.empty(len(ccms), dtype=np.int64)
    groups: dict[tuple[int, int], list[int]] = {}
    for position, ccm in enumerate(ccms):
        if ccm.ndim != 2:
            raise ConfigurationError(f"CCM must be 2-D, got shape {ccm.shape}")
        rows, cols = ccm.shape
        if rows == 0:
            out[position] = cols
        elif cols == 0:
            out[position] = rows
        else:
            groups.setdefault((rows, cols), []).append(position)
    for (rows, cols), positions in groups.items():
        chunk = _batch_chunk(rows, cols)
        for start in range(0, len(positions), chunk):
            part = positions[start : start + chunk]
            stack = (np.stack([ccms[p] for p in part]) != 0).astype(np.int64)
            out[np.asarray(part)] = _dp_edit_distance_batch(stack)
    return out


def pairwise_edit_distances(strings: Sequence[str]) -> np.ndarray:
    """Condensed pairwise Levenshtein distances (Figure 2 order).

    The array twin of ``local_dissimilarity(strings, edit_distance)``:
    pair ``(i, j)`` with ``i > j`` lands at position ``i*(i-1)//2 + j``.
    Cost matrices of equal shape are batched through one stacked DP.
    """
    return pairwise_edit_distance_rows(strings, 0)


def pairwise_edit_distance_rows(strings: Sequence[str], first_row: int) -> np.ndarray:
    """Condensed rows ``first_row..n-1`` of the pairwise distance matrix.

    The strict-lower-triangle entries of rows ``>= first_row`` occupy one
    contiguous condensed segment (positions ``condensed_size(first_row)``
    onward), which is exactly the *delta tail* a data holder ships when
    ``n - first_row`` records arrive: distances of each new string to
    every earlier string, in Figure 2 order, without re-solving the
    O(first_row^2) DPs of the already-shipped triangle.
    """
    strings = list(strings)
    n = len(strings)
    if not 0 <= first_row <= n:
        raise ConfigurationError(
            f"first_row {first_row} out of range for {n} strings"
        )
    codes = [
        np.frombuffer(s.encode("utf-32-le"), dtype=np.uint32) for s in strings
    ]
    start = max(first_row, 1)
    tail_offset = start * (start - 1) // 2
    out = np.zeros(n * (n - 1) // 2 - tail_offset, dtype=np.int64)
    # Group pair *indices* by cost-matrix shape; cost matrices themselves
    # are materialised per bounded chunk to keep peak memory flat.
    groups: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
    position = 0
    for i in range(start, n):
        for j in range(i):
            source, target = strings[i], strings[j]
            if source == target:
                pass  # out already 0
            elif not source:
                out[position] = len(target)
            elif not target:
                out[position] = len(source)
            else:
                groups.setdefault((len(target), len(source)), []).append(
                    (position, i, j)
                )
            position += 1
    for (rows, cols), pairs in groups.items():
        chunk = _batch_chunk(rows, cols)
        for start in range(0, len(pairs), chunk):
            part = pairs[start : start + chunk]
            stack = np.stack(
                [
                    np.not_equal.outer(codes[j], codes[i])
                    for _pos, i, j in part
                ]
            ).astype(np.int64)
            out[np.asarray([pos for pos, _i, _j in part])] = (
                _dp_edit_distance_batch(stack)
            )
    return out
