"""Character comparison matrices (paper Section 2.3).

"An n x m equality comparison matrix for all pairs of characters in source
and target strings is equally expressive [as the strings themselves for
edit distance].  We call such matrices 'character comparison matrices'
... CCM_ST[i][j] is 0 if the i-th character of s is equal to the j-th
character of t and non-zero otherwise."

Orientation note: the protocol pseudocode (Figures 9-10) builds the
intermediary matrix with one **row per target character** and one
**column per source character**; we follow that orientation everywhere
(`shape == (len(target), len(source))`) so protocol code and this module
agree index-for-index.
"""

from __future__ import annotations

import numpy as np


def ccm_from_strings(source: str, target: str) -> np.ndarray:
    """Plaintext CCM: ``ccm[q, p] = 0`` iff ``target[q] == source[p]``.

    Returned as a ``uint8`` array of 0/1 entries.  This is the reference
    the privacy-preserving protocol must reproduce without either party
    revealing its string.
    """
    rows = len(target)
    cols = len(source)
    ccm = np.ones((rows, cols), dtype=np.uint8)
    for q, t_char in enumerate(target):
        for p, s_char in enumerate(source):
            if t_char == s_char:
                ccm[q, p] = 0
    return ccm


def ccm_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Shape and entry equality of two CCMs (entries compared as 0 / non-0)."""
    if a.shape != b.shape:
        return False
    return bool(np.array_equal(a != 0, b != 0))
