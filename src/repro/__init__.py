"""repro -- reproduction of İnan et al., *Privacy Preserving Clustering on
Horizontally Partitioned Data* (ICDE Workshops 2006).

The library lets ``k >= 2`` data holders, each owning a horizontal
partition of a data matrix, jointly construct the global dissimilarity
matrix of their objects with the help of a semi-trusted third party --
without revealing any private attribute value -- and then cluster it.

Quickstart
----------
>>> from repro import (
...     AttributeSpec, AttributeType, DataMatrix,
...     ClusteringSession, SessionConfig,
... )
>>> schema = [AttributeSpec("age", AttributeType.NUMERIC)]
>>> hospital_a = DataMatrix.from_rows(schema, [[34], [71]])
>>> hospital_b = DataMatrix.from_rows(schema, [[38], [67]])
>>> session = ClusteringSession(
...     SessionConfig(num_clusters=2),
...     {"A": hospital_a, "B": hospital_b},
... )
>>> result = session.run()
>>> sorted(len(c.members) for c in result.clusters)
[2, 2]

See ``examples/`` for end-to-end scenarios (bird-flu DNA clustering,
customer segmentation, private record linkage) and ``DESIGN.md`` for the
full system inventory.
"""

from repro.types import AttributeType, LinkageMethod, ProtocolRole
from repro.exceptions import (
    AttackError,
    ChannelError,
    ClusteringError,
    ConfigurationError,
    CryptoError,
    IntegrityError,
    KeyAgreementError,
    PartitionError,
    ProtocolError,
    ReproError,
    SchemaError,
)
from repro.data import AttributeSpec, DataMatrix, Schema, Taxonomy, horizontal_partition
from repro.distance import DissimilarityMatrix
from repro.core import (
    ClusteringResult,
    ClusteringSession,
    ProtocolSuiteConfig,
    SessionConfig,
)
from repro.clustering import (
    Dendrogram,
    agglomerative,
    cut_at_k,
    fcluster_by_height,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # enums / roles
    "AttributeType",
    "LinkageMethod",
    "ProtocolRole",
    # errors
    "ReproError",
    "ConfigurationError",
    "SchemaError",
    "PartitionError",
    "ProtocolError",
    "ChannelError",
    "IntegrityError",
    "CryptoError",
    "KeyAgreementError",
    "ClusteringError",
    "AttackError",
    # data
    "AttributeSpec",
    "Schema",
    "DataMatrix",
    "Taxonomy",
    "horizontal_partition",
    # distance
    "DissimilarityMatrix",
    # core protocol/session
    "ClusteringSession",
    "SessionConfig",
    "ProtocolSuiteConfig",
    "ClusteringResult",
    # clustering
    "Dendrogram",
    "agglomerative",
    "cut_at_k",
    "fcluster_by_height",
]
