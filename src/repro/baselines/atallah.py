"""Atallah-Kerschbaum-Du secure edit distance [8] (WPES 2003), rebuilt.

The İnan et al. paper cites this protocol only to dismiss it: "The
algorithm is not feasible for clustering private data due to high
communication costs" (Section 2).  The T-EDIT experiment substantiates
that sentence by running both protocols and weighing their wires, so the
baseline must actually exist.  This module reimplements its structure
over :mod:`repro.crypto.paillier`:

* the (n+1) x (m+1) edit-distance DP table is **additively shared**
  between Alice (who holds the source string) and Bob (target) -- neither
  ever sees a true cell value;
* the substitution cost ``t(i,j) = [a_i != b_j]`` is computed into shares
  with an encrypted-indicator-vector subprotocol: Alice ships, once per
  source character, the ciphertexts of its one-hot alphabet vector; Bob
  homomorphically flips and blinds the entry for his character;
* each DP cell runs a **blind-and-permute minimum**: Alice sends her
  blinded candidate shares encrypted, Bob adds his shares plus a common
  blind, permutes and re-randomises, Alice decrypts and selects the
  minimum, producing fresh output shares.

Documented simplification: in our minimum subprotocol Alice sees the
three candidates under a common unknown blind, so she learns their
*differences* (values in a small known range for DP neighbours); the
published protocol composes a further split-and-compare step to hide
them.  The quantity the İnan paper compares -- **a constant number of
Paillier ciphertexts per DP cell** -- is preserved exactly, and every
byte is counted off the real ciphertexts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.paillier import (
    PaillierCiphertext,
    generate_paillier_keypair,
)
from repro.crypto.prng import ReseedablePRNG
from repro.data.alphabet import Alphabet
from repro.exceptions import ProtocolError
from repro.network.serialization import serialized_size

#: Bit width of additive blinds; far above any DP value, far below n/3.
_BLIND_BITS = 48


@dataclass
class TrafficLog:
    """Byte/message accounting for one protocol run."""

    alice_to_bob_bytes: int = 0
    bob_to_alice_bytes: int = 0
    messages: int = 0
    ciphertexts: int = 0

    @property
    def total_bytes(self) -> int:
        return self.alice_to_bob_bytes + self.bob_to_alice_bytes

    def log_a2b(self, payload: object, ciphertexts: int = 0) -> None:
        self.alice_to_bob_bytes += serialized_size(payload)
        self.messages += 1
        self.ciphertexts += ciphertexts

    def log_b2a(self, payload: object, ciphertexts: int = 0) -> None:
        self.bob_to_alice_bytes += serialized_size(payload)
        self.messages += 1
        self.ciphertexts += ciphertexts


@dataclass(frozen=True)
class AtallahResult:
    """Outcome of one secure edit-distance computation."""

    distance: int
    traffic: TrafficLog = field(repr=False)


class AtallahEditDistance:
    """Two-party secure edit distance with an additively shared DP table.

    Parameters
    ----------
    alphabet:
        Finite alphabet both strings come from (the indicator-vector
        subprotocol sends ``alphabet.size`` ciphertexts per source char).
    alice_entropy, bob_entropy:
        Seeded generators for key generation, blinds and permutations --
        runs are reproducible.
    key_bits:
        Paillier modulus size.  1024 mirrors 2006-era security and is
        used by the cost benchmarks; tests shrink it for speed.
    """

    def __init__(
        self,
        alphabet: Alphabet,
        alice_entropy: ReseedablePRNG,
        bob_entropy: ReseedablePRNG,
        key_bits: int = 1024,
    ) -> None:
        self._alphabet = alphabet
        self._alice_rng = alice_entropy
        self._bob_rng = bob_entropy
        self._keys = generate_paillier_keypair(alice_entropy, bits=key_bits)

    # -- subprotocols -----------------------------------------------------

    def _encrypt_indicator_vectors(
        self, source: str, traffic: TrafficLog
    ) -> list[list[PaillierCiphertext]]:
        """Alice -> Bob: one-hot alphabet vector ciphertexts per source char."""
        public = self._keys.public_key
        vectors: list[list[PaillierCiphertext]] = []
        for ch in source:
            code = self._alphabet.index(ch)
            row = [
                public.encrypt(1 if c == code else 0, self._alice_rng)
                for c in range(self._alphabet.size)
            ]
            vectors.append(row)
        traffic.log_a2b(
            [[c.value for c in row] for row in vectors],
            ciphertexts=len(source) * self._alphabet.size,
        )
        return vectors

    def _substitution_cost_shares(
        self,
        vectors: list[list[PaillierCiphertext]],
        target: str,
        traffic: TrafficLog,
    ) -> tuple[list[list[int]], list[list[int]]]:
        """Shares of ``t(i, j) = [source_i != target_j]`` for all pairs.

        Bob computes ``E(1 - e[b_j] - r)`` from Alice's i-th vector,
        keeps ``r`` as his share, returns the ciphertext for Alice to
        decrypt as hers.
        """
        alice_shares: list[list[int]] = []
        bob_shares: list[list[int]] = []
        response: list[list[int]] = []
        for vector in vectors:
            alice_row: list[int] = []
            bob_row: list[int] = []
            cipher_row: list[int] = []
            for ch in target:
                code = self._alphabet.index(ch)
                blind = self._bob_rng.next_bits(_BLIND_BITS)
                flipped = (-1 * vector[code]).add_plain(1 - blind)
                flipped = flipped.rerandomize(self._bob_rng)
                cipher_row.append(flipped.value)
                bob_row.append(blind)
                alice_row.append(self._keys.private_key.decrypt(flipped))
            alice_shares.append(alice_row)
            bob_shares.append(bob_row)
            response.append(cipher_row)
        traffic.log_b2a(response, ciphertexts=sum(len(r) for r in response))
        return alice_shares, bob_shares

    def _secure_min3(
        self,
        alice_candidates: list[int],
        bob_candidates: list[int],
        traffic: TrafficLog,
    ) -> tuple[int, int]:
        """Blind-and-permute minimum over three additively shared values.

        Returns fresh output shares ``(alice_share, bob_share)`` with
        ``alice_share + bob_share == min_i(a_i + b_i)``.
        """
        if len(alice_candidates) != len(bob_candidates):
            raise ProtocolError("candidate share vectors must align")
        public = self._keys.public_key
        rho_alice = self._alice_rng.next_bits(_BLIND_BITS)
        encrypted = [
            public.encrypt(a + rho_alice, self._alice_rng) for a in alice_candidates
        ]
        traffic.log_a2b([c.value for c in encrypted], ciphertexts=len(encrypted))

        rho_bob = self._bob_rng.next_bits(_BLIND_BITS)
        combined = [
            cipher.add_plain(b + rho_bob).rerandomize(self._bob_rng)
            for cipher, b in zip(encrypted, bob_candidates)
        ]
        order = list(range(len(combined)))
        for i in range(len(order) - 1, 0, -1):  # Fisher-Yates with Bob's entropy
            j = self._bob_rng.next_below(i + 1)
            order[i], order[j] = order[j], order[i]
        permuted = [combined[i] for i in order]
        traffic.log_b2a([c.value for c in permuted], ciphertexts=len(permuted))

        blinded = [self._keys.private_key.decrypt(c) for c in permuted]
        best = min(blinded)  # = true_min + rho_alice + rho_bob
        # Output shares: Alice holds best - rho_alice (she knows both),
        # Bob holds -rho_bob; they sum to the true minimum.
        return best - rho_alice, -rho_bob

    # -- main protocol ------------------------------------------------------

    def compute(self, source: str, target: str) -> AtallahResult:
        """Run the full shared-DP edit distance between Alice's ``source``
        and Bob's ``target``; returns the distance plus traffic log."""
        self._alphabet.validate(source)
        self._alphabet.validate(target)
        traffic = TrafficLog()
        n, m = len(source), len(target)

        vectors = self._encrypt_indicator_vectors(source, traffic)
        cost_alice, cost_bob = self._substitution_cost_shares(
            vectors, target, traffic
        )

        # Shared DP table: row/column borders are public, split trivially.
        alice = [[0] * (m + 1) for _ in range(n + 1)]
        bob = [[0] * (m + 1) for _ in range(n + 1)]
        for i in range(n + 1):
            alice[i][0] = i
        for j in range(m + 1):
            alice[0][j] = j

        for i in range(1, n + 1):
            for j in range(1, m + 1):
                a_candidates = [
                    alice[i - 1][j] + 1,
                    alice[i][j - 1] + 1,
                    alice[i - 1][j - 1] + cost_alice[i - 1][j - 1],
                ]
                b_candidates = [
                    bob[i - 1][j],
                    bob[i][j - 1],
                    bob[i - 1][j - 1] + cost_bob[i - 1][j - 1],
                ]
                alice[i][j], bob[i][j] = self._secure_min3(
                    a_candidates, b_candidates, traffic
                )

        # Final share exchange reveals only the result (which is output).
        traffic.log_b2a(bob[n][m])
        distance = alice[n][m] + bob[n][m]
        return AtallahResult(distance=distance, traffic=traffic)
