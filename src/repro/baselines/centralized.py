"""The centralized (non-private) baseline.

A hypothetical *trusted* aggregator pools every partition and computes
the dissimilarity pipeline directly -- no masking, no protocols.  This is
the ground truth for the paper's central accuracy claim ("There is no
loss of accuracy as is the case in [3]", Section 2): the private
pipeline's matrices must equal these bit-for-bit.

The comparison functions are identical to the private pipeline's by
construction (including the fixed-point codec for numeric attributes):
the *comparison function* is public protocol knowledge (Section 3), so
both pipelines evaluating the same function is the faithful model.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.clustering.dendrogram import Dendrogram
from repro.clustering.linkage import agglomerative
from repro.data.matrix import AttributeSpec, DataMatrix
from repro.data.partition import GlobalIndex, merge_partitions
from repro.distance.categorical import categorical_distance
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.distance.edit import edit_distance
from repro.distance.local import local_dissimilarity
from repro.distance.merge import merge_weighted
from repro.distance.numeric import FixedPointCodec
from repro.types import AttributeType, LinkageMethod


def centralized_attribute_matrix(
    matrix: DataMatrix, spec: AttributeSpec
) -> DissimilarityMatrix:
    """Unnormalised global dissimilarity for one attribute, computed in
    the clear over pooled data."""
    column = matrix.column_by_name(spec.name)
    if spec.attr_type is AttributeType.NUMERIC:
        codec = FixedPointCodec(spec.precision)
        encoded = codec.encode_column(column)
        return local_dissimilarity(
            encoded, lambda a, b: codec.decode_distance(abs(a - b))
        )
    if spec.attr_type is AttributeType.ALPHANUMERIC:
        return local_dissimilarity(column, edit_distance)
    if spec.taxonomy is not None:
        return local_dissimilarity(column, spec.taxonomy.distance)
    return local_dissimilarity(column, categorical_distance)


def centralized_pipeline(
    partitions: Mapping[str, DataMatrix],
    weights: Sequence[float] | None = None,
    linkage: LinkageMethod | str = LinkageMethod.AVERAGE,
    num_clusters: int | None = None,
) -> tuple[DissimilarityMatrix, Dendrogram, list[int] | None, GlobalIndex]:
    """Full non-private pipeline over pooled partitions.

    Pools the partitions in the same canonical site order the private
    session uses, builds per-attribute matrices, normalises, merges with
    ``weights``, clusters, and optionally cuts at ``num_clusters``.

    Returns ``(merged_matrix, dendrogram, labels_or_None, global_index)``.
    """
    pooled, index = merge_partitions(partitions)
    per_attribute = [
        centralized_attribute_matrix(pooled, spec).normalized()
        for spec in pooled.schema
    ]
    merged = merge_weighted(per_attribute, weights)
    dendrogram = agglomerative(merged, linkage)
    labels = dendrogram.cut_at_k(num_clusters) if num_clusters is not None else None
    return merged, dendrogram, labels, index
