"""A sanitization baseline in the Oliveira-Zaiane family [1-3].

The paper positions itself against *data transformation* approaches:
"All of these works follow the sanitization approach and therefore
trade-off accuracy versus privacy" (Section 2).  To make that trade-off
measurable, this module implements a representative member of the
family: additive-noise-plus-rotation perturbation of numeric data
(rotation preserves Euclidean geometry, the additive noise supplies the
privacy, and the noise is what costs accuracy).

The T-ACC experiment runs this side by side with the paper's protocol:
the protocol reproduces centralized clustering exactly at every noise
level, while the sanitizer's accuracy degrades as its privacy parameter
grows -- precisely the contrast the paper draws.

This is a *behavioural* stand-in, not a line-by-line reimplementation of
[3] (which is dimensionality-reduction based); what the experiment needs
is the family's defining property -- perturbation noise trades accuracy
for privacy -- and that is what additive noise delivers in measurable
form.
"""

from __future__ import annotations

import numpy as np

from repro.data.matrix import AttributeSpec, DataMatrix, Schema
from repro.exceptions import ConfigurationError
from repro.types import AttributeType


class RotationSanitizer:
    """Rotate-then-perturb sanitizer for all-numeric data matrices.

    Parameters
    ----------
    noise_scale:
        Standard deviation of the additive Gaussian noise *relative to*
        each column's standard deviation.  0 means rotation only (which
        preserves pairwise Euclidean distances and therefore clustering);
        larger values buy privacy with accuracy.
    seed:
        Determinism for experiments.
    """

    def __init__(self, noise_scale: float = 0.1, seed: int = 0) -> None:
        if noise_scale < 0:
            raise ConfigurationError(f"noise_scale must be >= 0, got {noise_scale}")
        self.noise_scale = noise_scale
        self._seed = seed

    @staticmethod
    def _require_numeric(schema: Schema) -> None:
        for spec in schema:
            if spec.attr_type is not AttributeType.NUMERIC:
                raise ConfigurationError(
                    "RotationSanitizer handles numeric attributes only; "
                    f"{spec.name!r} is {spec.attr_type.value} -- exactly the "
                    "limitation the paper's protocol removes"
                )

    def _rotation(self, dim: int, rng: np.random.Generator) -> np.ndarray:
        """A uniformly random orthogonal matrix (QR of a Gaussian)."""
        gaussian = rng.normal(size=(dim, dim))
        q, r = np.linalg.qr(gaussian)
        # Fix the sign convention so the distribution is Haar-uniform.
        q = q * np.sign(np.diag(r))
        return q

    def sanitize(self, matrix: DataMatrix) -> DataMatrix:
        """Return a perturbed copy safe(ish) to hand to an untrusted miner."""
        self._require_numeric(matrix.schema)
        rng = np.random.default_rng(self._seed)
        data = np.asarray(
            [[float(v) for v in row] for row in matrix.rows], dtype=np.float64
        )
        if data.size == 0:
            return matrix
        rotation = self._rotation(data.shape[1], rng)
        rotated = data @ rotation
        if self.noise_scale > 0:
            column_std = data.std(axis=0)
            column_std[column_std == 0] = 1.0
            noise = rng.normal(scale=self.noise_scale * column_std, size=data.shape)
            rotated = rotated + noise
        rounded_schema = [
            AttributeSpec(spec.name, spec.attr_type, precision=15)
            for spec in matrix.schema
        ]
        return DataMatrix(
            rounded_schema, [[float(v) for v in row] for row in rotated]
        )
