"""Comparison baselines.

* :mod:`repro.baselines.centralized` -- the non-private ground truth: a
  trusted aggregator pools all partitions and computes the dissimilarity
  matrix directly.  The paper claims its protocol loses *nothing*
  relative to this (T-ACC experiment).
* :mod:`repro.baselines.sanitization` -- a rotation-based data
  transformation in the spirit of Oliveira & Zaiane [1-3]: the approach
  family the paper contrasts against, which trades accuracy for privacy.
* :mod:`repro.baselines.atallah` -- Atallah, Kerschbaum & Du's secure
  edit-distance protocol [8], reimplemented over our Paillier; the paper
  dismisses it as communication-infeasible (T-EDIT experiment).
"""

from repro.baselines.atallah import AtallahEditDistance
from repro.baselines.centralized import centralized_attribute_matrix, centralized_pipeline
from repro.baselines.sanitization import RotationSanitizer

__all__ = [
    "AtallahEditDistance",
    "centralized_attribute_matrix",
    "centralized_pipeline",
    "RotationSanitizer",
]
