"""Persistence for the third party's artefacts.

The TP's long-lived state is the dissimilarity matrix (kept secret,
Section 5), the dendrogram, and the published result.  This module
serialises all three: matrices to ``.npz`` (condensed storage, exact),
dendrograms and results to JSON (human-inspectable, exact for the
float64 heights via ``repr`` round-tripping).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.clustering.dendrogram import Dendrogram, Merge
from repro.core.results import ClusteringResult
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ConfigurationError

PathLike = Union[str, Path]

_MATRIX_FORMAT = "repro.dissimilarity.v1"
_DENDROGRAM_FORMAT = "repro.dendrogram.v1"
_RESULT_FORMAT = "repro.result.v1"


def save_matrix(matrix: DissimilarityMatrix, path: PathLike) -> None:
    """Write a dissimilarity matrix to ``path`` (numpy ``.npz``)."""
    np.savez_compressed(
        Path(path),
        format=np.asarray(_MATRIX_FORMAT),
        num_objects=np.asarray(matrix.num_objects),
        condensed=np.asarray(matrix.condensed),
    )


def load_matrix(path: PathLike) -> DissimilarityMatrix:
    """Inverse of :func:`save_matrix`; validates the format marker."""
    with np.load(Path(path), allow_pickle=False) as data:
        if str(data["format"]) != _MATRIX_FORMAT:
            raise ConfigurationError(
                f"{path} is not a saved dissimilarity matrix"
            )
        return DissimilarityMatrix(
            int(data["num_objects"]), data["condensed"].copy()
        )


def save_dendrogram(dendrogram: Dendrogram, path: PathLike) -> None:
    """Write a dendrogram to ``path`` (JSON)."""
    document = {
        "format": _DENDROGRAM_FORMAT,
        "num_leaves": dendrogram.num_leaves,
        "merges": [
            # repr() round-trips float64 exactly through JSON.
            [m.left, m.right, repr(m.height), m.size]
            for m in dendrogram.merges
        ],
    }
    Path(path).write_text(json.dumps(document, indent=2))


def load_dendrogram(path: PathLike) -> Dendrogram:
    """Inverse of :func:`save_dendrogram`."""
    document = json.loads(Path(path).read_text())
    if document.get("format") != _DENDROGRAM_FORMAT:
        raise ConfigurationError(f"{path} is not a saved dendrogram")
    merges = [
        Merge(left=left, right=right, height=float(height), size=size)
        for left, right, height, size in document["merges"]
    ]
    return Dendrogram(document["num_leaves"], merges)


def save_result(result: ClusteringResult, path: PathLike) -> None:
    """Write a published clustering result to ``path`` (JSON)."""
    document = {"format": _RESULT_FORMAT, "payload": result.to_payload()}
    Path(path).write_text(json.dumps(document, indent=2))


def load_result(path: PathLike) -> ClusteringResult:
    """Inverse of :func:`save_result`."""
    document = json.loads(Path(path).read_text())
    if document.get("format") != _RESULT_FORMAT:
        raise ConfigurationError(f"{path} is not a saved clustering result")
    payload = document["payload"]
    # JSON turns the (site, local_id) tuples into lists; normalise back.
    payload["clusters"] = [
        [tuple(member) for member in cluster] for cluster in payload["clusters"]
    ]
    return ClusteringResult.from_payload(payload)
