"""The numeric comparison protocol (paper Section 4.1, Figures 4-6).

Three roles compute ``|x - y|`` for every cross-site pair without
revealing ``x``, ``y`` or even the sign of ``x - y``:

* **DHJ (initiator)** masks each value twice: a *sign* decided by the
  generator shared with DHK (``rng_JK``) -- if the draw is odd DHJ
  negates, otherwise DHK will -- and an *additive mask* drawn from the
  generator shared with the third party (``rng_JT``)::

      DH'J[n] = rng_JT.next() + DHJ[n] * (-1)^(rng_JK.next() % 2)

* **DHK (responder)** builds the pairwise comparison matrix, adding its
  own (complementarily signed) value to every masked input and
  re-initialising ``rng_JK`` at each row so the sign draws re-align with
  DHJ's::

      s[m][n] = DH'J[n] + DHK[m] * (-1)^((rng_JK.next() + 1) % 2)

* **TP** regenerates the additive masks (it shares ``rng_JT``'s seed)
  and recovers ``|x - y| = |s[m][n] - rng_JT.next()|``, re-initialising
  per row for the same alignment reason.

The functions below are pure protocol steps over *encoded integers*
(see :class:`repro.distance.numeric.FixedPointCodec`); party classes in
:mod:`repro.parties` wire them to the network.

Erratum note: Figure 5's step 1 reads "Initialize rngJT with seed rJT",
but DHK never holds ``r_JT`` -- from the protocol description and
Figure 3 it must be ``rng_JK``/``r_JK``; we implement the corrected
version.

Both modes of Section 4.1 are provided: the default **batch** mode
(one mask per initiator value, reused down the responder's rows -- cheap
but open to the frequency attack of :mod:`repro.attacks.frequency`) and
the **per-pair** mitigation ("unique random numbers for each object
pair") with its higher communication cost.

Vectorization
-------------
Every step is implemented as array operations: masks and sign bits are
drawn in one block (:meth:`~repro.crypto.prng.ReseedablePRNG.next_bits_block`
/ :meth:`~repro.crypto.prng.ReseedablePRNG.next_sign_bits`), the
responder matrix is one broadcast ``masked[None, :] + sign * own[:, None]``
and the TP unmask one ``np.abs`` over the block.  Arithmetic runs in
``int64`` when masks and data provably fit; otherwise (notably the
default 64-bit masks and any ``mask_bits > 64`` configuration) it falls
back to object-dtype arrays of Python ints, which keep exact arbitrary
precision.  Both paths emit bitwise the same values as the scalar
reference in :mod:`repro.core.reference` -- not a single protocol
message changes; property tests pin that equivalence.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.crypto.prng import ReseedablePRNG
from repro.exceptions import ProtocolError

#: Largest magnitude (exclusive) that keeps ``mask + sign*x`` and
#: ``masked + sign*y`` provably inside int64: two operands below 2^62
#: sum below 2^63.
_INT64_HEADROOM = 1 << 62


def _as_checked_int64(values, bound: int = _INT64_HEADROOM) -> np.ndarray | None:
    """``values`` as an int64 array iff integral and below ``bound``.

    Anything non-integral (floats would silently truncate) or too large
    is handed to the exact object-dtype path instead.
    """
    try:
        arr = np.asarray(values)
    except (OverflowError, TypeError, ValueError):
        return None
    if arr.dtype.kind not in "iu":
        return None
    if arr.size:
        low, high = int(arr.min()), int(arr.max())
        if high >= bound or low <= -bound:
            return None
    return arr.astype(np.int64)


def _exact(value):
    """Integral types as Python ints (unbounded, overflow-proof); anything
    else passes through untouched, matching the scalar reference."""
    return int(value) if isinstance(value, (int, np.integer)) else value


def _object_vector(values) -> np.ndarray:
    """1-D object array for the exact-arithmetic path."""
    out = np.empty(len(values), dtype=object)
    out[:] = [_exact(v) for v in values]
    return out


def _object_matrix(rows: Sequence[Sequence[int]], cols: int) -> np.ndarray:
    """2-D object array from a rectangular list of lists."""
    out = np.empty((len(rows), cols), dtype=object)
    for i, row in enumerate(rows):
        out[i, :] = [_exact(v) for v in row]
    return out


def _rectangular_shape(matrix: Sequence[Sequence[int]], what: str) -> tuple[int, int]:
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    for row in matrix:
        if len(row) != cols:
            raise ProtocolError(f"{what} must be rectangular")
    return rows, cols


def _signs_from_bits(sign_bits: np.ndarray, negate_on_one: bool) -> np.ndarray:
    """Map draw parity to +-1: DHJ negates on odd draws, DHK on even."""
    if negate_on_one:
        return np.where(sign_bits == 1, -1, 1)
    return np.where(sign_bits == 1, 1, -1)


def _masks_as_array(masks: np.ndarray, use_int64: bool) -> np.ndarray:
    """Block-drawn masks as a signed array for the chosen arithmetic path.

    ``next_bits_block`` returns ``uint64`` for widths up to 64 and an
    object array beyond; casting to ``object`` yields Python ints, so
    downstream arithmetic is exact either way.
    """
    if use_int64:
        return masks.astype(np.int64)
    return masks.astype(object)


# -- batch mode (Figures 4-6 verbatim) ----------------------------------------


def initiator_mask_batch(
    values: Sequence[int],
    rng_jk: ReseedablePRNG,
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> list[int]:
    """Figure 4 -- DHJ's step.

    One sign draw from ``rng_JK`` and one additive mask from ``rng_JT``
    per value, both drawn as a single block.  Returns the disguised
    vector ``DH'J`` sent to DHK.
    """
    values = list(values)
    n = len(values)
    if n == 0:
        return []
    sign_bits = rng_jk.next_sign_bits(n)
    masks = rng_jt.next_bits_block(n, mask_bits)
    v64 = _as_checked_int64(values) if mask_bits <= 62 else None
    if v64 is not None:
        signs = _signs_from_bits(sign_bits, negate_on_one=True)
        masked = masks.astype(np.int64) + signs * v64
    else:
        signs = _signs_from_bits(sign_bits, negate_on_one=True).astype(object)
        masked = _masks_as_array(masks, use_int64=False) + signs * _object_vector(values)
    return masked.tolist()


def responder_matrix_batch(
    own_values: Sequence[int],
    masked_initiator: Sequence[int],
    rng_jk: ReseedablePRNG,
) -> list[list[int]]:
    """Figure 5 -- DHK's step.

    Builds the ``len(own_values) x len(masked_initiator)`` comparison
    matrix ``s`` as one broadcast.  ``rng_JK`` is re-initialised at the
    end of every row "to be able to remember the oddness/evenness of the
    random numbers generated at site DHJ" -- the sign draws are therefore
    identical across rows, so one block draw plus one reset reproduces
    the scalar per-row choreography exactly.
    """
    own_values = list(own_values)
    masked_initiator = list(masked_initiator)
    if not own_values:
        return []
    # The scalar loop resets after every row, so row 0 consumes the
    # generator's entry stream and rows 1+ the post-reset stream (they
    # coincide whenever the generator starts fresh, as in sessions).
    first_bits = rng_jk.next_sign_bits(len(masked_initiator))
    rng_jk.reset()
    rest_bits = first_bits
    if len(own_values) > 1:
        rest_bits = rng_jk.next_sign_bits(len(masked_initiator))
        rng_jk.reset()
    m64 = _as_checked_int64(masked_initiator)
    o64 = _as_checked_int64(own_values) if m64 is not None else None
    if o64 is not None:
        first_signs = _signs_from_bits(first_bits, negate_on_one=False)
        rest_signs = _signs_from_bits(rest_bits, negate_on_one=False)
        matrix = np.asarray(m64)[None, :] + rest_signs[None, :] * o64[:, None]
        matrix[0] = m64 + first_signs * o64[0]
    else:
        first_signs = _signs_from_bits(first_bits, negate_on_one=False).astype(object)
        rest_signs = _signs_from_bits(rest_bits, negate_on_one=False).astype(object)
        masked_obj = _object_vector(masked_initiator)
        own_obj = _object_vector(own_values)
        matrix = masked_obj[None, :] + rest_signs[None, :] * own_obj[:, None]
        matrix[0] = masked_obj + first_signs * own_obj[0]
    return matrix.tolist()


def third_party_unmask_batch(
    comparison_matrix: Sequence[Sequence[int]],
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> np.ndarray:
    """Figure 6 -- TP's step.

    Subtracts the regenerated masks and takes absolute values in one
    ``np.abs`` over the block, giving the cross-site distance block
    ``J_K[m][n] = |x_n - y_m|`` (rows are DHK's objects, columns DHJ's).
    ``rng_JT`` re-initialises per row because every column is disguised
    with the same mask in batch mode -- so one block draw plus one reset
    regenerates every row's masks.

    ``mask_bits`` is a public protocol parameter: the pseudocode leaves
    the mask domain implicit, but TP can only redraw identical masks when
    it knows their width.
    """
    comparison_matrix = list(comparison_matrix)
    rows, cols = _rectangular_shape(comparison_matrix, "comparison matrix")
    if rows == 0:
        return np.zeros((0, 0), dtype=np.int64)
    # Scalar semantics: row 0 unmasks with the generator's entry stream,
    # rows 1+ with the post-reset stream (identical for fresh generators).
    first_masks = rng_jt.next_bits_block(cols, mask_bits)
    rng_jt.reset()
    rest_masks = first_masks
    if rows > 1:
        rest_masks = rng_jt.next_bits_block(cols, mask_bits)
        rng_jt.reset()
    m64 = None
    if mask_bits <= 62:
        m64 = _as_checked_int64(comparison_matrix)
    if m64 is not None:
        distances = np.abs(m64 - rest_masks.astype(np.int64)[None, :])
        distances[0] = np.abs(m64[0] - first_masks.astype(np.int64))
        return distances
    matrix = _object_matrix(comparison_matrix, cols)
    distances = np.abs(matrix - _masks_as_array(rest_masks, use_int64=False)[None, :])
    distances[0] = np.abs(matrix[0] - _masks_as_array(first_masks, use_int64=False))
    return distances


# -- per-pair mode (the Section 4.1 frequency-attack mitigation) ---------------


def initiator_mask_per_pair(
    values: Sequence[int],
    responder_size: int,
    rng_jk: ReseedablePRNG,
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> list[list[int]]:
    """Per-pair DHJ step: a fresh sign and mask for every (m, n) pair.

    Output is a ``responder_size x len(values)`` matrix; row ``m`` holds
    the masked copies of DHJ's vector destined for the responder's object
    ``m``.  Draws are row-major so all three parties stay aligned with no
    re-initialisation at all; the sign and mask generators are
    independent streams, so both blocks are drawn in one call each.
    """
    if responder_size < 0:
        raise ProtocolError(f"responder_size must be >= 0, got {responder_size}")
    values = list(values)
    n = len(values)
    total = responder_size * n
    if total == 0:
        return [[] for _ in range(responder_size)]
    sign_bits = rng_jk.next_sign_bits(total)
    masks = rng_jt.next_bits_block(total, mask_bits)
    v64 = _as_checked_int64(values) if mask_bits <= 62 else None
    if v64 is not None:
        signs = _signs_from_bits(sign_bits, negate_on_one=True)
        matrix = masks.astype(np.int64).reshape(responder_size, n) + signs.reshape(
            responder_size, n
        ) * v64[None, :]
    else:
        signs = _signs_from_bits(sign_bits, negate_on_one=True).astype(object)
        matrix = _masks_as_array(masks, use_int64=False).reshape(
            responder_size, n
        ) + signs.reshape(responder_size, n) * _object_vector(values)[None, :]
    return matrix.tolist()


def responder_matrix_per_pair(
    own_values: Sequence[int],
    masked_matrix: Sequence[Sequence[int]],
    rng_jk: ReseedablePRNG,
) -> list[list[int]]:
    """Per-pair DHK step: complement each pair's unique sign draw."""
    own_values = list(own_values)
    masked_matrix = list(masked_matrix)
    if len(masked_matrix) != len(own_values):
        raise ProtocolError(
            f"masked matrix has {len(masked_matrix)} rows for "
            f"{len(own_values)} responder values"
        )
    rows, cols = _rectangular_shape(masked_matrix, "masked matrix")
    total = rows * cols
    if total == 0:
        return [[] for _ in range(rows)]
    sign_bits = rng_jk.next_sign_bits(total).reshape(rows, cols)
    m64 = _as_checked_int64(masked_matrix)
    o64 = _as_checked_int64(own_values) if m64 is not None else None
    if o64 is not None:
        signs = _signs_from_bits(sign_bits, negate_on_one=False)
        matrix = m64 + signs * o64[:, None]
    else:
        signs = _signs_from_bits(sign_bits, negate_on_one=False).astype(object)
        matrix = _object_matrix(masked_matrix, cols) + signs * _object_vector(
            own_values
        )[:, None]
    return matrix.tolist()


def third_party_unmask_per_pair(
    comparison_matrix: Sequence[Sequence[int]],
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> np.ndarray:
    """Per-pair TP step: masks are consumed row-major, never re-used."""
    comparison_matrix = list(comparison_matrix)
    rows, cols = _rectangular_shape(comparison_matrix, "comparison matrix")
    total = rows * cols
    if total == 0:
        return np.zeros((rows, cols), dtype=np.int64)
    masks = rng_jt.next_bits_block(total, mask_bits)
    m64 = None
    if mask_bits <= 62:
        m64 = _as_checked_int64(comparison_matrix)
    if m64 is not None:
        return np.abs(m64 - masks.astype(np.int64).reshape(rows, cols))
    matrix = _object_matrix(comparison_matrix, cols)
    return np.abs(matrix - _masks_as_array(masks, use_int64=False).reshape(rows, cols))
