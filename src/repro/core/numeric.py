"""The numeric comparison protocol (paper Section 4.1, Figures 4-6).

Three roles compute ``|x - y|`` for every cross-site pair without
revealing ``x``, ``y`` or even the sign of ``x - y``:

* **DHJ (initiator)** masks each value twice: a *sign* decided by the
  generator shared with DHK (``rng_JK``) -- if the draw is odd DHJ
  negates, otherwise DHK will -- and an *additive mask* drawn from the
  generator shared with the third party (``rng_JT``)::

      DH'J[n] = rng_JT.next() + DHJ[n] * (-1)^(rng_JK.next() % 2)

* **DHK (responder)** builds the pairwise comparison matrix, adding its
  own (complementarily signed) value to every masked input and
  re-initialising ``rng_JK`` at each row so the sign draws re-align with
  DHJ's::

      s[m][n] = DH'J[n] + DHK[m] * (-1)^((rng_JK.next() + 1) % 2)

* **TP** regenerates the additive masks (it shares ``rng_JT``'s seed)
  and recovers ``|x - y| = |s[m][n] - rng_JT.next()|``, re-initialising
  per row for the same alignment reason.

The functions below are pure protocol steps over *encoded integers*
(see :class:`repro.distance.numeric.FixedPointCodec`); party classes in
:mod:`repro.parties` wire them to the network.

Erratum note: Figure 5's step 1 reads "Initialize rngJT with seed rJT",
but DHK never holds ``r_JT`` -- from the protocol description and
Figure 3 it must be ``rng_JK``/``r_JK``; we implement the corrected
version.

Both modes of Section 4.1 are provided: the default **batch** mode
(one mask per initiator value, reused down the responder's rows -- cheap
but open to the frequency attack of :mod:`repro.attacks.frequency`) and
the **per-pair** mitigation ("unique random numbers for each object
pair") with its higher communication cost.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.prng import ReseedablePRNG
from repro.exceptions import ProtocolError


def _signed(value: int, negate: bool) -> int:
    return -value if negate else value


# -- batch mode (Figures 4-6 verbatim) ----------------------------------------


def initiator_mask_batch(
    values: Sequence[int],
    rng_jk: ReseedablePRNG,
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> list[int]:
    """Figure 4 -- DHJ's step.

    One sign draw from ``rng_JK`` and one additive mask from ``rng_JT``
    per value.  Returns the disguised vector ``DH'J`` sent to DHK.
    """
    masked = []
    for value in values:
        negate = rng_jk.next_sign_bit() == 1
        mask = rng_jt.next_bits(mask_bits)
        masked.append(mask + _signed(value, negate))
    return masked


def responder_matrix_batch(
    own_values: Sequence[int],
    masked_initiator: Sequence[int],
    rng_jk: ReseedablePRNG,
) -> list[list[int]]:
    """Figure 5 -- DHK's step.

    Builds the ``len(own_values) x len(masked_initiator)`` comparison
    matrix ``s``.  ``rng_JK`` is re-initialised at the end of every row
    "to be able to remember the oddness/evenness of the random numbers
    generated at site DHJ" -- i.e. so column ``n`` always re-derives the
    sign DHJ used for its input ``n``.
    """
    matrix: list[list[int]] = []
    for own in own_values:
        row = []
        for masked in masked_initiator:
            initiator_negated = rng_jk.next_sign_bit() == 1
            row.append(masked + _signed(own, not initiator_negated))
        rng_jk.reset()
        matrix.append(row)
    return matrix


def third_party_unmask_batch(
    comparison_matrix: Sequence[Sequence[int]],
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> list[list[int]]:
    """Figure 6 -- TP's step.

    Subtracts the regenerated masks and takes absolute values, giving the
    cross-site distance block ``J_K[m][n] = |x_n - y_m|`` (rows are DHK's
    objects, columns DHJ's).  ``rng_JT`` re-initialises per row because
    every column is disguised with the same mask in batch mode.

    ``mask_bits`` is a public protocol parameter: the pseudocode leaves
    the mask domain implicit, but TP can only redraw identical masks when
    it knows their width.
    """
    distances: list[list[int]] = []
    for row in comparison_matrix:
        out_row = []
        for entry in row:
            mask = rng_jt.next_bits(mask_bits)
            out_row.append(abs(entry - mask))
        rng_jt.reset()
        distances.append(out_row)
    return distances


# -- per-pair mode (the Section 4.1 frequency-attack mitigation) ---------------


def initiator_mask_per_pair(
    values: Sequence[int],
    responder_size: int,
    rng_jk: ReseedablePRNG,
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> list[list[int]]:
    """Per-pair DHJ step: a fresh sign and mask for every (m, n) pair.

    Output is a ``responder_size x len(values)`` matrix; row ``m`` holds
    the masked copies of DHJ's vector destined for the responder's object
    ``m``.  Draws are row-major so all three parties stay aligned with no
    re-initialisation at all.
    """
    if responder_size < 0:
        raise ProtocolError(f"responder_size must be >= 0, got {responder_size}")
    matrix = []
    for _m in range(responder_size):
        row = []
        for value in values:
            negate = rng_jk.next_sign_bit() == 1
            mask = rng_jt.next_bits(mask_bits)
            row.append(mask + _signed(value, negate))
        matrix.append(row)
    return matrix


def responder_matrix_per_pair(
    own_values: Sequence[int],
    masked_matrix: Sequence[Sequence[int]],
    rng_jk: ReseedablePRNG,
) -> list[list[int]]:
    """Per-pair DHK step: complement each pair's unique sign draw."""
    if len(masked_matrix) != len(own_values):
        raise ProtocolError(
            f"masked matrix has {len(masked_matrix)} rows for "
            f"{len(own_values)} responder values"
        )
    matrix = []
    for own, masked_row in zip(own_values, masked_matrix):
        row = []
        for masked in masked_row:
            initiator_negated = rng_jk.next_sign_bit() == 1
            row.append(masked + _signed(own, not initiator_negated))
        matrix.append(row)
    return matrix


def third_party_unmask_per_pair(
    comparison_matrix: Sequence[Sequence[int]],
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> list[list[int]]:
    """Per-pair TP step: masks are consumed row-major, never re-used."""
    distances = []
    for row in comparison_matrix:
        out_row = []
        for entry in row:
            mask = rng_jt.next_bits(mask_bits)
            out_row.append(abs(entry - mask))
        distances.append(out_row)
    return distances


