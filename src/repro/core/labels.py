"""Derivation labels shared by data holders and the third party.

Every PRNG stream and key in the system is derived from a pairwise secret
plus a *label*.  Labels must (a) be computable by both endpoints without
communication and (b) never collide across attributes, protocol kinds,
role assignments or pair members -- stream reuse would void the masking
arguments of Sections 4.1-4.2.  Centralising the label grammar here keeps
holders and the TP in exact agreement.
"""

from __future__ import annotations


def numeric_jk(attribute: str, initiator: str, responder: str) -> str:
    """``rng_JK`` for the numeric protocol (shared by the two holders)."""
    return f"num-jk|{attribute}|{initiator}>{responder}"


def numeric_jt(attribute: str, initiator: str, responder: str) -> str:
    """``rng_JT`` for the numeric protocol (initiator and third party).

    Includes the responder so each (J, K) pairing gets an independent
    mask stream even though the secret binds only J and TP.
    """
    return f"num-jt|{attribute}|{initiator}>{responder}"


def alnum_jt(attribute: str, initiator: str, responder: str) -> str:
    """``rng_JT`` for the alphanumeric protocol."""
    return f"alnum-jt|{attribute}|{initiator}>{responder}"


def channel_key(party_a: str, party_b: str) -> str:
    """Symmetric key securing the link between two parties."""
    first, second = sorted((party_a, party_b))
    return f"channel|{first}|{second}"


def group_key_label() -> str:
    """Label under which the holder group's categorical key is wrapped
    for distribution (the key itself is random, not derived)."""
    return "categorical-group-key"
