"""Derivation labels shared by data holders and the third party.

Every PRNG stream and key in the system is derived from a pairwise secret
plus a *label*.  Labels must (a) be computable by both endpoints without
communication and (b) never collide across attributes, protocol kinds,
role assignments or pair members -- stream reuse would void the masking
arguments of Sections 4.1-4.2.  Centralising the label grammar here keeps
holders and the TP in exact agreement.
"""

from __future__ import annotations


def attribute_tag(spec) -> str:
    """Wire/accounting tag of one attribute's protocol traffic.

    Shared by holders (tagging every frame they send), the third party
    and the construction scheduler (selecting the delivery *lane* a
    receive step pops from), so all three always agree on which lane a
    run's messages ride.  ``spec`` is any object with ``attr_type`` and
    ``name`` (an :class:`repro.data.matrix.AttributeSpec`).
    """
    return f"{spec.attr_type.value}/{spec.name}"


def numeric_jk(attribute: str, initiator: str, responder: str) -> str:
    """``rng_JK`` for the numeric protocol (shared by the two holders)."""
    return f"num-jk|{attribute}|{initiator}>{responder}"


def numeric_jt(attribute: str, initiator: str, responder: str) -> str:
    """``rng_JT`` for the numeric protocol (initiator and third party).

    Includes the responder so each (J, K) pairing gets an independent
    mask stream even though the secret binds only J and TP.
    """
    return f"num-jt|{attribute}|{initiator}>{responder}"


def alnum_jt(attribute: str, initiator: str, responder: str) -> str:
    """``rng_JT`` for the alphanumeric protocol."""
    return f"alnum-jt|{attribute}|{initiator}>{responder}"


#: Delta-construction run parts (:mod:`repro.core.delta`).  The grown
#: site always responds with its arrival rows; ``"grow"`` compares them
#: against the initiator's *full* column, ``"base"`` against the
#: initiator's *pre-epoch base* only (its own arrivals already met the
#: responder's in the pair's ``"grow"`` run).  Together they cover each
#: new cross pair exactly once.
DELTA_PARTS = ("grow", "base")


def _delta_scope(epoch: int, part: str) -> str:
    """Label suffix for one delta run.

    Position-independent by construction: the scope names the ingest
    *epoch* (a monotone counter every party tracks) and the run *part*,
    never global matrix positions -- so the protocol transcript for a
    given pair's arrival batch is identical no matter how other sites'
    growth shifted the global frame.  The epoch keeps mask streams unique
    across a session's whole history (a site may shrink and regrow over
    the same local id range; its runs still never share a stream).
    """
    if part not in DELTA_PARTS:
        raise ValueError(f"unknown delta part {part!r}; available: {DELTA_PARTS}")
    if epoch < 1:
        raise ValueError(f"delta epoch must be >= 1, got {epoch}")
    return f"delta{epoch}|{part}"


def numeric_jk_delta(
    attribute: str, initiator: str, responder: str, epoch: int, part: str
) -> str:
    """``rng_JK`` for one numeric delta run."""
    return f"{numeric_jk(attribute, initiator, responder)}|{_delta_scope(epoch, part)}"


def numeric_jt_delta(
    attribute: str, initiator: str, responder: str, epoch: int, part: str
) -> str:
    """``rng_JT`` for one numeric delta run."""
    return f"{numeric_jt(attribute, initiator, responder)}|{_delta_scope(epoch, part)}"


def alnum_jt_delta(
    attribute: str, initiator: str, responder: str, epoch: int, part: str
) -> str:
    """``rng_JT`` for one alphanumeric delta run."""
    return f"{alnum_jt(attribute, initiator, responder)}|{_delta_scope(epoch, part)}"


def channel_key(party_a: str, party_b: str) -> str:
    """Symmetric key securing the link between two parties."""
    first, second = sorted((party_a, party_b))
    return f"channel|{first}|{second}"


def group_key_label() -> str:
    """Label under which the holder group's categorical key is wrapped
    for distribution (the key itself is random, not derived)."""
    return "categorical-group-key"
