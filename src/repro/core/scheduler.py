"""Pipelined construction scheduling (Figure 11 as a step graph).

The seed drove matrix construction as one strictly sequential loop:
every holder's local matrix shipped and landed before the first
comparison run started, and every attribute completed before the next
began.  Nothing in the protocol requires that -- each of the ``C(k, 2)``
comparison runs per attribute uses its own pairwise-derived generators,
and the third party's block writes touch disjoint regions -- so this
module decomposes construction into *schedulable steps* (ship local
matrix, initiate, respond, absorb a block, finalize) with explicit
dependencies, and executes any interleaving the dependency graph and the
FIFO network admit.

Three ordering policies ship:

* ``"sequential"`` replays the seed's exact global order -- on sealed
  channels every wire byte, including each frame's position in the
  per-channel nonce stream, is byte-identical to the seed transcript.
* ``"interleaved"`` runs wave-by-wave across attributes and holder
  pairs: all local-matrix transfers are in flight before the comparison
  rounds drain them, and every pair's protocol run overlaps with every
  other's -- still on one thread, so the concurrency is simulated.
* ``"parallel"`` executes runnable steps on a real
  :class:`~concurrent.futures.ThreadPoolExecutor` (``max_workers``
  threads).  The numpy-heavy protocol steps release the GIL, so
  independent (attribute, pair) runs genuinely overlap on multicore
  hardware, and messages of independent runs overlap in flight when the
  network models link latency.  Each receive step pops from its run's
  delivery *lane* (``(sender, kind, tag)`` --
  :meth:`repro.network.simulator.Network.receive`), so no interleaving
  of workers can mis-deliver.

Correctness under reordering rests on two mechanisms.  *PRNG isolation*:
every protocol run derives its generators from pairwise secrets under
attribute-and-pair-scoped labels (:mod:`repro.core.labels`), so no
schedule can change any party's protocol PRNG stream -- the protocol
*messages* are byte-identical under every policy, and the property tests
pin that.  *Queue gating*: a step that consumes a message runs only when
that exact message (kind and sender) is at the head of its party's FIFO
queue (:meth:`repro.network.simulator.Network.peek`), so interleaving
can never mis-deliver; an impossible schedule degrades to a
:class:`~repro.exceptions.ProtocolError` deadlock report, never to a
wrong matrix.  What *does* legitimately differ between policies is the
assignment of channel nonces to frames (a sealed frame's position in its
channel's nonce stream depends on the schedule), which changes no
payload, no byte count and no statistic.

Under the parallel policy a third mechanism joins them: *disjoint block
writes*.  Every step the executor may run concurrently touches either a
different attribute's matrix or a disjoint region of the same one (the
third party's off-diagonal blocks), and per-attribute finalizes are
sequenced after all of that attribute's blocks by explicit dependencies
-- so for any worker count the final per-attribute and merged matrices
are bit-identical to the sequential policy's.  The determinism suite
(``tests/test_parallel_determinism.py``) holds every policy and worker
count to that.  What legitimately differs, beyond nonce-to-frame
assignment, is only the realized step trace and each lane's interleaving
against other lanes -- never any payload, byte count or result.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core import labels
from repro.data.matrix import AttributeSpec
from repro.exceptions import (
    ConfigurationError,
    LaneTimeoutError,
    PartyCrashError,
    ProtocolError,
    SchedulerStallError,
)
from repro.parties.holder import DataHolder
from repro.parties.third_party import ThirdParty
from repro.types import AttributeType

#: Ordering policies accepted by :class:`ConstructionScheduler`.
SCHEDULE_POLICIES = ("sequential", "interleaved", "parallel")

#: Failures a fault-tolerant run degrades on (everything else still
#: aborts: a wrong matrix is never an acceptable degradation).
_FAULT_ERRORS = (PartyCrashError, LaneTimeoutError)

# Wave ranks for the interleaved policy: steps of one wave across all
# attributes and pairs are eligible before the next wave starts draining.
_SEND_LOCAL, _RECV_LOCAL, _INITIATE, _RESPOND, _RECV_BLOCK, _FINALIZE = range(6)


@dataclass
class Step:
    """One schedulable unit of the construction choreography.

    ``receives`` gates execution on ``(party, kind, sender)`` being the
    head of ``party``'s delivery queue; ``None`` means the step only
    sends or computes.  ``order`` is the policy-assigned priority key --
    the executor always runs the lowest-ordered runnable step, so the
    key fully determines the schedule among admissible ones.
    """

    name: str
    run: Callable[[], None]
    deps: tuple[str, ...] = ()
    receives: tuple[str, str, str] | None = None
    order: tuple = ()
    #: The party whose process executes this step.  The in-process
    #: scheduler ignores it (every step runs locally); the socket
    #: runner (:mod:`repro.parties.runner`) slices the graph by owner
    #: so each party process executes exactly its own steps, in
    #: registration order.
    owner: str = ""

    @property
    def group(self) -> str:
        """The attribute this step builds (step names are ``attr:phase``)."""
        return self.name.split(":", 1)[0]


@dataclass(frozen=True)
class DegradedReport:
    """What a fault-tolerant construction run lost, and what survived.

    ``failed_steps`` maps each step that raised a tolerated fault
    (:class:`~repro.exceptions.PartyCrashError` or
    :class:`~repro.exceptions.LaneTimeoutError`) to a one-line error
    summary; ``cancelled_steps`` are the transitive dependents that were
    never run because of those failures.  An attribute is *failed* as
    soon as any of its steps failed or was cancelled -- its matrix must
    not be trusted -- and *completed* otherwise (its finalize ran, its
    matrix is exactly the fault-free one).
    """

    failed_steps: tuple[tuple[str, str], ...]
    cancelled_steps: tuple[str, ...]
    failed_attributes: tuple[str, ...]
    completed_attributes: tuple[str, ...]

    @property
    def degraded(self) -> bool:
        return bool(self.failed_steps or self.cancelled_steps)

    def summary(self) -> str:
        if not self.degraded:
            return "construction completed without degradation"
        failures = "; ".join(f"{name}: {error}" for name, error in self.failed_steps)
        return (
            f"construction degraded: {len(self.failed_steps)} step(s) failed "
            f"({failures}), {len(self.cancelled_steps)} cancelled; lost "
            f"attributes {list(self.failed_attributes)}, kept "
            f"{list(self.completed_attributes)}"
        )


@dataclass(frozen=True)
class ConstructionOutcome:
    """Realized schedule plus the degradation report of a tolerant run."""

    trace: tuple[str, ...]
    report: DegradedReport

    @property
    def degraded(self) -> bool:
        return self.report.degraded


class ConstructionScheduler:
    """Builds and executes the step graph for a set of attributes.

    Parameters
    ----------
    holders:
        ``{site: DataHolder}`` -- must match the third party's index.
    third_party:
        The TP whose matrices the steps fill.
    policy:
        One of :data:`SCHEDULE_POLICIES`.
    tolerate_faults:
        ``False`` (the default) re-raises the first step failure, as the
        pre-fault-tolerance scheduler always did.  ``True`` degrades
        instead: a step failing with :class:`PartyCrashError` or
        :class:`LaneTimeoutError` marks only its attribute as failed,
        transitively cancels the steps that depended on it, and lets
        every other attribute finish; :meth:`run` then returns a
        :class:`ConstructionOutcome` whose report names exactly what was
        lost.  Any other exception still aborts the run.
    watchdog_timeout:
        Optional stall watchdog for the ``"parallel"`` policy, in
        seconds.  When no step completes for this long while work is
        outstanding, the run raises
        :class:`~repro.exceptions.SchedulerStallError` naming every
        pending step -- a deadlock report instead of a silent hang.
        ``None`` (the default) waits forever, as before.
    """

    def __init__(
        self,
        holders: Mapping[str, DataHolder],
        third_party: ThirdParty,
        policy: str = "sequential",
        max_workers: int = 4,
        tolerate_faults: bool = False,
        watchdog_timeout: float | None = None,
    ) -> None:
        if policy not in SCHEDULE_POLICIES:
            raise ConfigurationError(
                f"unknown schedule policy {policy!r}; available: {SCHEDULE_POLICIES}"
            )
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if watchdog_timeout is not None and watchdog_timeout <= 0:
            raise ConfigurationError(
                f"watchdog_timeout must be > 0 seconds, got {watchdog_timeout}"
            )
        sites = list(third_party.index.sites)
        if set(sites) != set(holders):
            raise ProtocolError(
                f"holders {sorted(holders)} do not match index sites {sites}"
            )
        self.policy = policy
        self.max_workers = int(max_workers)
        self.tolerate_faults = bool(tolerate_faults)
        self.watchdog_timeout = watchdog_timeout
        self._holders = dict(holders)
        self._tp = third_party
        self._sites = sites
        self._steps: list[Step] = []
        self._names: set[str] = set()
        self._attr_index = 0
        self._seq = 0

    # -- graph construction ------------------------------------------------

    def _add(
        self,
        name: str,
        run: Callable[[], None],
        wave: int,
        lane: int,
        deps: tuple[str, ...] = (),
        receives: tuple[str, str, str] | None = None,
        owner: str = "",
    ) -> str:
        """Register a step; ``lane`` spreads one wave across pairs/sites."""
        if name in self._names:
            raise ProtocolError(f"duplicate construction step {name!r}")
        if self.policy == "sequential":
            order: tuple = (self._seq,)
        else:
            # interleaved and parallel share the wave priority: for the
            # executor it is the submission order among ready steps, which
            # front-loads sends so receives find their lanes populated.
            order = (wave, lane, self._attr_index, self._seq)
        self._seq += 1
        self._names.add(name)
        self._steps.append(
            Step(
                name=name,
                run=run,
                deps=deps,
                receives=receives,
                order=order,
                owner=owner,
            )
        )
        return name

    def party_plan(self, owner: str) -> list[Step]:
        """One party's slice of the graph, in registration order.

        Registration order is the sequential policy's global order, so
        each party executing its own slice serially -- with blocking
        receives standing in for queue-head gating -- realizes exactly
        the schedule the sequential in-process run would: every lane's
        frames are produced and consumed in the same order, which is
        what makes multi-process transcripts byte-identical.
        """
        return [step for step in self._steps if step.owner == owner]

    def add_attribute(self, spec: AttributeSpec) -> None:
        """Append the Figure 11 steps for one attribute to the graph."""
        tp = self._tp
        sites = self._sites
        attr = spec.name
        tag = labels.attribute_tag(spec)
        finalize_deps: list[str] = []

        if spec.attr_type is AttributeType.CATEGORICAL:
            for lane, site in enumerate(sites):
                sent = self._add(
                    f"{attr}:send_encrypted[{site}]",
                    lambda site=site: self._holders[site].send_categorical(spec, tp.name),
                    wave=_SEND_LOCAL,
                    lane=lane,
                    owner=site,
                )
                finalize_deps.append(
                    self._add(
                        f"{attr}:recv_encrypted[{site}]",
                        lambda site=site, t=tag: tp.receive_encrypted_column(
                            site, tag=t
                        ),
                        wave=_RECV_LOCAL,
                        lane=lane,
                        deps=(sent,),
                        receives=(tp.name, "encrypted_column", site),
                        owner=tp.name,
                    )
                )
            self._add(
                f"{attr}:finalize",
                lambda: (tp.finalize_categorical(attr), tp.finalize_attribute(attr)),
                wave=_FINALIZE,
                lane=0,
                deps=tuple(finalize_deps),
                owner=tp.name,
            )
            self._attr_index += 1
            return

        numeric = spec.attr_type is AttributeType.NUMERIC
        for lane, site in enumerate(sites):
            sent = self._add(
                f"{attr}:send_local[{site}]",
                lambda site=site: self._holders[site].send_local_matrix(tp.name, spec),
                wave=_SEND_LOCAL,
                lane=lane,
                owner=site,
            )
            finalize_deps.append(
                self._add(
                    f"{attr}:recv_local[{site}]",
                    lambda site=site, t=tag: tp.receive_local_matrix(site, tag=t),
                    wave=_RECV_LOCAL,
                    lane=lane,
                    deps=(sent,),
                    receives=(tp.name, "local_matrix", site),
                    owner=tp.name,
                )
            )

        masked_kind = (
            ("masked_vector" if tp.suite.batch_numeric else "masked_matrix")
            if numeric
            else "masked_strings"
        )
        block_kind = "comparison_matrix" if numeric else "ccm_matrices"
        pair_lane = 0
        for j_index, initiator in enumerate(sites):
            for responder in sites[j_index + 1 :]:
                pair = f"{initiator}->{responder}"
                if numeric:
                    initiated = self._add(
                        f"{attr}:initiate[{pair}]",
                        lambda i=initiator, r=responder: self._holders[i].numeric_initiate(
                            spec, r, tp.name, responder_size=tp.index.size_of(r)
                        ),
                        wave=_INITIATE,
                        lane=pair_lane,
                        owner=initiator,
                    )
                    responded = self._add(
                        f"{attr}:respond[{pair}]",
                        lambda i=initiator, r=responder: self._holders[r].numeric_respond(
                            spec, i, tp.name
                        ),
                        wave=_RESPOND,
                        lane=pair_lane,
                        deps=(initiated,),
                        receives=(responder, masked_kind, initiator),
                        owner=responder,
                    )
                    absorb = lambda r=responder, t=tag: tp.receive_numeric_block(
                        r, tag=t
                    )
                else:
                    initiated = self._add(
                        f"{attr}:initiate[{pair}]",
                        lambda i=initiator, r=responder: self._holders[i].alnum_initiate(
                            spec, r, tp.name
                        ),
                        wave=_INITIATE,
                        lane=pair_lane,
                        owner=initiator,
                    )
                    responded = self._add(
                        f"{attr}:respond[{pair}]",
                        lambda i=initiator, r=responder: self._holders[r].alnum_respond(
                            spec, i, tp.name
                        ),
                        wave=_RESPOND,
                        lane=pair_lane,
                        deps=(initiated,),
                        receives=(responder, masked_kind, initiator),
                        owner=responder,
                    )
                    absorb = lambda r=responder, t=tag: tp.receive_alnum_block(r, tag=t)
                finalize_deps.append(
                    self._add(
                        f"{attr}:recv_block[{pair}]",
                        absorb,
                        wave=_RECV_BLOCK,
                        lane=pair_lane,
                        deps=(responded,),
                        receives=(tp.name, block_kind, responder),
                        owner=tp.name,
                    )
                )
                pair_lane += 1

        self._add(
            f"{attr}:finalize",
            lambda: tp.finalize_attribute(attr),
            wave=_FINALIZE,
            lane=0,
            deps=tuple(finalize_deps),
            owner=tp.name,
        )
        self._attr_index += 1

    def add_attribute_delta(self, spec: AttributeSpec, plan) -> None:
        """Append one attribute's delta rounds for an ingest epoch.

        Same wave structure as :meth:`add_attribute`, restricted to the
        pairs an arrival touches: grown sites ship local tails (or
        arrival ciphertexts), and each ordered holder pair runs at most
        two sub-column comparison rounds (``"grow"``: initiator arrivals
        x all responder records; ``"base"``: initiator base x responder
        arrivals) -- every new pair exactly once, no old pair ever
        re-proven.  The third party's finalize re-normalises the patched
        matrix, since arrivals may move the [0, 1] peak.
        """
        tp = self._tp
        sites = self._sites
        attr = spec.name
        tag = labels.attribute_tag(spec)
        epoch = plan.epoch
        grown = [site for site in sites if plan.site(site).added]
        if not grown:
            raise ProtocolError(f"delta plan for {attr!r} has no arrivals")
        finalize_deps: list[str] = []
        suffix = f"@{epoch}"

        if spec.attr_type is AttributeType.CATEGORICAL:
            for lane, site in enumerate(grown):
                sent = self._add(
                    f"{attr}:send_encrypted_delta[{site}]{suffix}",
                    lambda site=site: self._holders[site].send_categorical_delta(
                        spec, tp.name, plan.site(site).old_size
                    ),
                    wave=_SEND_LOCAL,
                    lane=lane,
                    owner=site,
                )
                finalize_deps.append(
                    self._add(
                        f"{attr}:recv_encrypted_delta[{site}]{suffix}",
                        lambda site=site, t=tag: tp.receive_encrypted_delta(
                            site, tag=t
                        ),
                        wave=_RECV_LOCAL,
                        lane=lane,
                        deps=(sent,),
                        receives=(tp.name, "encrypted_column_delta", site),
                        owner=tp.name,
                    )
                )
            self._add(
                f"{attr}:finalize{suffix}",
                lambda: (tp.finalize_categorical_delta(attr), tp.finalize_attribute(attr)),
                wave=_FINALIZE,
                lane=0,
                deps=tuple(finalize_deps),
                owner=tp.name,
            )
            self._attr_index += 1
            return

        numeric = spec.attr_type is AttributeType.NUMERIC
        for lane, site in enumerate(grown):
            sent = self._add(
                f"{attr}:send_local_delta[{site}]{suffix}",
                lambda site=site: self._holders[site].send_local_delta(
                    tp.name, spec, plan.site(site).old_size
                ),
                wave=_SEND_LOCAL,
                lane=lane,
                owner=site,
            )
            finalize_deps.append(
                self._add(
                    f"{attr}:recv_local_delta[{site}]{suffix}",
                    lambda site=site, t=tag: tp.receive_local_delta(site, tag=t),
                    wave=_RECV_LOCAL,
                    lane=lane,
                    deps=(sent,),
                    receives=(tp.name, "local_matrix_delta", site),
                    owner=tp.name,
                )
            )

        masked_kind = (
            ("masked_vector" if tp.suite.batch_numeric else "masked_matrix")
            if numeric
            else "masked_strings"
        )
        block_kind = "comparison_matrix" if numeric else "ccm_matrices"
        pair_lane = 0
        for j_index, first in enumerate(sites):
            for second in sites[j_index + 1 :]:
                grow_first = plan.site(first)
                grow_second = plan.site(second)
                # The grown site always *responds* with its arrival rows:
                # per-row costs (responder matrix rows, serializer runs,
                # TP row unmasks) then scale with the batch, not with the
                # peer's whole partition.
                runs = []
                if grow_first.added:
                    # Second's full column x first's arrivals.
                    runs.append(
                        (
                            "grow",
                            second,
                            first,
                            (0, grow_second.new_size),
                            (grow_first.old_size, grow_first.new_size),
                        )
                    )
                if grow_second.added:
                    # First's base x second's arrivals (first's own
                    # arrivals already met second's in the "grow" run).
                    runs.append(
                        (
                            "base",
                            first,
                            second,
                            (0, grow_first.old_size),
                            (grow_second.old_size, grow_second.new_size),
                        )
                    )
                for part, initiator, responder, initiator_range, responder_range in runs:
                    pair = f"{initiator}->{responder}|{part}"
                    if numeric:
                        initiated = self._add(
                            f"{attr}:initiate[{pair}]{suffix}",
                            lambda i=initiator, r=responder, p=part, ir=initiator_range, rr=responder_range: self._holders[
                                i
                            ].numeric_initiate_delta(
                                spec,
                                r,
                                tp.name,
                                p,
                                epoch,
                                ir,
                                responder_size=rr[1] - rr[0],
                            ),
                            wave=_INITIATE,
                            lane=pair_lane,
                            owner=initiator,
                        )
                        responded = self._add(
                            f"{attr}:respond[{pair}]{suffix}",
                            lambda i=initiator, r=responder, p=part, rr=responder_range: self._holders[
                                r
                            ].numeric_respond_delta(spec, i, tp.name, p, epoch, rr),
                            wave=_RESPOND,
                            lane=pair_lane,
                            deps=(initiated,),
                            receives=(responder, masked_kind, initiator),
                            owner=responder,
                        )
                        absorb = lambda r=responder, t=tag: tp.receive_numeric_delta_block(
                            r, tag=t
                        )
                    else:
                        initiated = self._add(
                            f"{attr}:initiate[{pair}]{suffix}",
                            lambda i=initiator, r=responder, p=part, ir=initiator_range: self._holders[
                                i
                            ].alnum_initiate_delta(spec, r, tp.name, p, epoch, ir),
                            wave=_INITIATE,
                            lane=pair_lane,
                            owner=initiator,
                        )
                        responded = self._add(
                            f"{attr}:respond[{pair}]{suffix}",
                            lambda i=initiator, r=responder, p=part, rr=responder_range: self._holders[
                                r
                            ].alnum_respond_delta(spec, i, tp.name, p, epoch, rr),
                            wave=_RESPOND,
                            lane=pair_lane,
                            deps=(initiated,),
                            receives=(responder, masked_kind, initiator),
                            owner=responder,
                        )
                        absorb = lambda r=responder, t=tag: tp.receive_alnum_delta_block(
                            r, tag=t
                        )
                    finalize_deps.append(
                        self._add(
                            f"{attr}:recv_block[{pair}]{suffix}",
                            absorb,
                            wave=_RECV_BLOCK,
                            lane=pair_lane,
                            deps=(responded,),
                            receives=(tp.name, block_kind, responder),
                            owner=tp.name,
                        )
                    )
                    pair_lane += 1

        self._add(
            f"{attr}:finalize{suffix}",
            lambda: tp.finalize_attribute(attr),
            wave=_FINALIZE,
            lane=0,
            deps=tuple(finalize_deps),
            owner=tp.name,
        )
        self._attr_index += 1

    # -- execution ---------------------------------------------------------

    def _runnable(self, step: Step, done: set[str]) -> bool:
        if any(dep not in done for dep in step.deps):
            return False
        if step.receives is not None:
            party, kind, sender = step.receives
            if self.tolerate_faults:
                plan = self._tp.network.fault_plan
                if plan is not None and plan.permanently_down(party):
                    # The receive will raise PartyCrashError immediately;
                    # run it now so the failure is recorded instead of
                    # gating forever on a dead party's queue head.
                    return True
            head = self._tp.network.peek(party)
            if head is None or head.kind != kind or head.sender != sender:
                return False
        return True

    def _dependents(self) -> dict[str, list[str]]:
        """Reverse dependency edges over the whole graph."""
        dependents: dict[str, list[str]] = {step.name: [] for step in self._steps}
        for step in self._steps:
            for dep in step.deps:
                dependents[dep].append(step.name)
        return dependents

    def _doomed(self, failed: str, dependents: Mapping[str, list[str]]) -> set[str]:
        """Every step transitively depending on a failed one.

        Cancellation is complete because every receive step's ``deps``
        include the step that sends its message: a failed sender never
        leaves a receiver waiting forever -- the receiver is cancelled.
        """
        doomed: set[str] = set()
        stack = list(dependents[failed])
        while stack:
            name = stack.pop()
            if name in doomed:
                continue
            doomed.add(name)
            stack.extend(dependents[name])
        return doomed

    def _report(
        self, failed: Mapping[str, str], cancelled: tuple[str, ...]
    ) -> DegradedReport:
        lost_groups = {name.split(":", 1)[0] for name in failed}
        lost_groups.update(name.split(":", 1)[0] for name in cancelled)
        groups: list[str] = []
        for step in self._steps:
            if step.group not in groups:
                groups.append(step.group)
        return DegradedReport(
            failed_steps=tuple(sorted(failed.items())),
            cancelled_steps=cancelled,
            failed_attributes=tuple(g for g in groups if g in lost_groups),
            completed_attributes=tuple(g for g in groups if g not in lost_groups),
        )

    def run(self) -> list[str] | ConstructionOutcome:
        """Execute every step; returns the realized schedule (step names).

        The serial policies always run the lowest-ordered runnable step,
        so execution is deterministic for a given policy.  The
        ``"parallel"`` policy executes steps on worker threads as their
        dependencies complete; its realized trace is completion order
        (informational -- every *result* is bit-identical regardless).
        The serial scan is O(steps^2) in the worst case, which is
        irrelevant next to the protocol work a step performs (sessions
        schedule at most a few thousand steps).

        With ``tolerate_faults=True`` the return type changes to
        :class:`ConstructionOutcome`: the realized trace plus a
        :class:`DegradedReport` of the steps and attributes lost to
        tolerated faults (empty when the run was clean or every fault
        was masked by the network's retry layer).
        """
        if self.policy == "parallel":
            trace, failed, cancelled = _ParallelRun(
                list(self._steps),
                self.max_workers,
                tolerate_faults=self.tolerate_faults,
                watchdog_timeout=self.watchdog_timeout,
            ).run()
        else:
            trace, failed, cancelled = self._run_serial()
        if not self.tolerate_faults:
            return trace
        return ConstructionOutcome(
            trace=tuple(trace), report=self._report(failed, cancelled)
        )

    def _run_serial(self) -> tuple[list[str], dict[str, str], tuple[str, ...]]:
        pending = sorted(self._steps, key=lambda step: step.order)
        done: set[str] = set()
        trace: list[str] = []
        failed: dict[str, str] = {}
        cancelled: list[str] = []
        dependents = self._dependents() if self.tolerate_faults else {}
        while pending:
            for index, step in enumerate(pending):
                if self._runnable(step, done):
                    del pending[index]
                    if self.tolerate_faults:
                        try:
                            step.run()
                        except _FAULT_ERRORS as exc:
                            failed[step.name] = f"{type(exc).__name__}: {exc}"
                            doomed = self._doomed(step.name, dependents)
                            cancelled.extend(
                                s.name for s in pending if s.name in doomed
                            )
                            pending = [s for s in pending if s.name not in doomed]
                            break
                    else:
                        step.run()
                    done.add(step.name)
                    trace.append(step.name)
                    break
            else:
                blocked = [step.name for step in pending]
                raise ProtocolError(
                    f"construction schedule deadlocked; blocked steps: {blocked}"
                )
        return trace, failed, tuple(cancelled)


class _ParallelRun:
    """Mutable state of one parallel schedule execution.

    Dependency-driven execution on a thread pool.  Receive steps need no
    queue-head gating here: each pops from its run's exclusive delivery
    lane, and its ``deps`` always include the step that sent the lane's
    message, so by the time a step is submitted its input is either in
    the lane or owed to it by a concurrently-arriving send of the same
    lane (lanes are FIFO and hold one run's stream, so any available
    message is the right one).

    The worker threads and the submission loop share their state on this
    object, declared ``guarded-by`` the run's single condition variable,
    and every mutation happens inside ``with self._wake`` -- which the
    lock-discipline lint (``reprolint`` RL301) verifies lexically.

    Failure handling: by default a step failure stops submission, drains
    in-flight work and re-raises the original exception.  With
    ``tolerate_faults``, a step failing with one of :data:`_FAULT_ERRORS`
    instead records the failure, transitively cancels its dependents and
    lets independent steps keep running.  ``watchdog_timeout`` bounds how
    long the submission loop waits without any step completing before it
    declares a stall.
    """

    def __init__(
        self,
        steps: list[Step],
        max_workers: int,
        tolerate_faults: bool = False,
        watchdog_timeout: float | None = None,
    ) -> None:
        self.max_workers = max_workers
        self.tolerate_faults = tolerate_faults
        self.watchdog_timeout = watchdog_timeout
        self._step_table = {step.name: step for step in steps}
        dependents: dict[str, list[str]] = {name: [] for name in self._step_table}
        unmet: dict[str, int] = {}
        for step in steps:
            unknown = [dep for dep in step.deps if dep not in self._step_table]
            if unknown:
                raise ProtocolError(
                    f"step {step.name!r} depends on unknown steps {unknown}"
                )
            unmet[step.name] = len(step.deps)
            for dep in step.deps:
                dependents[dep].append(step.name)
        #: Reverse dependency edges; immutable once built.
        self._dependents = dependents
        self._wake = threading.Condition()
        #: Per step: count of unfinished dependencies.
        # guarded-by: self._wake
        self._unmet = unmet
        #: Steps whose dependencies are all met, in submission order.
        # guarded-by: self._wake
        self._ready: list[Step] = sorted(
            (step for step in steps if not unmet[step.name]),
            key=lambda step: step.order,
        )
        #: Names of completed steps, in completion order.
        # guarded-by: self._wake
        self._trace: list[str] = []
        #: Exceptions raised by steps; the first one is re-raised.
        # guarded-by: self._wake
        self._failures: list[BaseException] = []
        #: Tolerated step failures: name -> one-line error summary.
        # guarded-by: self._wake
        self._failed: dict[str, str] = {}
        #: Steps cancelled because a dependency failed, in cancel order.
        # guarded-by: self._wake
        self._cancelled: list[str] = []
        #: Steps submitted but not yet finished.
        # guarded-by: self._wake
        self._running = 0

    def _cancel_dependents_locked(self, name: str) -> None:
        """Transitively cancel everything depending on a failed step."""
        doomed: set[str] = set()
        stack = list(self._dependents[name])
        while stack:
            candidate = stack.pop()
            if candidate in doomed:
                continue
            doomed.add(candidate)
            stack.extend(self._dependents[candidate])
        for step in sorted(doomed & set(self._unmet), key=lambda n: self._step_table[n].order):
            if step not in self._cancelled:
                self._cancelled.append(step)
        self._ready = [s for s in self._ready if s.name not in doomed]

    def _execute(self, step: Step) -> None:
        """Worker-thread body: run one step, then publish its outcome."""
        error: BaseException | None = None
        try:
            step.run()
        except BaseException as exc:  # noqa: BLE001 - re-raised by run()
            error = exc
        with self._wake:
            self._running -= 1
            if error is not None and self.tolerate_faults and isinstance(
                error, _FAULT_ERRORS
            ):
                self._failed[step.name] = f"{type(error).__name__}: {error}"
                self._cancel_dependents_locked(step.name)
            elif error is not None:
                self._failures.append(error)
            else:
                self._trace.append(step.name)
                released = []
                for name in self._dependents[step.name]:
                    self._unmet[name] -= 1
                    if not self._unmet[name]:
                        released.append(self._step_table[name])
                cancelled = set(self._cancelled)
                self._ready.extend(
                    sorted(
                        (s for s in released if s.name not in cancelled),
                        key=lambda s: s.order,
                    )
                )
            self._wake.notify_all()

    def _settled_locked(self) -> int:
        """Steps whose fate is decided (completed, failed or cancelled)."""
        return len(self._trace) + len(self._failed) + len(self._cancelled)

    def _stall_locked(self) -> SchedulerStallError:
        """Build the watchdog's deadlock report (names pending steps)."""
        settled = set(self._trace) | set(self._failed) | set(self._cancelled)
        pending = sorted(set(self._step_table) - settled)
        return SchedulerStallError(
            f"parallel construction made no progress for "
            f"{self.watchdog_timeout} s with {self._running} step(s) running; "
            f"pending steps: {pending}"
        )

    def run(self) -> tuple[list[str], dict[str, str], tuple[str, ...]]:
        stalled = False
        pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="construction"
        )
        try:
            with self._wake:
                while True:
                    while self._ready and not self._failures:
                        self._running += 1
                        pool.submit(self._execute, self._ready.pop(0))
                    if self._failures:
                        break
                    if not self._running:
                        break
                    settled = self._settled_locked()
                    if not self._wake.wait(self.watchdog_timeout):
                        if self._settled_locked() == settled:
                            stalled = True
                            raise self._stall_locked()
                while self._running:
                    if not self._wake.wait(self.watchdog_timeout):
                        # Draining after a failure can stall too; give up
                        # on the stuck worker and surface the failure.
                        stalled = True
                        break
        finally:
            # A stalled worker is blocked inside a step; waiting for it
            # would turn the stall report back into a hang.
            pool.shutdown(wait=not stalled, cancel_futures=stalled)
        if self._failures:
            raise self._failures[0]
        if self._settled_locked() != len(self._step_table):
            blocked = sorted(
                set(self._step_table)
                - set(self._trace)
                - set(self._failed)
                - set(self._cancelled)
            )
            raise ProtocolError(
                f"construction schedule deadlocked; blocked steps: {blocked}"
            )
        return self._trace, dict(self._failed), tuple(self._cancelled)
