"""Pipelined construction scheduling (Figure 11 as a step graph).

The seed drove matrix construction as one strictly sequential loop:
every holder's local matrix shipped and landed before the first
comparison run started, and every attribute completed before the next
began.  Nothing in the protocol requires that -- each of the ``C(k, 2)``
comparison runs per attribute uses its own pairwise-derived generators,
and the third party's block writes touch disjoint regions -- so this
module decomposes construction into *schedulable steps* (ship local
matrix, initiate, respond, absorb a block, finalize) with explicit
dependencies, and executes any interleaving the dependency graph and the
FIFO network admit.

Three ordering policies ship:

* ``"sequential"`` replays the seed's exact global order -- on sealed
  channels every wire byte, including each frame's position in the
  per-channel nonce stream, is byte-identical to the seed transcript.
* ``"interleaved"`` runs wave-by-wave across attributes and holder
  pairs: all local-matrix transfers are in flight before the comparison
  rounds drain them, and every pair's protocol run overlaps with every
  other's -- still on one thread, so the concurrency is simulated.
* ``"parallel"`` executes runnable steps on a real
  :class:`~concurrent.futures.ThreadPoolExecutor` (``max_workers``
  threads).  The numpy-heavy protocol steps release the GIL, so
  independent (attribute, pair) runs genuinely overlap on multicore
  hardware, and messages of independent runs overlap in flight when the
  network models link latency.  Each receive step pops from its run's
  delivery *lane* (``(sender, kind, tag)`` --
  :meth:`repro.network.simulator.Network.receive`), so no interleaving
  of workers can mis-deliver.

Correctness under reordering rests on two mechanisms.  *PRNG isolation*:
every protocol run derives its generators from pairwise secrets under
attribute-and-pair-scoped labels (:mod:`repro.core.labels`), so no
schedule can change any party's protocol PRNG stream -- the protocol
*messages* are byte-identical under every policy, and the property tests
pin that.  *Queue gating*: a step that consumes a message runs only when
that exact message (kind and sender) is at the head of its party's FIFO
queue (:meth:`repro.network.simulator.Network.peek`), so interleaving
can never mis-deliver; an impossible schedule degrades to a
:class:`~repro.exceptions.ProtocolError` deadlock report, never to a
wrong matrix.  What *does* legitimately differ between policies is the
assignment of channel nonces to frames (a sealed frame's position in its
channel's nonce stream depends on the schedule), which changes no
payload, no byte count and no statistic.

Under the parallel policy a third mechanism joins them: *disjoint block
writes*.  Every step the executor may run concurrently touches either a
different attribute's matrix or a disjoint region of the same one (the
third party's off-diagonal blocks), and per-attribute finalizes are
sequenced after all of that attribute's blocks by explicit dependencies
-- so for any worker count the final per-attribute and merged matrices
are bit-identical to the sequential policy's.  The determinism suite
(``tests/test_parallel_determinism.py``) holds every policy and worker
count to that.  What legitimately differs, beyond nonce-to-frame
assignment, is only the realized step trace and each lane's interleaving
against other lanes -- never any payload, byte count or result.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core import labels
from repro.data.matrix import AttributeSpec
from repro.exceptions import ConfigurationError, ProtocolError
from repro.parties.holder import DataHolder
from repro.parties.third_party import ThirdParty
from repro.types import AttributeType

#: Ordering policies accepted by :class:`ConstructionScheduler`.
SCHEDULE_POLICIES = ("sequential", "interleaved", "parallel")

# Wave ranks for the interleaved policy: steps of one wave across all
# attributes and pairs are eligible before the next wave starts draining.
_SEND_LOCAL, _RECV_LOCAL, _INITIATE, _RESPOND, _RECV_BLOCK, _FINALIZE = range(6)


@dataclass
class Step:
    """One schedulable unit of the construction choreography.

    ``receives`` gates execution on ``(party, kind, sender)`` being the
    head of ``party``'s delivery queue; ``None`` means the step only
    sends or computes.  ``order`` is the policy-assigned priority key --
    the executor always runs the lowest-ordered runnable step, so the
    key fully determines the schedule among admissible ones.
    """

    name: str
    run: Callable[[], None]
    deps: tuple[str, ...] = ()
    receives: tuple[str, str, str] | None = None
    order: tuple = ()


class ConstructionScheduler:
    """Builds and executes the step graph for a set of attributes.

    Parameters
    ----------
    holders:
        ``{site: DataHolder}`` -- must match the third party's index.
    third_party:
        The TP whose matrices the steps fill.
    policy:
        One of :data:`SCHEDULE_POLICIES`.
    """

    def __init__(
        self,
        holders: Mapping[str, DataHolder],
        third_party: ThirdParty,
        policy: str = "sequential",
        max_workers: int = 4,
    ) -> None:
        if policy not in SCHEDULE_POLICIES:
            raise ConfigurationError(
                f"unknown schedule policy {policy!r}; available: {SCHEDULE_POLICIES}"
            )
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        sites = list(third_party.index.sites)
        if set(sites) != set(holders):
            raise ProtocolError(
                f"holders {sorted(holders)} do not match index sites {sites}"
            )
        self.policy = policy
        self.max_workers = int(max_workers)
        self._holders = dict(holders)
        self._tp = third_party
        self._sites = sites
        self._steps: list[Step] = []
        self._names: set[str] = set()
        self._attr_index = 0
        self._seq = 0

    # -- graph construction ------------------------------------------------

    def _add(
        self,
        name: str,
        run: Callable[[], None],
        wave: int,
        lane: int,
        deps: tuple[str, ...] = (),
        receives: tuple[str, str, str] | None = None,
    ) -> str:
        """Register a step; ``lane`` spreads one wave across pairs/sites."""
        if name in self._names:
            raise ProtocolError(f"duplicate construction step {name!r}")
        if self.policy == "sequential":
            order: tuple = (self._seq,)
        else:
            # interleaved and parallel share the wave priority: for the
            # executor it is the submission order among ready steps, which
            # front-loads sends so receives find their lanes populated.
            order = (wave, lane, self._attr_index, self._seq)
        self._seq += 1
        self._names.add(name)
        self._steps.append(
            Step(name=name, run=run, deps=deps, receives=receives, order=order)
        )
        return name

    def add_attribute(self, spec: AttributeSpec) -> None:
        """Append the Figure 11 steps for one attribute to the graph."""
        tp = self._tp
        sites = self._sites
        attr = spec.name
        tag = labels.attribute_tag(spec)
        finalize_deps: list[str] = []

        if spec.attr_type is AttributeType.CATEGORICAL:
            for lane, site in enumerate(sites):
                sent = self._add(
                    f"{attr}:send_encrypted[{site}]",
                    lambda site=site: self._holders[site].send_categorical(spec, tp.name),
                    wave=_SEND_LOCAL,
                    lane=lane,
                )
                finalize_deps.append(
                    self._add(
                        f"{attr}:recv_encrypted[{site}]",
                        lambda site=site, t=tag: tp.receive_encrypted_column(
                            site, tag=t
                        ),
                        wave=_RECV_LOCAL,
                        lane=lane,
                        deps=(sent,),
                        receives=(tp.name, "encrypted_column", site),
                    )
                )
            self._add(
                f"{attr}:finalize",
                lambda: (tp.finalize_categorical(attr), tp.finalize_attribute(attr)),
                wave=_FINALIZE,
                lane=0,
                deps=tuple(finalize_deps),
            )
            self._attr_index += 1
            return

        numeric = spec.attr_type is AttributeType.NUMERIC
        for lane, site in enumerate(sites):
            sent = self._add(
                f"{attr}:send_local[{site}]",
                lambda site=site: self._holders[site].send_local_matrix(tp.name, spec),
                wave=_SEND_LOCAL,
                lane=lane,
            )
            finalize_deps.append(
                self._add(
                    f"{attr}:recv_local[{site}]",
                    lambda site=site, t=tag: tp.receive_local_matrix(site, tag=t),
                    wave=_RECV_LOCAL,
                    lane=lane,
                    deps=(sent,),
                    receives=(tp.name, "local_matrix", site),
                )
            )

        masked_kind = (
            ("masked_vector" if tp.suite.batch_numeric else "masked_matrix")
            if numeric
            else "masked_strings"
        )
        block_kind = "comparison_matrix" if numeric else "ccm_matrices"
        pair_lane = 0
        for j_index, initiator in enumerate(sites):
            for responder in sites[j_index + 1 :]:
                pair = f"{initiator}->{responder}"
                if numeric:
                    initiated = self._add(
                        f"{attr}:initiate[{pair}]",
                        lambda i=initiator, r=responder: self._holders[i].numeric_initiate(
                            spec, r, tp.name, responder_size=tp.index.size_of(r)
                        ),
                        wave=_INITIATE,
                        lane=pair_lane,
                    )
                    responded = self._add(
                        f"{attr}:respond[{pair}]",
                        lambda i=initiator, r=responder: self._holders[r].numeric_respond(
                            spec, i, tp.name
                        ),
                        wave=_RESPOND,
                        lane=pair_lane,
                        deps=(initiated,),
                        receives=(responder, masked_kind, initiator),
                    )
                    absorb = lambda r=responder, t=tag: tp.receive_numeric_block(
                        r, tag=t
                    )
                else:
                    initiated = self._add(
                        f"{attr}:initiate[{pair}]",
                        lambda i=initiator, r=responder: self._holders[i].alnum_initiate(
                            spec, r, tp.name
                        ),
                        wave=_INITIATE,
                        lane=pair_lane,
                    )
                    responded = self._add(
                        f"{attr}:respond[{pair}]",
                        lambda i=initiator, r=responder: self._holders[r].alnum_respond(
                            spec, i, tp.name
                        ),
                        wave=_RESPOND,
                        lane=pair_lane,
                        deps=(initiated,),
                        receives=(responder, masked_kind, initiator),
                    )
                    absorb = lambda r=responder, t=tag: tp.receive_alnum_block(r, tag=t)
                finalize_deps.append(
                    self._add(
                        f"{attr}:recv_block[{pair}]",
                        absorb,
                        wave=_RECV_BLOCK,
                        lane=pair_lane,
                        deps=(responded,),
                        receives=(tp.name, block_kind, responder),
                    )
                )
                pair_lane += 1

        self._add(
            f"{attr}:finalize",
            lambda: tp.finalize_attribute(attr),
            wave=_FINALIZE,
            lane=0,
            deps=tuple(finalize_deps),
        )
        self._attr_index += 1

    def add_attribute_delta(self, spec: AttributeSpec, plan) -> None:
        """Append one attribute's delta rounds for an ingest epoch.

        Same wave structure as :meth:`add_attribute`, restricted to the
        pairs an arrival touches: grown sites ship local tails (or
        arrival ciphertexts), and each ordered holder pair runs at most
        two sub-column comparison rounds (``"grow"``: initiator arrivals
        x all responder records; ``"base"``: initiator base x responder
        arrivals) -- every new pair exactly once, no old pair ever
        re-proven.  The third party's finalize re-normalises the patched
        matrix, since arrivals may move the [0, 1] peak.
        """
        tp = self._tp
        sites = self._sites
        attr = spec.name
        tag = labels.attribute_tag(spec)
        epoch = plan.epoch
        grown = [site for site in sites if plan.site(site).added]
        if not grown:
            raise ProtocolError(f"delta plan for {attr!r} has no arrivals")
        finalize_deps: list[str] = []
        suffix = f"@{epoch}"

        if spec.attr_type is AttributeType.CATEGORICAL:
            for lane, site in enumerate(grown):
                sent = self._add(
                    f"{attr}:send_encrypted_delta[{site}]{suffix}",
                    lambda site=site: self._holders[site].send_categorical_delta(
                        spec, tp.name, plan.site(site).old_size
                    ),
                    wave=_SEND_LOCAL,
                    lane=lane,
                )
                finalize_deps.append(
                    self._add(
                        f"{attr}:recv_encrypted_delta[{site}]{suffix}",
                        lambda site=site, t=tag: tp.receive_encrypted_delta(
                            site, tag=t
                        ),
                        wave=_RECV_LOCAL,
                        lane=lane,
                        deps=(sent,),
                        receives=(tp.name, "encrypted_column_delta", site),
                    )
                )
            self._add(
                f"{attr}:finalize{suffix}",
                lambda: (tp.finalize_categorical_delta(attr), tp.finalize_attribute(attr)),
                wave=_FINALIZE,
                lane=0,
                deps=tuple(finalize_deps),
            )
            self._attr_index += 1
            return

        numeric = spec.attr_type is AttributeType.NUMERIC
        for lane, site in enumerate(grown):
            sent = self._add(
                f"{attr}:send_local_delta[{site}]{suffix}",
                lambda site=site: self._holders[site].send_local_delta(
                    tp.name, spec, plan.site(site).old_size
                ),
                wave=_SEND_LOCAL,
                lane=lane,
            )
            finalize_deps.append(
                self._add(
                    f"{attr}:recv_local_delta[{site}]{suffix}",
                    lambda site=site, t=tag: tp.receive_local_delta(site, tag=t),
                    wave=_RECV_LOCAL,
                    lane=lane,
                    deps=(sent,),
                    receives=(tp.name, "local_matrix_delta", site),
                )
            )

        masked_kind = (
            ("masked_vector" if tp.suite.batch_numeric else "masked_matrix")
            if numeric
            else "masked_strings"
        )
        block_kind = "comparison_matrix" if numeric else "ccm_matrices"
        pair_lane = 0
        for j_index, first in enumerate(sites):
            for second in sites[j_index + 1 :]:
                grow_first = plan.site(first)
                grow_second = plan.site(second)
                # The grown site always *responds* with its arrival rows:
                # per-row costs (responder matrix rows, serializer runs,
                # TP row unmasks) then scale with the batch, not with the
                # peer's whole partition.
                runs = []
                if grow_first.added:
                    # Second's full column x first's arrivals.
                    runs.append(
                        (
                            "grow",
                            second,
                            first,
                            (0, grow_second.new_size),
                            (grow_first.old_size, grow_first.new_size),
                        )
                    )
                if grow_second.added:
                    # First's base x second's arrivals (first's own
                    # arrivals already met second's in the "grow" run).
                    runs.append(
                        (
                            "base",
                            first,
                            second,
                            (0, grow_first.old_size),
                            (grow_second.old_size, grow_second.new_size),
                        )
                    )
                for part, initiator, responder, initiator_range, responder_range in runs:
                    pair = f"{initiator}->{responder}|{part}"
                    if numeric:
                        initiated = self._add(
                            f"{attr}:initiate[{pair}]{suffix}",
                            lambda i=initiator, r=responder, p=part, ir=initiator_range, rr=responder_range: self._holders[
                                i
                            ].numeric_initiate_delta(
                                spec,
                                r,
                                tp.name,
                                p,
                                epoch,
                                ir,
                                responder_size=rr[1] - rr[0],
                            ),
                            wave=_INITIATE,
                            lane=pair_lane,
                        )
                        responded = self._add(
                            f"{attr}:respond[{pair}]{suffix}",
                            lambda i=initiator, r=responder, p=part, rr=responder_range: self._holders[
                                r
                            ].numeric_respond_delta(spec, i, tp.name, p, epoch, rr),
                            wave=_RESPOND,
                            lane=pair_lane,
                            deps=(initiated,),
                            receives=(responder, masked_kind, initiator),
                        )
                        absorb = lambda r=responder, t=tag: tp.receive_numeric_delta_block(
                            r, tag=t
                        )
                    else:
                        initiated = self._add(
                            f"{attr}:initiate[{pair}]{suffix}",
                            lambda i=initiator, r=responder, p=part, ir=initiator_range: self._holders[
                                i
                            ].alnum_initiate_delta(spec, r, tp.name, p, epoch, ir),
                            wave=_INITIATE,
                            lane=pair_lane,
                        )
                        responded = self._add(
                            f"{attr}:respond[{pair}]{suffix}",
                            lambda i=initiator, r=responder, p=part, rr=responder_range: self._holders[
                                r
                            ].alnum_respond_delta(spec, i, tp.name, p, epoch, rr),
                            wave=_RESPOND,
                            lane=pair_lane,
                            deps=(initiated,),
                            receives=(responder, masked_kind, initiator),
                        )
                        absorb = lambda r=responder, t=tag: tp.receive_alnum_delta_block(
                            r, tag=t
                        )
                    finalize_deps.append(
                        self._add(
                            f"{attr}:recv_block[{pair}]{suffix}",
                            absorb,
                            wave=_RECV_BLOCK,
                            lane=pair_lane,
                            deps=(responded,),
                            receives=(tp.name, block_kind, responder),
                        )
                    )
                    pair_lane += 1

        self._add(
            f"{attr}:finalize{suffix}",
            lambda: tp.finalize_attribute(attr),
            wave=_FINALIZE,
            lane=0,
            deps=tuple(finalize_deps),
        )
        self._attr_index += 1

    # -- execution ---------------------------------------------------------

    def _runnable(self, step: Step, done: set[str]) -> bool:
        if any(dep not in done for dep in step.deps):
            return False
        if step.receives is not None:
            party, kind, sender = step.receives
            head = self._tp.network.peek(party)
            if head is None or head.kind != kind or head.sender != sender:
                return False
        return True

    def run(self) -> list[str]:
        """Execute every step; returns the realized schedule (step names).

        The serial policies always run the lowest-ordered runnable step,
        so execution is deterministic for a given policy.  The
        ``"parallel"`` policy executes steps on worker threads as their
        dependencies complete; its realized trace is completion order
        (informational -- every *result* is bit-identical regardless).
        The serial scan is O(steps^2) in the worst case, which is
        irrelevant next to the protocol work a step performs (sessions
        schedule at most a few thousand steps).
        """
        if self.policy == "parallel":
            return self._run_parallel()
        return self._run_serial()

    def _run_serial(self) -> list[str]:
        pending = sorted(self._steps, key=lambda step: step.order)
        done: set[str] = set()
        trace: list[str] = []
        while pending:
            for index, step in enumerate(pending):
                if self._runnable(step, done):
                    del pending[index]
                    step.run()
                    done.add(step.name)
                    trace.append(step.name)
                    break
            else:
                blocked = [step.name for step in pending]
                raise ProtocolError(
                    f"construction schedule deadlocked; blocked steps: {blocked}"
                )
        return trace

    def _run_parallel(self) -> list[str]:
        """Dependency-driven execution on a thread pool.

        Receive steps need no queue-head gating here: each pops from its
        run's exclusive delivery lane, and its ``deps`` always include
        the step that sent the lane's message, so by the time a step is
        submitted its input is either in the lane or owed to it by a
        concurrently-arriving send of the same lane (lanes are FIFO and
        hold one run's stream, so any available message is the right
        one).  A step failure stops submission, drains in-flight work
        and re-raises the original exception.
        """
        return _ParallelRun(list(self._steps), self.max_workers).run()


class _ParallelRun:
    """Mutable state of one parallel schedule execution.

    The worker threads and the submission loop share five pieces of
    state; all of them live on this object, declared ``guarded-by`` the
    run's single condition variable, and every mutation happens inside
    ``with self._wake`` -- which the lock-discipline lint
    (``reprolint`` RL301) verifies lexically.
    """

    def __init__(self, steps: list[Step], max_workers: int) -> None:
        self.max_workers = max_workers
        self._step_table = {step.name: step for step in steps}
        dependents: dict[str, list[str]] = {name: [] for name in self._step_table}
        unmet: dict[str, int] = {}
        for step in steps:
            unknown = [dep for dep in step.deps if dep not in self._step_table]
            if unknown:
                raise ProtocolError(
                    f"step {step.name!r} depends on unknown steps {unknown}"
                )
            unmet[step.name] = len(step.deps)
            for dep in step.deps:
                dependents[dep].append(step.name)
        #: Reverse dependency edges; immutable once built.
        self._dependents = dependents
        self._wake = threading.Condition()
        #: Per step: count of unfinished dependencies.
        # guarded-by: self._wake
        self._unmet = unmet
        #: Steps whose dependencies are all met, in submission order.
        # guarded-by: self._wake
        self._ready: list[Step] = sorted(
            (step for step in steps if not unmet[step.name]),
            key=lambda step: step.order,
        )
        #: Names of completed steps, in completion order.
        # guarded-by: self._wake
        self._trace: list[str] = []
        #: Exceptions raised by steps; the first one is re-raised.
        # guarded-by: self._wake
        self._failures: list[BaseException] = []
        #: Steps submitted but not yet finished.
        # guarded-by: self._wake
        self._running = 0

    def _execute(self, step: Step) -> None:
        """Worker-thread body: run one step, then publish its outcome."""
        error: BaseException | None = None
        try:
            step.run()
        except BaseException as exc:  # noqa: BLE001 - re-raised by run()
            error = exc
        with self._wake:
            self._running -= 1
            if error is not None:
                self._failures.append(error)
            else:
                self._trace.append(step.name)
                released = []
                for name in self._dependents[step.name]:
                    self._unmet[name] -= 1
                    if not self._unmet[name]:
                        released.append(self._step_table[name])
                self._ready.extend(sorted(released, key=lambda s: s.order))
            self._wake.notify_all()

    def run(self) -> list[str]:
        with ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="construction"
        ) as pool:
            with self._wake:
                while True:
                    while self._ready and not self._failures:
                        self._running += 1
                        pool.submit(self._execute, self._ready.pop(0))
                    if self._failures or not self._running:
                        break
                    self._wake.wait()
                while self._running:
                    self._wake.wait()
        if self._failures:
            raise self._failures[0]
        if len(self._trace) != len(self._step_table):
            blocked = sorted(set(self._step_table) - set(self._trace))
            raise ProtocolError(
                f"construction schedule deadlocked; blocked steps: {blocked}"
            )
        return self._trace
