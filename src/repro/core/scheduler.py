"""Pipelined construction scheduling (Figure 11 as a step graph).

The seed drove matrix construction as one strictly sequential loop:
every holder's local matrix shipped and landed before the first
comparison run started, and every attribute completed before the next
began.  Nothing in the protocol requires that -- each of the ``C(k, 2)``
comparison runs per attribute uses its own pairwise-derived generators,
and the third party's block writes touch disjoint regions -- so this
module decomposes construction into *schedulable steps* (ship local
matrix, initiate, respond, absorb a block, finalize) with explicit
dependencies, and executes any interleaving the dependency graph and the
FIFO network admit.

Two ordering policies ship:

* ``"sequential"`` replays the seed's exact global order -- on sealed
  channels every wire byte, including each frame's position in the
  per-channel nonce stream, is byte-identical to the seed transcript.
* ``"interleaved"`` runs wave-by-wave across attributes and holder
  pairs: all local-matrix transfers are in flight before the comparison
  rounds drain them, and every pair's protocol run overlaps with every
  other's.  This is the schedule a deployment with real (concurrent)
  links would follow.

Correctness under reordering rests on two mechanisms.  *PRNG isolation*:
every protocol run derives its generators from pairwise secrets under
attribute-and-pair-scoped labels (:mod:`repro.core.labels`), so no
schedule can change any party's protocol PRNG stream -- the protocol
*messages* are byte-identical under every policy, and the property tests
pin that.  *Queue gating*: a step that consumes a message runs only when
that exact message (kind and sender) is at the head of its party's FIFO
queue (:meth:`repro.network.simulator.Network.peek`), so interleaving
can never mis-deliver; an impossible schedule degrades to a
:class:`~repro.exceptions.ProtocolError` deadlock report, never to a
wrong matrix.  What *does* legitimately differ between policies is the
assignment of channel nonces to frames (a sealed frame's position in its
channel's nonce stream depends on the schedule), which changes no
payload, no byte count and no statistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.data.matrix import AttributeSpec
from repro.exceptions import ConfigurationError, ProtocolError
from repro.parties.holder import DataHolder
from repro.parties.third_party import ThirdParty
from repro.types import AttributeType

#: Ordering policies accepted by :class:`ConstructionScheduler`.
SCHEDULE_POLICIES = ("sequential", "interleaved")

# Wave ranks for the interleaved policy: steps of one wave across all
# attributes and pairs are eligible before the next wave starts draining.
_SEND_LOCAL, _RECV_LOCAL, _INITIATE, _RESPOND, _RECV_BLOCK, _FINALIZE = range(6)


@dataclass
class Step:
    """One schedulable unit of the construction choreography.

    ``receives`` gates execution on ``(party, kind, sender)`` being the
    head of ``party``'s delivery queue; ``None`` means the step only
    sends or computes.  ``order`` is the policy-assigned priority key --
    the executor always runs the lowest-ordered runnable step, so the
    key fully determines the schedule among admissible ones.
    """

    name: str
    run: Callable[[], None]
    deps: tuple[str, ...] = ()
    receives: tuple[str, str, str] | None = None
    order: tuple = ()


class ConstructionScheduler:
    """Builds and executes the step graph for a set of attributes.

    Parameters
    ----------
    holders:
        ``{site: DataHolder}`` -- must match the third party's index.
    third_party:
        The TP whose matrices the steps fill.
    policy:
        One of :data:`SCHEDULE_POLICIES`.
    """

    def __init__(
        self,
        holders: Mapping[str, DataHolder],
        third_party: ThirdParty,
        policy: str = "sequential",
    ) -> None:
        if policy not in SCHEDULE_POLICIES:
            raise ConfigurationError(
                f"unknown schedule policy {policy!r}; available: {SCHEDULE_POLICIES}"
            )
        sites = list(third_party.index.sites)
        if set(sites) != set(holders):
            raise ProtocolError(
                f"holders {sorted(holders)} do not match index sites {sites}"
            )
        self.policy = policy
        self._holders = dict(holders)
        self._tp = third_party
        self._sites = sites
        self._steps: list[Step] = []
        self._names: set[str] = set()
        self._attr_index = 0
        self._seq = 0

    # -- graph construction ------------------------------------------------

    def _add(
        self,
        name: str,
        run: Callable[[], None],
        wave: int,
        lane: int,
        deps: tuple[str, ...] = (),
        receives: tuple[str, str, str] | None = None,
    ) -> str:
        """Register a step; ``lane`` spreads one wave across pairs/sites."""
        if name in self._names:
            raise ProtocolError(f"duplicate construction step {name!r}")
        if self.policy == "sequential":
            order: tuple = (self._seq,)
        else:
            order = (wave, lane, self._attr_index, self._seq)
        self._seq += 1
        self._names.add(name)
        self._steps.append(
            Step(name=name, run=run, deps=deps, receives=receives, order=order)
        )
        return name

    def add_attribute(self, spec: AttributeSpec) -> None:
        """Append the Figure 11 steps for one attribute to the graph."""
        tp = self._tp
        sites = self._sites
        attr = spec.name
        finalize_deps: list[str] = []

        if spec.attr_type is AttributeType.CATEGORICAL:
            for lane, site in enumerate(sites):
                sent = self._add(
                    f"{attr}:send_encrypted[{site}]",
                    lambda site=site: self._holders[site].send_categorical(spec, tp.name),
                    wave=_SEND_LOCAL,
                    lane=lane,
                )
                finalize_deps.append(
                    self._add(
                        f"{attr}:recv_encrypted[{site}]",
                        lambda site=site: tp.receive_encrypted_column(site),
                        wave=_RECV_LOCAL,
                        lane=lane,
                        deps=(sent,),
                        receives=(tp.name, "encrypted_column", site),
                    )
                )
            self._add(
                f"{attr}:finalize",
                lambda: (tp.finalize_categorical(attr), tp.finalize_attribute(attr)),
                wave=_FINALIZE,
                lane=0,
                deps=tuple(finalize_deps),
            )
            self._attr_index += 1
            return

        numeric = spec.attr_type is AttributeType.NUMERIC
        for lane, site in enumerate(sites):
            sent = self._add(
                f"{attr}:send_local[{site}]",
                lambda site=site: self._holders[site].send_local_matrix(tp.name, spec),
                wave=_SEND_LOCAL,
                lane=lane,
            )
            finalize_deps.append(
                self._add(
                    f"{attr}:recv_local[{site}]",
                    lambda site=site: tp.receive_local_matrix(site),
                    wave=_RECV_LOCAL,
                    lane=lane,
                    deps=(sent,),
                    receives=(tp.name, "local_matrix", site),
                )
            )

        masked_kind = (
            ("masked_vector" if tp.suite.batch_numeric else "masked_matrix")
            if numeric
            else "masked_strings"
        )
        block_kind = "comparison_matrix" if numeric else "ccm_matrices"
        pair_lane = 0
        for j_index, initiator in enumerate(sites):
            for responder in sites[j_index + 1 :]:
                pair = f"{initiator}->{responder}"
                if numeric:
                    initiated = self._add(
                        f"{attr}:initiate[{pair}]",
                        lambda i=initiator, r=responder: self._holders[i].numeric_initiate(
                            spec, r, tp.name, responder_size=tp.index.size_of(r)
                        ),
                        wave=_INITIATE,
                        lane=pair_lane,
                    )
                    responded = self._add(
                        f"{attr}:respond[{pair}]",
                        lambda i=initiator, r=responder: self._holders[r].numeric_respond(
                            spec, i, tp.name
                        ),
                        wave=_RESPOND,
                        lane=pair_lane,
                        deps=(initiated,),
                        receives=(responder, masked_kind, initiator),
                    )
                    absorb = lambda r=responder: tp.receive_numeric_block(r)
                else:
                    initiated = self._add(
                        f"{attr}:initiate[{pair}]",
                        lambda i=initiator, r=responder: self._holders[i].alnum_initiate(
                            spec, r, tp.name
                        ),
                        wave=_INITIATE,
                        lane=pair_lane,
                    )
                    responded = self._add(
                        f"{attr}:respond[{pair}]",
                        lambda i=initiator, r=responder: self._holders[r].alnum_respond(
                            spec, i, tp.name
                        ),
                        wave=_RESPOND,
                        lane=pair_lane,
                        deps=(initiated,),
                        receives=(responder, masked_kind, initiator),
                    )
                    absorb = lambda r=responder: tp.receive_alnum_block(r)
                finalize_deps.append(
                    self._add(
                        f"{attr}:recv_block[{pair}]",
                        absorb,
                        wave=_RECV_BLOCK,
                        lane=pair_lane,
                        deps=(responded,),
                        receives=(tp.name, block_kind, responder),
                    )
                )
                pair_lane += 1

        self._add(
            f"{attr}:finalize",
            lambda: tp.finalize_attribute(attr),
            wave=_FINALIZE,
            lane=0,
            deps=tuple(finalize_deps),
        )
        self._attr_index += 1

    def add_attribute_delta(self, spec: AttributeSpec, plan) -> None:
        """Append one attribute's delta rounds for an ingest epoch.

        Same wave structure as :meth:`add_attribute`, restricted to the
        pairs an arrival touches: grown sites ship local tails (or
        arrival ciphertexts), and each ordered holder pair runs at most
        two sub-column comparison rounds (``"grow"``: initiator arrivals
        x all responder records; ``"base"``: initiator base x responder
        arrivals) -- every new pair exactly once, no old pair ever
        re-proven.  The third party's finalize re-normalises the patched
        matrix, since arrivals may move the [0, 1] peak.
        """
        tp = self._tp
        sites = self._sites
        attr = spec.name
        epoch = plan.epoch
        grown = [site for site in sites if plan.site(site).added]
        if not grown:
            raise ProtocolError(f"delta plan for {attr!r} has no arrivals")
        finalize_deps: list[str] = []
        suffix = f"@{epoch}"

        if spec.attr_type is AttributeType.CATEGORICAL:
            for lane, site in enumerate(grown):
                sent = self._add(
                    f"{attr}:send_encrypted_delta[{site}]{suffix}",
                    lambda site=site: self._holders[site].send_categorical_delta(
                        spec, tp.name, plan.site(site).old_size
                    ),
                    wave=_SEND_LOCAL,
                    lane=lane,
                )
                finalize_deps.append(
                    self._add(
                        f"{attr}:recv_encrypted_delta[{site}]{suffix}",
                        lambda site=site: tp.receive_encrypted_delta(site),
                        wave=_RECV_LOCAL,
                        lane=lane,
                        deps=(sent,),
                        receives=(tp.name, "encrypted_column_delta", site),
                    )
                )
            self._add(
                f"{attr}:finalize{suffix}",
                lambda: (tp.finalize_categorical_delta(attr), tp.finalize_attribute(attr)),
                wave=_FINALIZE,
                lane=0,
                deps=tuple(finalize_deps),
            )
            self._attr_index += 1
            return

        numeric = spec.attr_type is AttributeType.NUMERIC
        for lane, site in enumerate(grown):
            sent = self._add(
                f"{attr}:send_local_delta[{site}]{suffix}",
                lambda site=site: self._holders[site].send_local_delta(
                    tp.name, spec, plan.site(site).old_size
                ),
                wave=_SEND_LOCAL,
                lane=lane,
            )
            finalize_deps.append(
                self._add(
                    f"{attr}:recv_local_delta[{site}]{suffix}",
                    lambda site=site: tp.receive_local_delta(site),
                    wave=_RECV_LOCAL,
                    lane=lane,
                    deps=(sent,),
                    receives=(tp.name, "local_matrix_delta", site),
                )
            )

        masked_kind = (
            ("masked_vector" if tp.suite.batch_numeric else "masked_matrix")
            if numeric
            else "masked_strings"
        )
        block_kind = "comparison_matrix" if numeric else "ccm_matrices"
        pair_lane = 0
        for j_index, first in enumerate(sites):
            for second in sites[j_index + 1 :]:
                grow_first = plan.site(first)
                grow_second = plan.site(second)
                # The grown site always *responds* with its arrival rows:
                # per-row costs (responder matrix rows, serializer runs,
                # TP row unmasks) then scale with the batch, not with the
                # peer's whole partition.
                runs = []
                if grow_first.added:
                    # Second's full column x first's arrivals.
                    runs.append(
                        (
                            "grow",
                            second,
                            first,
                            (0, grow_second.new_size),
                            (grow_first.old_size, grow_first.new_size),
                        )
                    )
                if grow_second.added:
                    # First's base x second's arrivals (first's own
                    # arrivals already met second's in the "grow" run).
                    runs.append(
                        (
                            "base",
                            first,
                            second,
                            (0, grow_first.old_size),
                            (grow_second.old_size, grow_second.new_size),
                        )
                    )
                for part, initiator, responder, initiator_range, responder_range in runs:
                    pair = f"{initiator}->{responder}|{part}"
                    if numeric:
                        initiated = self._add(
                            f"{attr}:initiate[{pair}]{suffix}",
                            lambda i=initiator, r=responder, p=part, ir=initiator_range, rr=responder_range: self._holders[
                                i
                            ].numeric_initiate_delta(
                                spec,
                                r,
                                tp.name,
                                p,
                                epoch,
                                ir,
                                responder_size=rr[1] - rr[0],
                            ),
                            wave=_INITIATE,
                            lane=pair_lane,
                        )
                        responded = self._add(
                            f"{attr}:respond[{pair}]{suffix}",
                            lambda i=initiator, r=responder, p=part, rr=responder_range: self._holders[
                                r
                            ].numeric_respond_delta(spec, i, tp.name, p, epoch, rr),
                            wave=_RESPOND,
                            lane=pair_lane,
                            deps=(initiated,),
                            receives=(responder, masked_kind, initiator),
                        )
                        absorb = lambda r=responder: tp.receive_numeric_delta_block(r)
                    else:
                        initiated = self._add(
                            f"{attr}:initiate[{pair}]{suffix}",
                            lambda i=initiator, r=responder, p=part, ir=initiator_range: self._holders[
                                i
                            ].alnum_initiate_delta(spec, r, tp.name, p, epoch, ir),
                            wave=_INITIATE,
                            lane=pair_lane,
                        )
                        responded = self._add(
                            f"{attr}:respond[{pair}]{suffix}",
                            lambda i=initiator, r=responder, p=part, rr=responder_range: self._holders[
                                r
                            ].alnum_respond_delta(spec, i, tp.name, p, epoch, rr),
                            wave=_RESPOND,
                            lane=pair_lane,
                            deps=(initiated,),
                            receives=(responder, masked_kind, initiator),
                        )
                        absorb = lambda r=responder: tp.receive_alnum_delta_block(r)
                    finalize_deps.append(
                        self._add(
                            f"{attr}:recv_block[{pair}]{suffix}",
                            absorb,
                            wave=_RECV_BLOCK,
                            lane=pair_lane,
                            deps=(responded,),
                            receives=(tp.name, block_kind, responder),
                        )
                    )
                    pair_lane += 1

        self._add(
            f"{attr}:finalize{suffix}",
            lambda: tp.finalize_attribute(attr),
            wave=_FINALIZE,
            lane=0,
            deps=tuple(finalize_deps),
        )
        self._attr_index += 1

    # -- execution ---------------------------------------------------------

    def _runnable(self, step: Step, done: set[str]) -> bool:
        if any(dep not in done for dep in step.deps):
            return False
        if step.receives is not None:
            party, kind, sender = step.receives
            head = self._tp.network.peek(party)
            if head is None or head.kind != kind or head.sender != sender:
                return False
        return True

    def run(self) -> list[str]:
        """Execute every step; returns the realized schedule (step names).

        Always runs the lowest-ordered runnable step, so execution is
        deterministic for a given policy.  The scan is O(steps^2) in the
        worst case, which is irrelevant next to the protocol work a step
        performs (sessions schedule at most a few thousand steps).
        """
        pending = sorted(self._steps, key=lambda step: step.order)
        done: set[str] = set()
        trace: list[str] = []
        while pending:
            for index, step in enumerate(pending):
                if self._runnable(step, done):
                    del pending[index]
                    step.run()
                    done.add(step.name)
                    trace.append(step.name)
                    break
            else:
                blocked = [step.name for step in pending]
                raise ProtocolError(
                    f"construction schedule deadlocked; blocked steps: {blocked}"
                )
        return trace
