"""Configuration objects for protocol runs and clustering sessions."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

from repro.crypto.prng import DEFAULT_PRNG_KIND, available_kinds
from repro.exceptions import ConfigurationError
from repro.network.retry import RetryPolicy
from repro.types import LinkageMethod

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.distance.store import StoreSpec


@dataclass(frozen=True)
class ProtocolSuiteConfig:
    """Knobs shared by the three comparison protocols.

    Attributes
    ----------
    prng_kind:
        Which :mod:`repro.crypto.prng` generator realises ``rng_JK`` and
        ``rng_JT``.  The default is the hash DRBG, matching the paper's
        quality assumptions; tests exercise the others.
    mask_bits:
        Width of the additive masks in the numeric protocol.  Must leave
        generous headroom over the encoded data magnitude: the mask is
        what makes a masked value "practically a random number" to its
        recipient (Section 4.1).
    batch_numeric:
        ``True`` reproduces the paper's batched protocol (one mask per
        initiator value, reused across the responder's rows).  ``False``
        switches to the Section 4.1 mitigation -- "using unique random
        numbers for each object pair" -- which defeats the frequency
        attack at higher communication cost.
    secure_channels:
        Whether party links are sealed.  The paper *requires* secured
        channels; turning this off exists for the eavesdropping
        experiments only.
    categorical_digest_size:
        Ciphertext size for deterministic encryption of categoricals.
    fresh_string_masks:
        ``False`` reproduces Figure 8 exactly (one mask vector reused
        across all of an initiator's strings).  ``True`` enables the
        extension that closes the paper's Section 6 open problem: a
        continuous mask stream defeating language-statistics attacks at
        identical communication cost.
    construction_schedule:
        Ordering policy of the construction scheduler
        (:data:`repro.core.scheduler.SCHEDULE_POLICIES`).
        ``"sequential"`` replays the seed's exact global message order
        (byte-identical sealed transcripts); ``"interleaved"`` overlaps
        local-matrix transfers and comparison rounds across attributes
        and holder pairs -- identical protocol messages and byte counts,
        frames just ride the channels in a pipelined order;
        ``"parallel"`` executes independent steps on a real worker pool
        (``SessionConfig.max_workers`` threads) with bit-identical final
        matrices, dendrograms and medoids for any worker count.
    link_latency:
        Simulated per-message link delay in seconds (default 0: the
        in-process network delivers instantly).  Models the round-trip
        time a deployed consortium pays per protocol message; the
        parallel schedule overlaps these delays across independent
        (attribute, pair) runs, which is where its wall-clock win comes
        from on latency-bound workloads.
    reliable_delivery:
        Arm the network's reliable-delivery shim even without a fault
        plan (installing a :class:`~repro.network.faults.FaultPlan` on
        the session arms it regardless).  With the shim armed, frames
        carry per-lane sequence numbers and payload CRCs, duplicates are
        suppressed, and lost or damaged frames are recovered by
        NACK/retransmit under the retry knobs below.
    retry_max_attempts:
        Delivery attempts per frame before the receiving lane gives up
        with :class:`~repro.exceptions.LaneTimeoutError`.  This is the
        knob that decides which fault rates the shim can *mask*.
    retry_backoff_base:
        First retransmit backoff in seconds; doubles per attempt.  The
        default 0 never sleeps (the in-process simulator retransmits
        instantly).
    retry_backoff_cap:
        Ceiling on a single backoff sleep, in seconds.
    retry_deadline:
        Optional wall-clock budget per receive, in seconds; ``None``
        bounds recovery by ``retry_max_attempts`` alone.
    tolerate_faults:
        ``True`` lets construction degrade instead of abort when a party
        crashes or a lane times out: the session keeps every unaffected
        attribute's matrix and reports exactly what was lost
        (:class:`~repro.core.scheduler.DegradedReport`).  The default
        ``False`` preserves fail-fast behaviour.
    store_backend:
        Storage backend for the third party's dissimilarity matrices
        (``"memory"`` | ``"float32"`` | ``"memmap"``); ``None`` defers to
        the ``REPRO_STORE_BACKEND`` environment default.  The float64
        memmap backend is bit-identical to in-memory end to end
        (matrices, dendrograms, medoids, wire bytes); float32 trades
        half the storage for one rounding per stored value.
    store_block_entries:
        Entries per row-block shard / streaming granularity (``None``:
        environment or module default).
    store_cache_bytes:
        LRU byte budget for resident memmap blocks (``None``:
        environment or module default).
    store_dir:
        Base directory for memmap shard directories (``None``:
        environment override or the system temp dir).
    """

    prng_kind: str = DEFAULT_PRNG_KIND
    mask_bits: int = 64
    batch_numeric: bool = True
    secure_channels: bool = True
    categorical_digest_size: int = 16
    fresh_string_masks: bool = False
    construction_schedule: str = "sequential"
    link_latency: float = 0.0
    reliable_delivery: bool = False
    retry_max_attempts: int = 6
    retry_backoff_base: float = 0.0
    retry_backoff_cap: float = 0.05
    retry_deadline: float | None = None
    tolerate_faults: bool = False
    store_backend: str | None = None
    store_block_entries: int | None = None
    store_cache_bytes: int | None = None
    store_dir: str | None = None

    def __post_init__(self) -> None:
        if self.prng_kind not in available_kinds():
            raise ConfigurationError(
                f"unknown prng_kind {self.prng_kind!r}; available: {available_kinds()}"
            )
        if not 16 <= self.mask_bits <= 4096:
            raise ConfigurationError(
                f"mask_bits must be in [16, 4096], got {self.mask_bits}"
            )
        if not 8 <= self.categorical_digest_size <= 32:
            raise ConfigurationError(
                f"categorical_digest_size must be in [8, 32], got {self.categorical_digest_size}"
            )
        from repro.core.scheduler import SCHEDULE_POLICIES

        if self.construction_schedule not in SCHEDULE_POLICIES:
            raise ConfigurationError(
                f"unknown construction_schedule {self.construction_schedule!r}; "
                f"available: {SCHEDULE_POLICIES}"
            )
        if not 0.0 <= self.link_latency <= 1.0:
            raise ConfigurationError(
                f"link_latency must be in [0, 1] seconds, got {self.link_latency}"
            )
        # Delegate retry-knob validation to the policy that consumes them.
        self.retry_policy()
        # Same for the storage knobs: StoreSpec validates on construction.
        self.store_spec()

    def store_spec(self) -> "StoreSpec":
        """Resolved storage backend for the session's matrices.

        Starts from the environment default (so whole runs can be
        re-pointed via ``REPRO_STORE_BACKEND``) and overrides any field
        set explicitly on this config -- explicit config beats
        environment beats module defaults.
        """
        from repro.distance.store import default_store_spec

        spec = default_store_spec()
        overrides: dict[str, object] = {}
        if self.store_backend is not None:
            overrides["backend"] = self.store_backend
        if self.store_block_entries is not None:
            overrides["block_entries"] = self.store_block_entries
        if self.store_cache_bytes is not None:
            overrides["cache_bytes"] = self.store_cache_bytes
        if self.store_dir is not None:
            overrides["directory"] = self.store_dir
        if overrides:
            spec = replace(spec, **overrides)  # type: ignore[arg-type]
        return spec

    def retry_policy(self) -> RetryPolicy:
        """The :class:`~repro.network.retry.RetryPolicy` these knobs spell."""
        return RetryPolicy(
            max_attempts=self.retry_max_attempts,
            backoff_base=self.retry_backoff_base,
            backoff_cap=self.retry_backoff_cap,
            deadline=self.retry_deadline,
        )


@dataclass(frozen=True)
class SessionConfig:
    """End-to-end clustering session configuration.

    Attributes
    ----------
    num_clusters:
        How many clusters the third party publishes (dendrogram cut).
    linkage:
        Hierarchical method the third party runs; any
        :class:`repro.types.LinkageMethod`.
    weights:
        Attribute weight vector used when merging per-attribute
        dissimilarity matrices.  ``None`` means equal weights.  (The
        paper lets each holder impose its own vector; pass
        ``per_holder_weights`` to model that.)
    per_holder_weights:
        Optional ``{site: weight vector}``; when set, the session
        publishes one result per holder, each merged with that holder's
        vector -- Section 5's "every data holder can impose a different
        weight vector".
    master_seed:
        Root of all session randomness (DH entropy, channel nonces).
        Two sessions with equal seeds and inputs produce byte-identical
        transcripts.
    max_workers:
        Worker-thread budget for parallel execution: the size of the
        construction scheduler's pool under
        ``suite.construction_schedule == "parallel"`` and the default
        concurrency of :meth:`repro.apps.sessions.SessionBatch.run_many_parallel`.
        Results are bit-identical for every value; only wall-clock
        changes.  Ignored by the serial schedules.
    watchdog_timeout:
        Optional stall watchdog for parallel construction, in seconds
        (default ``None``: wait forever, the historical behaviour).
        When armed and no step completes for this long while steps are
        outstanding, the run raises
        :class:`~repro.exceptions.SchedulerStallError` naming every
        pending step -- a deadlock report instead of a silent hang.
    suite:
        The protocol-level configuration.
    """

    num_clusters: int = 2
    linkage: LinkageMethod | str = LinkageMethod.AVERAGE
    weights: Sequence[float] | None = None
    per_holder_weights: dict[str, Sequence[float]] | None = None
    # The root of the whole seed-derivation tree: every pairwise secret
    # and PRNG label derives from it, so it never appears in reprs.
    master_seed: int = field(default=0, repr=False)
    max_workers: int = 4
    watchdog_timeout: float | None = None
    suite: ProtocolSuiteConfig = field(default_factory=ProtocolSuiteConfig)

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ConfigurationError(
                f"num_clusters must be >= 1, got {self.num_clusters}"
            )
        if self.max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.watchdog_timeout is not None and self.watchdog_timeout <= 0:
            raise ConfigurationError(
                f"watchdog_timeout must be > 0 seconds, got {self.watchdog_timeout}"
            )
        if isinstance(self.linkage, str):
            try:
                object.__setattr__(self, "linkage", LinkageMethod(self.linkage))
            except ValueError:
                raise ConfigurationError(
                    f"unknown linkage {self.linkage!r}"
                ) from None
