"""Scalar reference implementations of the comparison protocols.

These are the original per-element, one-scalar-draw-per-mask protocol
steps, kept verbatim as the executable specification of the paper's
pseudocode (Figures 4-6 and 8-10).  The production engine in
:mod:`repro.core.numeric` and :mod:`repro.core.alphanumeric` is
vectorized; its contract is to produce *byte-identical* protocol
messages to these functions.  Property tests assert that equivalence,
and ``benchmarks/test_bench_vectorized.py`` measures the speedup
against this baseline.

Do not "optimise" this module: its value is being the slow, obviously
paper-shaped version.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.crypto.prng import ReseedablePRNG
from repro.data.alphabet import Alphabet
from repro.exceptions import ProtocolError


def _signed(value: int, negate: bool) -> int:
    return -value if negate else value


# -- numeric, batch mode (Figures 4-6 verbatim) --------------------------------


def initiator_mask_batch(
    values: Sequence[int],
    rng_jk: ReseedablePRNG,
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> list[int]:
    """Figure 4 -- DHJ's step (scalar reference)."""
    masked = []
    for value in values:
        negate = rng_jk.next_sign_bit() == 1
        mask = rng_jt.next_bits(mask_bits)
        masked.append(mask + _signed(value, negate))
    return masked


def responder_matrix_batch(
    own_values: Sequence[int],
    masked_initiator: Sequence[int],
    rng_jk: ReseedablePRNG,
) -> list[list[int]]:
    """Figure 5 -- DHK's step (scalar reference)."""
    matrix: list[list[int]] = []
    for own in own_values:
        row = []
        for masked in masked_initiator:
            initiator_negated = rng_jk.next_sign_bit() == 1
            row.append(masked + _signed(own, not initiator_negated))
        rng_jk.reset()
        matrix.append(row)
    return matrix


def third_party_unmask_batch(
    comparison_matrix: Sequence[Sequence[int]],
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> list[list[int]]:
    """Figure 6 -- TP's step (scalar reference)."""
    distances: list[list[int]] = []
    for row in comparison_matrix:
        out_row = []
        for entry in row:
            mask = rng_jt.next_bits(mask_bits)
            out_row.append(abs(entry - mask))
        rng_jt.reset()
        distances.append(out_row)
    return distances


# -- numeric, per-pair mode ----------------------------------------------------


def initiator_mask_per_pair(
    values: Sequence[int],
    responder_size: int,
    rng_jk: ReseedablePRNG,
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> list[list[int]]:
    """Per-pair DHJ step (scalar reference)."""
    if responder_size < 0:
        raise ProtocolError(f"responder_size must be >= 0, got {responder_size}")
    matrix = []
    for _m in range(responder_size):
        row = []
        for value in values:
            negate = rng_jk.next_sign_bit() == 1
            mask = rng_jt.next_bits(mask_bits)
            row.append(mask + _signed(value, negate))
        matrix.append(row)
    return matrix


def responder_matrix_per_pair(
    own_values: Sequence[int],
    masked_matrix: Sequence[Sequence[int]],
    rng_jk: ReseedablePRNG,
) -> list[list[int]]:
    """Per-pair DHK step (scalar reference)."""
    if len(masked_matrix) != len(own_values):
        raise ProtocolError(
            f"masked matrix has {len(masked_matrix)} rows for "
            f"{len(own_values)} responder values"
        )
    matrix = []
    for own, masked_row in zip(own_values, masked_matrix):
        row = []
        for masked in masked_row:
            initiator_negated = rng_jk.next_sign_bit() == 1
            row.append(masked + _signed(own, not initiator_negated))
        matrix.append(row)
    return matrix


def third_party_unmask_per_pair(
    comparison_matrix: Sequence[Sequence[int]],
    rng_jt: ReseedablePRNG,
    mask_bits: int,
) -> list[list[int]]:
    """Per-pair TP step (scalar reference)."""
    distances = []
    for row in comparison_matrix:
        out_row = []
        for entry in row:
            mask = rng_jt.next_bits(mask_bits)
            out_row.append(abs(entry - mask))
        distances.append(out_row)
    return distances


# -- alphanumeric (Figures 8 and 10) -------------------------------------------


def initiator_mask_strings(
    strings: Sequence[str],
    alphabet: Alphabet,
    rng_jt: ReseedablePRNG,
) -> list[str]:
    """Figure 8 -- DHJ's step (scalar reference)."""
    masked = []
    for text in strings:
        alphabet.validate(text)
        shifted = [
            alphabet.shift_char(ch, rng_jt.next_below(alphabet.size)) for ch in text
        ]
        rng_jt.reset()
        masked.append("".join(shifted))
    return masked


def third_party_decode_ccm(
    intermediary: np.ndarray,
    alphabet: Alphabet,
    rng_jt: ReseedablePRNG,
) -> np.ndarray:
    """Figure 10 inner loops -- TP binarises one CCM (scalar reference)."""
    rows, cols = intermediary.shape
    ccm = np.ones((rows, cols), dtype=np.uint8)
    for q in range(rows):
        for p in range(cols):
            mask = rng_jt.next_below(alphabet.size)
            if alphabet.unshift_code(int(intermediary[q, p]), mask) == 0:
                ccm[q, p] = 0
        rng_jt.reset()
    return ccm
