"""Delta construction: Figure 11 restricted to newly arrived records.

The paper's construction is one-shot -- every arrival would force a full
O(n^2) re-run of the comparison protocols.  Nothing in the protocol
requires that: pairs among *surviving* records keep their exact
distances (the protocols are deterministic functions of the compared
values alone), so an incremental session only needs the Figure 11 rounds
for pairs that touch an arrival.  This module plans those rounds.

For an ingest epoch where a set of sites each appended a batch:

* every grown site ships a **local delta tail** -- the new condensed
  rows of its Figure 12 matrix (each arrival against every earlier local
  record), an O(added * site_size) computation instead of O(site^2);
* every holder pair {J, K} (J < K) runs at most two sub-column protocol
  rounds covering each new cross pair exactly once -- with the grown
  site always *responding*, so the comparison matrix has one row per
  arrival rather than one per peer record (per-row costs track the
  batch, not the partition):

  - ``"grow"`` (runs when J grew): K initiates with its full column, J
    responds with its arrivals -- covers J_new x K_all, and
  - ``"base"`` (runs when K grew): J initiates with its pre-epoch base,
    K responds with its arrivals -- covers J_base x K_new;

* categorical attributes ship only the arrivals' ciphertexts; the third
  party extends its merged column and patches the global 0/1 (or
  taxonomy path-metric) matrix itself -- Section 4.3 has no cross
  rounds to restrict.

Each run derives its PRNG streams under epoch-and-part-scoped labels
(:mod:`repro.core.labels`): position-independent (no global offsets, so
a pair's transcript does not depend on how other sites grew) and
history-unique (the epoch counter prevents mask-stream reuse even if a
site shrinks and later regrows over the same local id range).

Differential guarantee: the protocols are exact -- an unmasked distance
equals the plain comparison function of the two values, bit for bit --
so a patched raw matrix is entry-identical to a from-scratch
construction over the union, and therefore so are the re-normalised
matrices, the weighted merge, and every clustering derived from them.
``tests/test_incremental_differential.py`` holds the subsystem to that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.scheduler import ConstructionOutcome, ConstructionScheduler
from repro.data.matrix import AttributeSpec
from repro.data.partition import GlobalIndex
from repro.exceptions import ConfigurationError
from repro.parties.holder import DataHolder
from repro.parties.third_party import ThirdParty


@dataclass(frozen=True)
class SiteGrowth:
    """One site's record count before and after an ingest epoch."""

    old_size: int
    new_size: int

    def __post_init__(self) -> None:
        if self.old_size < 1 or self.new_size < self.old_size:
            raise ConfigurationError(
                f"invalid site growth ({self.old_size} -> {self.new_size})"
            )

    @property
    def added(self) -> int:
        return self.new_size - self.old_size


@dataclass(frozen=True)
class DeltaPlan:
    """Everything the parties need to agree on one ingest epoch.

    ``epoch`` is the session's monotone mutation counter (scopes every
    PRNG label of the epoch's runs); ``growth`` covers *every* site of
    the consortium, grown or not, so ranges for both ends of each
    protocol run are derivable without negotiation.
    """

    epoch: int
    growth: Mapping[str, SiteGrowth]

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ConfigurationError(f"delta epoch must be >= 1, got {self.epoch}")
        if not any(g.added for g in self.growth.values()):
            raise ConfigurationError("delta plan has no arrivals")

    def grown_sites(self) -> list[str]:
        """Sites with arrivals this epoch, in canonical order."""
        return [site for site in sorted(self.growth) if self.growth[site].added]

    def site(self, name: str) -> SiteGrowth:
        try:
            return self.growth[name]
        except KeyError:
            raise ConfigurationError(f"no growth entry for site {name!r}") from None

    def arrival_positions(self, index: GlobalIndex) -> list[int]:
        """Global positions of this epoch's arrivals in the *grown* frame.

        These are the rows :meth:`DissimilarityMatrix.insert_objects`
        must vacate before the epoch's blocks land.
        """
        positions: list[int] = []
        for site in index.sites:
            growth = self.site(site)
            if index.size_of(site) != growth.new_size:
                raise ConfigurationError(
                    f"index holds {index.size_of(site)} objects for {site!r}, "
                    f"plan expects {growth.new_size}"
                )
            offset = index.offset_of(site)
            positions.extend(range(offset + growth.old_size, offset + growth.new_size))
        return positions


def construct_attributes_delta(
    specs: Iterable[AttributeSpec],
    holders: Mapping[str, DataHolder],
    third_party: ThirdParty,
    plan: DeltaPlan,
    policy: str = "sequential",
    max_workers: int = 4,
    tolerate_faults: bool = False,
    watchdog_timeout: float | None = None,
) -> list[str] | ConstructionOutcome:
    """Run the delta rounds for one ingest epoch under one schedule.

    The same step-graph executor as the full construction drives the
    delta: ``"sequential"`` replays registration order, ``"interleaved"``
    overlaps local tails and sub-column protocol rounds across attributes
    and holder pairs, and ``"parallel"`` executes them on the scheduler's
    ``max_workers``-thread pool -- so ingest epochs parallelize exactly
    like initial construction.  Returns the realized step schedule (or a
    :class:`~repro.core.scheduler.ConstructionOutcome` when
    ``tolerate_faults`` -- same contract as
    :func:`repro.core.construction.construct_attributes`).
    """
    scheduler = ConstructionScheduler(
        holders,
        third_party,
        policy=policy,
        max_workers=max_workers,
        tolerate_faults=tolerate_faults,
        watchdog_timeout=watchdog_timeout,
    )
    for spec in specs:
        scheduler.add_attribute_delta(spec, plan)
    return scheduler.run()
