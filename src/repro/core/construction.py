"""Dissimilarity matrix construction (paper Section 5, Figure 11).

For each attribute chosen for clustering, the third party

1. requests every holder's local dissimilarity matrix (numeric and
   alphanumeric attributes; categorical columns arrive encrypted
   instead), and
2. runs the pairwise comparison protocol between every holder pair --
   ``C(k, 2)`` runs per attribute, initiator chosen as the
   lexicographically smaller site so all parties agree without
   negotiation --

then normalises the completed matrix into [0, 1] (Figure 11 step 4).

Since the transport PR this sequence is expressed as a step graph and
executed by :class:`repro.core.scheduler.ConstructionScheduler`: the
``"sequential"`` policy replays the seed's exact order, while
``"interleaved"`` overlaps local-matrix transfers, protocol rounds and
TP block-writes across attributes and holder pairs.  These functions are
the deterministic drivers over the in-process parties; they perform no
unmasking or maths themselves.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.scheduler import ConstructionOutcome, ConstructionScheduler
from repro.data.matrix import AttributeSpec
from repro.parties.holder import DataHolder
from repro.parties.third_party import ThirdParty


def construct_attribute(
    spec: AttributeSpec,
    holders: Mapping[str, DataHolder],
    third_party: ThirdParty,
) -> None:
    """Build the global dissimilarity matrix for one attribute.

    Drives holders and the third party through the Figure 11 sequence
    (seed order); on return ``third_party.attribute_matrix(spec.name)``
    is available.
    """
    construct_attributes([spec], holders, third_party)


def construct_attributes(
    specs: Iterable[AttributeSpec],
    holders: Mapping[str, DataHolder],
    third_party: ThirdParty,
    policy: str = "sequential",
    max_workers: int = 4,
    tolerate_faults: bool = False,
    watchdog_timeout: float | None = None,
) -> list[str] | ConstructionOutcome:
    """Build the global matrices for many attributes under one schedule.

    ``max_workers`` sizes the worker pool of the ``"parallel"`` policy
    (ignored by the serial schedules).  Returns the realized step
    schedule (useful to assert pipelining in tests and to debug protocol
    choreography).

    With ``tolerate_faults=True`` a crashed or unreachable party no
    longer aborts the run: only the affected attributes' steps fail (and
    their dependents are cancelled), the rest complete normally, and the
    return value becomes a
    :class:`~repro.core.scheduler.ConstructionOutcome` carrying an
    explicit degradation report alongside the realized trace -- a
    partial result set instead of an exception.  ``watchdog_timeout``
    arms the parallel policy's stall watchdog.
    """
    scheduler = ConstructionScheduler(
        holders,
        third_party,
        policy=policy,
        max_workers=max_workers,
        tolerate_faults=tolerate_faults,
        watchdog_timeout=watchdog_timeout,
    )
    for spec in specs:
        scheduler.add_attribute(spec)
    return scheduler.run()
