"""Dissimilarity matrix construction (paper Section 5, Figure 11).

For each attribute chosen for clustering, the third party

1. requests every holder's local dissimilarity matrix (numeric and
   alphanumeric attributes; categorical columns arrive encrypted
   instead), and
2. runs the pairwise comparison protocol between every holder pair --
   ``C(k, 2)`` runs per attribute, initiator chosen as the
   lexicographically smaller site so all parties agree without
   negotiation --

then normalises the completed matrix into [0, 1] (Figure 11 step 4).
This module is the deterministic driver of that sequence over the
in-process parties; it performs no unmasking or maths itself.
"""

from __future__ import annotations

from typing import Mapping

from repro.data.matrix import AttributeSpec
from repro.exceptions import ProtocolError
from repro.parties.holder import DataHolder
from repro.parties.third_party import ThirdParty
from repro.types import AttributeType


def construct_attribute(
    spec: AttributeSpec,
    holders: Mapping[str, DataHolder],
    third_party: ThirdParty,
) -> None:
    """Build the global dissimilarity matrix for one attribute.

    Drives holders and the third party through the Figure 11 sequence;
    on return ``third_party.attribute_matrix(spec.name)`` is available.
    """
    sites = list(third_party.index.sites)
    if set(sites) != set(holders):
        raise ProtocolError(
            f"holders {sorted(holders)} do not match index sites {sites}"
        )

    if spec.attr_type is AttributeType.CATEGORICAL:
        for site in sites:
            holders[site].send_categorical(spec, third_party.name)
            third_party.receive_encrypted_column(site)
        third_party.finalize_categorical(spec.name)
    else:
        for site in sites:
            holders[site].send_local_matrix(third_party.name, spec)
            third_party.receive_local_matrix(site)
        for j_index, initiator in enumerate(sites):
            for responder in sites[j_index + 1 :]:
                if spec.attr_type is AttributeType.NUMERIC:
                    holders[initiator].numeric_initiate(
                        spec,
                        responder,
                        third_party.name,
                        responder_size=third_party.index.size_of(responder),
                    )
                    holders[responder].numeric_respond(
                        spec, initiator, third_party.name
                    )
                    third_party.receive_numeric_block(responder)
                else:
                    holders[initiator].alnum_initiate(
                        spec, responder, third_party.name
                    )
                    holders[responder].alnum_respond(
                        spec, initiator, third_party.name
                    )
                    third_party.receive_alnum_block(responder)

    third_party.finalize_attribute(spec.name)
