"""The paper's primary contribution: privacy-preserving comparison
protocols and dissimilarity matrix construction.

* :mod:`repro.core.numeric` -- Section 4.1 protocol (Figures 4-6),
* :mod:`repro.core.alphanumeric` -- Section 4.2 protocol (Figures 8-10),
* :mod:`repro.core.categorical` -- Section 4.3 protocol,
* :mod:`repro.core.construction` -- Figure 11 driver,
* :mod:`repro.core.delta` -- incremental (new-pairs-only) construction,
* :mod:`repro.core.session` -- end-to-end orchestration,
* :mod:`repro.core.results` -- Figure 13 publication format,
* :mod:`repro.core.config` -- session/protocol configuration,
* :mod:`repro.core.labels` -- PRNG/key derivation label grammar.
"""

from repro.core.config import ProtocolSuiteConfig, SessionConfig
from repro.core.results import Cluster, ClusteringResult, result_from_labels
from repro.core.session import ClusteringSession

__all__ = [
    "ProtocolSuiteConfig",
    "SessionConfig",
    "Cluster",
    "ClusteringResult",
    "result_from_labels",
    "ClusteringSession",
]
