"""End-to-end privacy-preserving clustering sessions.

:class:`ClusteringSession` is the library's front door.  Given per-site
data matrices and a :class:`~repro.core.config.SessionConfig`, it stands
up the full deployment of Section 3 -- ``k`` data holders, one third
party, pairwise Diffie-Hellman secrets, secured channels -- executes the
Figure 11 construction for every attribute, and has the third party
cluster and publish.

Everything is deterministic in ``config.master_seed``, so experiment
transcripts (including every byte count) are exactly reproducible.
"""

from __future__ import annotations

import os
from typing import Mapping

from repro.core import labels
from repro.core.config import SessionConfig
from repro.core.construction import construct_attributes
from repro.core.results import ClusteringResult
from repro.core.scheduler import ConstructionOutcome, DegradedReport
from repro.crypto.keys import PairwiseSecret, agree_pairwise
from repro.crypto.prng import ReseedablePRNG, make_prng
from repro.data.matrix import DataMatrix, Schema
from repro.data.partition import GlobalIndex
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import (
    ConfigurationError,
    LaneTimeoutError,
    PartyCrashError,
    ProtocolError,
)
from repro.network.faults import FaultPlan
from repro.network.simulator import Network
from repro.parties.holder import DataHolder
from repro.parties.third_party import ThirdParty
from repro.types import AttributeType, LinkageMethod

#: Environment hook for CI chaos runs: naming a
#: :data:`repro.network.faults.PRESETS` entry here makes every session
#: install that seeded fault plan (seed derived from the master seed, so
#: runs stay reproducible).  The determinism suites pass unchanged under
#: any maskable preset -- that is the whole point.
CHAOS_PRESET_ENV = "REPRO_CHAOS_PRESET"


def session_entropy(master_seed: int, label: str) -> ReseedablePRNG:
    """Session-deterministic cryptographic entropy source.

    Module-level so that :class:`repro.apps.sessions.SessionBatch` can
    pre-derive the exact DH entropy a standalone session would use --
    batched and standalone sessions share byte-identical transcripts.
    """
    return make_prng(f"session|{master_seed}|{label}", "hash_drbg")


class ClusteringSession:
    """Orchestrates one full run of the paper's protocol suite.

    Parameters
    ----------
    config:
        Session and protocol configuration.
    partitions:
        ``{site_name: DataMatrix}`` -- each holder's private partition.
        All partitions must share one schema (the pre-agreed attribute
        list of Section 3); at least two holders are required.
    tp_name:
        Name of the third party (must differ from every site name).
    shared_secrets:
        Optional pre-agreed ``{(a, b): PairwiseSecret}`` covering every
        party pair (sites plus third party).  When given, the session
        skips Diffie-Hellman key agreement -- this is how
        :class:`repro.apps.sessions.SessionBatch` amortises setup across
        many sessions.  Passing the secrets a standalone session would
        have derived leaves every transcript byte unchanged.
    fault_plan:
        Optional seeded :class:`~repro.network.faults.FaultPlan`;
        installing one arms the network's reliable-delivery shim with the
        suite's retry knobs.  When ``None``, the ``REPRO_CHAOS_PRESET``
        environment variable (a preset name) installs a reproducible
        chaos plan derived from the master seed -- the CI chaos-smoke
        job's hook.
    """

    def __init__(
        self,
        config: SessionConfig,
        partitions: Mapping[str, DataMatrix],
        tp_name: str = "TP",
        shared_secrets: Mapping[tuple[str, str], PairwiseSecret] | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if len(partitions) < 2:
            raise ConfigurationError(
                f"the protocol requires k >= 2 data holders, got {len(partitions)}"
            )
        if tp_name in partitions:
            raise ConfigurationError(
                f"third party name {tp_name!r} collides with a data holder"
            )
        schemas = {m.schema for m in partitions.values()}
        if len(schemas) != 1:
            raise ConfigurationError("all partitions must share one schema")
        for site, matrix in partitions.items():
            if matrix.num_rows == 0:
                raise ConfigurationError(f"site {site!r} holds no objects")

        self.config = config
        self.partitions = dict(partitions)
        self.tp_name = tp_name
        self.schema: Schema = next(iter(schemas))
        self.index = GlobalIndex({s: m.num_rows for s, m in partitions.items()})
        if fault_plan is None:
            preset = os.environ.get(CHAOS_PRESET_ENV)
            if preset:
                fault_plan = FaultPlan.preset(
                    preset,
                    seed=f"chaos|{config.master_seed}",
                    parties=sorted(partitions),
                )
        retry = (
            config.suite.retry_policy()
            if (config.suite.reliable_delivery or fault_plan is not None)
            else None
        )
        self.network = Network(
            latency=config.suite.link_latency,
            fault_plan=fault_plan,
            retry=retry,
        )
        self._constructed = False
        self._weights_collected = False
        #: Step names in the order the construction scheduler ran them
        #: (populated by :meth:`execute_protocol`).
        self.construction_trace: list[str] = []
        #: Degradation report of the last construction
        #: (:class:`~repro.core.scheduler.DegradedReport`; ``None`` until
        #: a ``tolerate_faults`` run populates it).
        self.degraded_report: DegradedReport | None = None
        #: Sites the session could not exchange weights/results with
        #: (tolerant runs only).
        self.unreachable_sites: list[str] = []

        self._setup_parties(shared_secrets)

    # -- setup ------------------------------------------------------------

    def _entropy(self, label: str):
        """Session-deterministic cryptographic entropy source."""
        return session_entropy(self.config.master_seed, label)

    def _setup_parties(
        self, shared_secrets: Mapping[tuple[str, str], PairwiseSecret] | None
    ) -> None:
        suite = self.config.suite
        names = sorted(self.partitions) + [self.tp_name]
        for name in names:
            self.network.add_party(name)

        if shared_secrets is None:
            # Pairwise Diffie-Hellman key agreement (out-of-band setup;
            # the paper's cost analysis starts after secrets are shared).
            secrets = agree_pairwise(
                {name: self._entropy(f"dh|{name}") for name in names}
            )
        else:
            sorted_names = sorted(names)
            expected = {
                (a, b)
                for i, a in enumerate(sorted_names)
                for b in sorted_names[i + 1 :]
            }
            if set(shared_secrets) != expected:
                raise ConfigurationError(
                    f"shared_secrets must cover exactly the pairs {sorted(expected)}"
                )
            secrets = dict(shared_secrets)

        self.holders: dict[str, DataHolder] = {
            site: DataHolder(
                site,
                matrix,
                self.network,
                suite,
                entropy=self._entropy(f"holder|{site}"),
            )
            for site, matrix in self.partitions.items()
        }
        self.third_party = ThirdParty(
            self.tp_name, self.network, self.schema, self.index, suite
        )

        parties = {**self.holders, self.tp_name: self.third_party}
        for (a, b), secret in secrets.items():
            parties[a].set_secret(b, secret)
            parties[b].set_secret(a, secret)
            self.network.connect(
                a,
                b,
                secure=suite.secure_channels,
                key=secret.key(labels.channel_key(a, b)) if suite.secure_channels else None,
                entropy=self._entropy(f"nonce|{a}|{b}") if suite.secure_channels else None,
            )

    # -- protocol execution -----------------------------------------------------

    def _holder_weights(self, site: str) -> list[float]:
        config = self.config
        if config.per_holder_weights and site in config.per_holder_weights:
            weights = list(config.per_holder_weights[site])
        elif config.weights is not None:
            weights = list(config.weights)
        else:
            weights = [1.0] * len(self.schema)
        if len(weights) != len(self.schema):
            raise ConfigurationError(
                f"{len(weights)} weights for {len(self.schema)} attributes"
            )
        return weights

    def execute_protocol(self) -> None:
        """Run key distribution and matrix construction (idempotent)."""
        if self._constructed:
            return
        sites = list(self.index.sites)

        needs_group_key = any(
            spec.attr_type is AttributeType.CATEGORICAL for spec in self.schema
        )
        if needs_group_key:
            leader = sites[0]
            self.holders[leader].distribute_group_key(sites[1:])
            for site in sites[1:]:
                self.holders[site].receive_group_key(leader)

        suite = self.config.suite
        outcome = construct_attributes(
            self.schema,
            self.holders,
            self.third_party,
            policy=suite.construction_schedule,
            max_workers=self.config.max_workers,
            tolerate_faults=suite.tolerate_faults,
            watchdog_timeout=self.config.watchdog_timeout,
        )
        if isinstance(outcome, ConstructionOutcome):
            self.construction_trace = list(outcome.trace)
            self.degraded_report = outcome.report
        else:
            self.construction_trace = outcome

        for site in sites:
            if suite.tolerate_faults:
                try:
                    self.holders[site].send_weights(
                        self.tp_name, self._holder_weights(site)
                    )
                    self.third_party.receive_weights(site)
                except (PartyCrashError, LaneTimeoutError):
                    self.unreachable_sites.append(site)
            else:
                self.holders[site].send_weights(
                    self.tp_name, self._holder_weights(site)
                )
                self.third_party.receive_weights(site)
        self._constructed = True

    @property
    def degraded(self) -> bool:
        """Whether the last tolerant construction lost anything."""
        return bool(
            (self.degraded_report is not None and self.degraded_report.degraded)
            or self.unreachable_sites
        )

    def run(self) -> ClusteringResult:
        """Execute everything and publish one result to all holders.

        The merged matrix uses the average of the holders' submitted
        weight vectors (identical vectors -- the default -- therefore
        behave as any single one).

        Under ``suite.tolerate_faults`` a degraded construction does not
        abort the session: the third party clusters the merged matrix of
        the attributes that *completed* (bit-identical to a session
        configured with only those attributes), publishes to every
        reachable holder, and :attr:`degraded_report` /
        :attr:`unreachable_sites` say exactly what was lost.  Lanes that
        cancelled steps will never read are drained rather than asserted
        empty.
        """
        self.execute_protocol()
        linkage = self.config.linkage
        assert isinstance(linkage, LinkageMethod)
        if self.degraded:
            report = self.degraded_report
            assert report is not None
            down = set(self.unreachable_sites)
            plan = self.network.fault_plan
            if plan is not None:
                down.update(plan.crashed_parties())
            reachable = [s for s in self.index.sites if s not in down]
            result = self.third_party.cluster_and_publish(
                reachable,
                self.config.num_clusters,
                linkage,
                attributes=list(report.completed_attributes),
            )
            for site in reachable:
                try:
                    holder_copy = self.holders[site].receive_result(self.tp_name)
                except (PartyCrashError, LaneTimeoutError):
                    self.unreachable_sites.append(site)
                    continue
                if holder_copy.to_payload() != result.to_payload():
                    raise ProtocolError(f"result received by {site!r} diverged")
            # Cancelled steps leave their lanes unread by design; see
            # DESIGN.md "Fault model & recovery".
            self.network.drain()
            return result
        result = self.third_party.cluster_and_publish(
            list(self.index.sites), self.config.num_clusters, linkage
        )
        received = {
            site: self.holders[site].receive_result(self.tp_name)
            for site in self.index.sites
        }
        for site, holder_copy in received.items():
            if holder_copy.to_payload() != result.to_payload():
                raise ProtocolError(f"result received by {site!r} diverged")
        self.network.assert_drained()
        return result

    def run_per_holder(self) -> dict[str, ClusteringResult]:
        """Publish one result per holder, each with that holder's weights.

        Section 5: "Every data holder can impose a different weight
        vector and clustering algorithm of his own choice."
        """
        self.execute_protocol()
        linkage = self.config.linkage
        assert isinstance(linkage, LinkageMethod)
        results: dict[str, ClusteringResult] = {}
        for site in self.index.sites:
            result = self.third_party.cluster_and_publish(
                [site],
                self.config.num_clusters,
                linkage,
                weights=self._holder_weights(site),
            )
            results[site] = self.holders[site].receive_result(self.tp_name)
            if results[site].to_payload() != result.to_payload():
                raise ProtocolError(f"result received by {site!r} diverged")
        self.network.assert_drained()
        return results

    # -- experiment access -------------------------------------------------------

    def final_matrix(self) -> DissimilarityMatrix:
        """The third party's merged matrix (experiment/test access only).

        Section 5 keeps this secret in deployments; experiments read it
        to verify exactness against the centralized baseline.  A
        degraded session merges only the attributes that completed --
        the same matrix its published result clustered.
        """
        self.execute_protocol()
        report = self.degraded_report
        if report is not None and report.degraded:
            return self.third_party.merged_matrix(
                attributes=list(report.completed_attributes)
            )
        return self.third_party.merged_matrix()

    def total_bytes(self) -> int:
        """Wire bytes transmitted so far across all links."""
        return self.network.total_bytes()
