"""The categorical comparison protocol (paper Section 4.3).

"Data holder parties share a secret key to encrypt their data.  Value of
the categorical attribute is encrypted for every object at every site and
these encrypted data are sent to the third party ... If ciphertext of two
categorical values are the same, then plaintexts must be the same.  Third
party merges encrypted data and runs the local dissimilarity matrix
construction algorithm [Figure 12].  Outcome is not a local dissimilarity
matrix ... since data from all parties is input to the algorithm."

Unlike the numeric/alphanumeric cases there are no cross-site protocol
rounds: each holder sends one encrypted column (cost O(n), Section 4.3),
and the TP alone assembles the *global* 0/1 matrix.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.crypto.detenc import DeterministicEncryptor
from repro.data.partition import GlobalIndex
from repro.distance.categorical import ciphertext_distance
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.distance.local import local_dissimilarity
from repro.exceptions import ProtocolError


def holder_encrypt_column(
    encryptor: DeterministicEncryptor,
    attribute: str,
    values: Sequence[str],
) -> list[bytes]:
    """Per-site step: deterministically encrypt the categorical column."""
    return encryptor.encrypt_column(attribute, list(values))


def third_party_categorical_matrix(
    encrypted_columns: Mapping[str, Sequence[bytes]],
    index: GlobalIndex,
) -> DissimilarityMatrix:
    """TP step: merge ciphertext columns and run Figure 12 on the result.

    Columns are concatenated in the canonical site order of ``index`` so
    the output rows line up with every other attribute's global matrix.
    """
    if set(encrypted_columns) != set(index.sites):
        raise ProtocolError(
            f"columns from sites {sorted(encrypted_columns)} do not match "
            f"index sites {list(index.sites)}"
        )
    merged: list[bytes] = []
    for site in index.sites:
        column = list(encrypted_columns[site])
        if len(column) != index.size_of(site):
            raise ProtocolError(
                f"site {site!r} sent {len(column)} ciphertexts, "
                f"index expects {index.size_of(site)}"
            )
        merged.extend(column)
    return local_dissimilarity(merged, ciphertext_distance)
