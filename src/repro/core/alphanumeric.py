"""The alphanumeric comparison protocol (paper Section 4.2, Figures 8-10).

Goal: the third party computes the edit distance between every cross-site
string pair without any party revealing a string.  The trick (Section 2.3)
is that the edit-distance DP does not need the strings -- a 0/1
*character comparison matrix* (CCM) is "equally expressive" -- and a CCM
can be assembled from additively masked characters:

* **DHJ (initiator)** shifts each character of each string by a fresh
  draw of ``rng_JT`` modulo the alphabet size, re-initialising the
  generator after every string (Figure 8), so *every* string is masked
  with the same random prefix vector ``R``::

      s'[p] = (s[p] + R[p]) mod |A|

* **DHK (responder)** cannot unmask (it lacks ``r_JT``); it subtracts its
  own characters, producing the intermediary matrix (Figure 9)::

      M[q][p] = (s'[p] - t[q]) mod |A|

* **TP** regenerates ``R`` and binarises (Figure 10)::

      CCM[q][p] = 0  if (M[q][p] - R[p]) mod |A| == 0  else 1

  then runs the edit-distance DP on the CCM.

Orientation is one row per responder (target) character, one column per
initiator (source) character -- matching Figures 9-10 and
:mod:`repro.distance.ccm`.

Worked check (paper Figure 7, alphabet {a,b,c,d}): s = "abc" with
R = (0, 1, 3) masks to s' = "acb"; t = "bd" yields
M = [[d, b, a], [b, d, c]] as letters; unmasking gives
CCM = [[1, 0, 1], [1, 1, 1]], whose single zero says s[1] == t[0] = 'b'.
The test suite pins this trace literally.

Vectorization
-------------
The per-string / per-row re-initialisation of Figures 8 and 10 means the
mask vector ``R`` is the *same stream prefix* every time, so one
:meth:`~repro.crypto.prng.ReseedablePRNG.next_below_block` draw (plus one
``reset``) covers all strings/rows; masking, intermediary construction
and binarisation are modular array arithmetic; and the edit-distance DPs
batch across equal-shape string pairs.  Outputs are bitwise identical to
the scalar reference in :mod:`repro.core.reference` -- not a single
protocol message changes.  (Exactness note: a scalar Figure 8/10 run
consumes its *entry* stream for the first string/row and the
*post-reset* stream afterwards; the vectorized code reproduces both, so
equivalence holds even for generators passed in mid-stream.)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.crypto.prng import ReseedablePRNG
from repro.data.alphabet import Alphabet
from repro.distance.edit import edit_distances_from_ccms
from repro.exceptions import ProtocolError


def _require_byte_codes(alphabet: Alphabet) -> None:
    if alphabet.size > 256:
        raise ProtocolError(
            f"alphabet of size {alphabet.size} exceeds the uint8 wire encoding"
        )


def _require_2d(intermediary: np.ndarray) -> None:
    if intermediary.ndim != 2:
        raise ProtocolError(
            f"intermediary CCM must be 2-D, got shape {intermediary.shape}"
        )


def initiator_mask_strings(
    strings: Sequence[str],
    alphabet: Alphabet,
    rng_jt: ReseedablePRNG,
) -> list[str]:
    """Figure 8 -- DHJ masks every string with the shared random vector.

    The per-string re-initialisation means character position ``p`` of
    *any* string is always shifted by the same ``R[p]``; that is what
    lets the TP unmask CCM columns without knowing which strings meet.
    One block draw therefore serves every string (the first string reads
    the entry-state stream, the rest the post-reset stream, exactly as
    the scalar loop does).
    """
    strings = list(strings)
    if not strings:
        return []
    codes = [alphabet.encode_validated(text) for text in strings]
    size = alphabet.size
    first_masks = rng_jt.next_below_block(codes[0].size, size)
    rng_jt.reset()
    if len(codes) > 1:
        longest = max(c.size for c in codes[1:])
        rest_masks = rng_jt.next_below_block(longest, size)
        rng_jt.reset()
    masked = [alphabet.decode_array((codes[0] + first_masks) % size)]
    for arr in codes[1:]:
        masked.append(alphabet.decode_array((arr + rest_masks[: arr.size]) % size))
    return masked


def responder_ccm_matrices(
    own_strings: Sequence[str],
    masked_initiator: Sequence[str],
    alphabet: Alphabet,
) -> list[list[np.ndarray]]:
    """Figure 9 -- DHK builds intermediary CCMs for every string pair.

    ``result[m][n][q, p] = (code(s'_n[p]) - code(t_m[q])) mod |A|`` as a
    uint8 array.  No randomness is involved on this side; the masking
    DHJ applied already hides the source characters from DHK.  Strings
    are encoded once and every pair is a single broadcast subtraction.
    """
    _require_byte_codes(alphabet)
    own_codes = [alphabet.encode_validated(own) for own in own_strings]
    masked_codes = [alphabet.encode_array(masked) for masked in masked_initiator]
    size = alphabet.size
    result: list[list[np.ndarray]] = []
    for own in own_codes:
        own_col = own[:, None]
        result.append(
            [
                ((masked[None, :] - own_col) % size).astype(np.uint8)
                for masked in masked_codes
            ]
        )
    return result


def _mask_vectors(
    rng_jt: ReseedablePRNG, first_cols: int, longest: int, size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Entry-state masks for the first decoded row, post-reset masks for
    every later row (the Figure 10 per-row re-initialisation)."""
    first_masks = rng_jt.next_below_block(first_cols, size)
    rng_jt.reset()
    rest_masks = rng_jt.next_below_block(longest, size)
    rng_jt.reset()
    return first_masks, rest_masks


def _binarize(
    intermediary: np.ndarray,
    row_masks: np.ndarray,
    later_masks: np.ndarray,
    size: int,
) -> np.ndarray:
    """One CCM: row 0 unmasked with ``row_masks``, rows 1+ with
    ``later_masks`` (they coincide whenever the generator started fresh)."""
    cols = intermediary.shape[1]
    ccm = (
        (intermediary.astype(np.int64) - later_masks[None, :cols]) % size != 0
    ).astype(np.uint8)
    if ccm.shape[0]:
        ccm[0] = (
            (intermediary[0].astype(np.int64) - row_masks[:cols]) % size != 0
        ).astype(np.uint8)
    return ccm


def third_party_decode_ccm(
    intermediary: np.ndarray,
    alphabet: Alphabet,
    rng_jt: ReseedablePRNG,
) -> np.ndarray:
    """Figure 10 (inner loops) -- TP binarises one intermediary CCM.

    The generator is re-initialised after every *row*: each row spans the
    same source-character positions, so it consumes the same mask prefix
    ``R[0..p-1]`` -- regenerated here with one block draw per stream
    state instead of one scalar draw per cell.
    """
    _require_2d(intermediary)
    rows, cols = intermediary.shape
    if rows == 0:
        return np.ones((0, cols), dtype=np.uint8)
    first_masks, rest_masks = _mask_vectors(rng_jt, cols, cols, alphabet.size)
    return _binarize(intermediary, first_masks, rest_masks, alphabet.size)


def third_party_distances(
    intermediary_matrices: Sequence[Sequence[np.ndarray]],
    alphabet: Alphabet,
    rng_jt: ReseedablePRNG,
) -> np.ndarray:
    """Figure 10 (full) -- binarise every CCM and run the edit-distance DP.

    Returns the cross-site block ``J_K[m][n]`` = edit distance between
    responder string ``m`` and initiator string ``n`` as an int64 array.
    Equal-shape pairs share one batched DP.
    """
    rows_of_matrices = [list(row) for row in intermediary_matrices]
    if not rows_of_matrices:
        return np.zeros((0, 0), dtype=np.int64)
    flat: list[np.ndarray] = []
    for row in rows_of_matrices:
        if len(row) != len(rows_of_matrices[0]):
            raise ProtocolError("ragged intermediary CCM matrix")
        for intermediary in row:
            _require_2d(intermediary)
            flat.append(intermediary)
    size = alphabet.size
    populated = [m.shape[1] for m in flat if m.shape[0] > 0]
    if populated:
        longest = max(populated)
        first_masks, rest_masks = _mask_vectors(
            rng_jt, populated[0], longest, size
        )
    ccms = []
    decoded_any = False
    for intermediary in flat:
        if intermediary.shape[0] == 0:
            ccms.append(intermediary)
            continue
        row_masks = rest_masks if decoded_any else first_masks
        ccms.append(_binarize(intermediary, row_masks, rest_masks, size))
        decoded_any = True
    distances = edit_distances_from_ccms(ccms)
    n_cols = len(rows_of_matrices[0])
    return distances.reshape(len(rows_of_matrices), n_cols)


# -- fresh-masks extension (addresses the paper's Section 6 open problem) ------
#
# Figure 8's per-string re-initialisation means every string is masked
# with the *same* random vector R, which leaks positional letter
# statistics across strings (exploited by
# :mod:`repro.attacks.language`).  The paper defers "attacks using
# statistics of the input language" to future work; the variant below is
# that future work: one continuous mask stream, never reset, so every
# character of every string gets a fresh offset.  Communication costs
# are unchanged -- only the TP's bookkeeping differs (it reconstructs
# per-string mask vectors from the CCM column counts it receives).


def initiator_mask_strings_fresh(
    strings: Sequence[str],
    alphabet: Alphabet,
    rng_jt: ReseedablePRNG,
) -> list[str]:
    """Mask every character with a fresh draw (no per-string reset)."""
    strings = list(strings)
    codes = [alphabet.encode_validated(text) for text in strings]
    size = alphabet.size
    masks = rng_jt.next_below_block(sum(c.size for c in codes), size)
    masked = []
    offset = 0
    for arr in codes:
        masked.append(alphabet.decode_array((arr + masks[offset : offset + arr.size]) % size))
        offset += arr.size
    return masked


def third_party_distances_fresh(
    intermediary_matrices: Sequence[Sequence[np.ndarray]],
    alphabet: Alphabet,
    rng_jt: ReseedablePRNG,
) -> np.ndarray:
    """TP side of the fresh-masks variant.

    The mask vector of initiator string ``n`` occupies stream positions
    ``sum(len(s_0..n-1)) .. +len(s_n)``; string lengths are read off the
    CCM column counts, so no extra message is needed.
    """
    rows_of_matrices = [list(row) for row in intermediary_matrices]
    if not rows_of_matrices:
        return np.zeros((0, 0), dtype=np.int64)
    first_row = rows_of_matrices[0]
    size = alphabet.size
    lengths = []
    for intermediary in first_row:
        _require_2d(intermediary)
        lengths.append(intermediary.shape[1])
    stream = rng_jt.next_below_block(sum(lengths), size)
    bounds = np.cumsum([0] + lengths)
    masks = [stream[bounds[n] : bounds[n + 1]] for n in range(len(lengths))]
    ccms: list[np.ndarray] = []
    for row in rows_of_matrices:
        if len(row) != len(masks):
            raise ProtocolError("ragged intermediary CCM matrix")
        for n, intermediary in enumerate(row):
            if intermediary.ndim != 2 or intermediary.shape[1] != masks[n].size:
                raise ProtocolError(
                    f"CCM column count {intermediary.shape} does not match "
                    f"initiator string {n} length {masks[n].size}"
                )
            ccms.append(
                ((intermediary.astype(np.int64) - masks[n][None, :]) % size != 0).astype(
                    np.uint8
                )
            )
    distances = edit_distances_from_ccms(ccms)
    return distances.reshape(len(rows_of_matrices), len(first_row))
