"""The alphanumeric comparison protocol (paper Section 4.2, Figures 8-10).

Goal: the third party computes the edit distance between every cross-site
string pair without any party revealing a string.  The trick (Section 2.3)
is that the edit-distance DP does not need the strings -- a 0/1
*character comparison matrix* (CCM) is "equally expressive" -- and a CCM
can be assembled from additively masked characters:

* **DHJ (initiator)** shifts each character of each string by a fresh
  draw of ``rng_JT`` modulo the alphabet size, re-initialising the
  generator after every string (Figure 8), so *every* string is masked
  with the same random prefix vector ``R``::

      s'[p] = (s[p] + R[p]) mod |A|

* **DHK (responder)** cannot unmask (it lacks ``r_JT``); it subtracts its
  own characters, producing the intermediary matrix (Figure 9)::

      M[q][p] = (s'[p] - t[q]) mod |A|

* **TP** regenerates ``R`` and binarises (Figure 10)::

      CCM[q][p] = 0  if (M[q][p] - R[p]) mod |A| == 0  else 1

  then runs the edit-distance DP on the CCM.

Orientation is one row per responder (target) character, one column per
initiator (source) character -- matching Figures 9-10 and
:mod:`repro.distance.ccm`.

Worked check (paper Figure 7, alphabet {a,b,c,d}): s = "abc" with
R = (0, 1, 3) masks to s' = "acb"; t = "bd" yields
M = [[d, b, a], [b, d, c]] as letters; unmasking gives
CCM = [[1, 0, 1], [1, 1, 1]], whose single zero says s[1] == t[0] = 'b'.
The test suite pins this trace literally.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.crypto.prng import ReseedablePRNG
from repro.data.alphabet import Alphabet
from repro.distance.edit import edit_distance_from_ccm
from repro.exceptions import ProtocolError


def _require_byte_codes(alphabet: Alphabet) -> None:
    if alphabet.size > 256:
        raise ProtocolError(
            f"alphabet of size {alphabet.size} exceeds the uint8 wire encoding"
        )


def initiator_mask_strings(
    strings: Sequence[str],
    alphabet: Alphabet,
    rng_jt: ReseedablePRNG,
) -> list[str]:
    """Figure 8 -- DHJ masks every string with the shared random vector.

    The per-string re-initialisation means character position ``p`` of
    *any* string is always shifted by the same ``R[p]``; that is what
    lets the TP unmask CCM columns without knowing which strings meet.
    """
    masked = []
    for text in strings:
        alphabet.validate(text)
        shifted = [
            alphabet.shift_char(ch, rng_jt.next_below(alphabet.size)) for ch in text
        ]
        rng_jt.reset()
        masked.append("".join(shifted))
    return masked


def responder_ccm_matrices(
    own_strings: Sequence[str],
    masked_initiator: Sequence[str],
    alphabet: Alphabet,
) -> list[list[np.ndarray]]:
    """Figure 9 -- DHK builds intermediary CCMs for every string pair.

    ``result[m][n][q, p] = (code(s'_n[p]) - code(t_m[q])) mod |A|`` as a
    uint8 array.  No randomness is involved on this side; the masking
    DHJ applied already hides the source characters from DHK.
    """
    _require_byte_codes(alphabet)
    result: list[list[np.ndarray]] = []
    for own in own_strings:
        alphabet.validate(own)
        own_codes = np.asarray(alphabet.encode(own), dtype=np.int64)
        row: list[np.ndarray] = []
        for masked in masked_initiator:
            masked_codes = np.asarray(alphabet.encode(masked), dtype=np.int64)
            diff = (masked_codes[None, :] - own_codes[:, None]) % alphabet.size
            row.append(diff.astype(np.uint8))
        result.append(row)
    return result


def third_party_decode_ccm(
    intermediary: np.ndarray,
    alphabet: Alphabet,
    rng_jt: ReseedablePRNG,
) -> np.ndarray:
    """Figure 10 (inner loops) -- TP binarises one intermediary CCM.

    The generator is re-initialised after every *row*: each row spans the
    same source-character positions, so it consumes the same mask prefix
    ``R[0..p-1]``.
    """
    rows, cols = intermediary.shape
    ccm = np.ones((rows, cols), dtype=np.uint8)
    for q in range(rows):
        for p in range(cols):
            mask = rng_jt.next_below(alphabet.size)
            if alphabet.unshift_code(int(intermediary[q, p]), mask) == 0:
                ccm[q, p] = 0
        rng_jt.reset()
    return ccm


def third_party_distances(
    intermediary_matrices: Sequence[Sequence[np.ndarray]],
    alphabet: Alphabet,
    rng_jt: ReseedablePRNG,
) -> list[list[int]]:
    """Figure 10 (full) -- binarise every CCM and run the edit-distance DP.

    Returns the cross-site block ``J_K[m][n]`` = edit distance between
    responder string ``m`` and initiator string ``n``.
    """
    distances: list[list[int]] = []
    for row in intermediary_matrices:
        out_row = []
        for intermediary in row:
            if intermediary.ndim != 2:
                raise ProtocolError(
                    f"intermediary CCM must be 2-D, got shape {intermediary.shape}"
                )
            ccm = third_party_decode_ccm(intermediary, alphabet, rng_jt)
            out_row.append(edit_distance_from_ccm(ccm))
        distances.append(out_row)
    return distances


# -- fresh-masks extension (addresses the paper's Section 6 open problem) ------
#
# Figure 8's per-string re-initialisation means every string is masked
# with the *same* random vector R, which leaks positional letter
# statistics across strings (exploited by
# :mod:`repro.attacks.language`).  The paper defers "attacks using
# statistics of the input language" to future work; the variant below is
# that future work: one continuous mask stream, never reset, so every
# character of every string gets a fresh offset.  Communication costs
# are unchanged -- only the TP's bookkeeping differs (it reconstructs
# per-string mask vectors from the CCM column counts it receives).


def initiator_mask_strings_fresh(
    strings: Sequence[str],
    alphabet: Alphabet,
    rng_jt: ReseedablePRNG,
) -> list[str]:
    """Mask every character with a fresh draw (no per-string reset)."""
    masked = []
    for text in strings:
        alphabet.validate(text)
        masked.append(
            "".join(
                alphabet.shift_char(ch, rng_jt.next_below(alphabet.size))
                for ch in text
            )
        )
    return masked


def third_party_distances_fresh(
    intermediary_matrices: Sequence[Sequence[np.ndarray]],
    alphabet: Alphabet,
    rng_jt: ReseedablePRNG,
) -> list[list[int]]:
    """TP side of the fresh-masks variant.

    The mask vector of initiator string ``n`` occupies stream positions
    ``sum(len(s_0..n-1)) .. +len(s_n)``; string lengths are read off the
    CCM column counts, so no extra message is needed.
    """
    if not intermediary_matrices:
        return []
    first_row = intermediary_matrices[0]
    masks: list[list[int]] = []
    for intermediary in first_row:
        if intermediary.ndim != 2:
            raise ProtocolError(
                f"intermediary CCM must be 2-D, got shape {intermediary.shape}"
            )
        masks.append(
            [rng_jt.next_below(alphabet.size) for _ in range(intermediary.shape[1])]
        )
    distances: list[list[int]] = []
    for row in intermediary_matrices:
        if len(row) != len(masks):
            raise ProtocolError("ragged intermediary CCM matrix")
        out_row = []
        for n, intermediary in enumerate(row):
            if intermediary.ndim != 2 or intermediary.shape[1] != len(masks[n]):
                raise ProtocolError(
                    f"CCM column count {intermediary.shape} does not match "
                    f"initiator string {n} length {len(masks[n])}"
                )
            rows_q, cols_p = intermediary.shape
            ccm = np.ones((rows_q, cols_p), dtype=np.uint8)
            for q in range(rows_q):
                for p in range(cols_p):
                    if alphabet.unshift_code(int(intermediary[q, p]), masks[n][p]) == 0:
                        ccm[q, p] = 0
            out_row.append(edit_distance_from_ccm(ccm))
        distances.append(out_row)
    return distances
