"""Published clustering results (paper Figure 13).

"Dissimilarity matrices must be kept secret by the third party because
data holder parties can use distance scores to infer private information
... That's why clustering results are published as a list of objects of
each cluster" (Section 5).  A :class:`ClusteringResult` is exactly that
publication: membership lists plus the optional quality statistics the
paper allows ("such as average of square distance between members").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.data.partition import ObjectRef
from repro.exceptions import ProtocolError


@dataclass(frozen=True)
class Cluster:
    """One published cluster: an id and its site-qualified members."""

    cluster_id: int
    members: tuple[ObjectRef, ...]

    def format_members(self, one_based: bool = True) -> str:
        """Members in the paper's ``A1, A3, B4`` notation.

        The paper numbers objects from 1; our local ids are 0-based, so
        ``one_based=True`` (the default) adds 1 for display.
        """
        offset = 1 if one_based else 0
        return ", ".join(f"{m.site}{m.local_id + offset}" for m in self.members)


@dataclass(frozen=True)
class ClusteringResult:
    """The third party's publication to every data holder.

    Attributes
    ----------
    clusters:
        Clusters ordered by id; members in global object order.
    quality:
        Per-cluster quality statistics (average squared member distance,
        keyed by cluster id) -- the Section 5 example statistic.
    linkage:
        Name of the hierarchical method used.
    num_objects:
        Total objects clustered.
    """

    clusters: tuple[Cluster, ...]
    quality: Mapping[int, float] = field(default_factory=dict)
    linkage: str = ""
    num_objects: int = 0

    def labels_for(self, refs: Sequence[ObjectRef]) -> list[int]:
        """Cluster id per object, in the order of ``refs``."""
        membership: dict[ObjectRef, int] = {}
        for cluster in self.clusters:
            for member in cluster.members:
                membership[member] = cluster.cluster_id
        try:
            return [membership[ref] for ref in refs]
        except KeyError as exc:
            raise ProtocolError(f"object {exc.args[0]} missing from result") from None

    def format_figure13(self) -> str:
        """Render the Figure 13 table (1-based member ids)."""
        lines = [
            f"Cluster{cluster.cluster_id + 1}\t{cluster.format_members()}"
            for cluster in self.clusters
        ]
        return "\n".join(lines)

    # -- wire conversion -----------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """Serializable form for network publication."""
        return {
            "clusters": [
                [(m.site, m.local_id) for m in cluster.members]
                for cluster in self.clusters
            ],
            "quality": {str(k): float(v) for k, v in self.quality.items()},
            "linkage": self.linkage,
            "num_objects": self.num_objects,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ClusteringResult":
        """Inverse of :meth:`to_payload` (what holders reconstruct)."""
        clusters = tuple(
            Cluster(
                cluster_id=i,
                members=tuple(ObjectRef(site, local) for site, local in members),
            )
            for i, members in enumerate(payload["clusters"])
        )
        return cls(
            clusters=clusters,
            quality={int(k): v for k, v in payload["quality"].items()},
            linkage=payload["linkage"],
            num_objects=payload["num_objects"],
        )


def result_from_labels(
    refs: Sequence[ObjectRef],
    labels: Sequence[int],
    quality: Mapping[int, float] | None = None,
    linkage: str = "",
) -> ClusteringResult:
    """Assemble a result from flat labels in global object order."""
    if len(refs) != len(labels):
        raise ProtocolError(
            f"{len(labels)} labels for {len(refs)} objects"
        )
    members: dict[int, list[ObjectRef]] = {}
    for ref, label in zip(refs, labels):
        members.setdefault(label, []).append(ref)
    clusters = tuple(
        Cluster(cluster_id=label, members=tuple(members[label]))
        for label in sorted(members)
    )
    return ClusteringResult(
        clusters=clusters,
        quality=dict(quality or {}),
        linkage=linkage,
        num_objects=len(refs),
    )
