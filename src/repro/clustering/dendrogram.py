"""Dendrograms: the output of agglomerative clustering.

A :class:`Dendrogram` records the ``n - 1`` merges of an agglomerative
run using scipy's node-numbering convention (leaves are ``0..n-1``, the
i-th merge creates node ``n + i``), which makes cross-validation against
``scipy.cluster.hierarchy`` a direct array comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distance.dissimilarity import condensed_position
from repro.exceptions import ClusteringError

#: Characters that force a Newick label into quoted form: the structural
#: metacharacters of the grammar, whitespace, and underscore (which an
#: unquoted label would decode back to a blank).
_NEWICK_UNSAFE = set("()[]{}:;,'\" \t\r\n_")


def _newick_label(label: str) -> str:
    """Quote/escape a leaf label per the Newick spec when necessary.

    Safe labels pass through untouched; anything containing a
    metacharacter (or an empty label) is wrapped in single quotes with
    embedded single quotes doubled, the spec's escape rule.
    """
    if label and not any(ch in _NEWICK_UNSAFE for ch in label):
        return label
    return "'" + label.replace("'", "''") + "'"


@dataclass(frozen=True)
class Merge:
    """One agglomeration step: nodes ``left`` and ``right`` join at ``height``."""

    left: int
    right: int
    height: float
    size: int


class Dendrogram:
    """Merge tree over ``num_leaves`` objects."""

    def __init__(self, num_leaves: int, merges: Sequence[Merge]) -> None:
        if num_leaves < 1:
            raise ClusteringError("dendrogram needs at least one leaf")
        if len(merges) != num_leaves - 1:
            raise ClusteringError(
                f"{num_leaves} leaves require {num_leaves - 1} merges, got {len(merges)}"
            )
        self._n = num_leaves
        self._merges = tuple(merges)
        for step, merge in enumerate(self._merges):
            limit = num_leaves + step
            if not (0 <= merge.left < limit and 0 <= merge.right < limit):
                raise ClusteringError(f"merge {step} references invalid node ids")
            if merge.left == merge.right:
                raise ClusteringError(f"merge {step} joins a node with itself")

    @property
    def num_leaves(self) -> int:
        return self._n

    @property
    def merges(self) -> tuple[Merge, ...]:
        return self._merges

    @property
    def heights(self) -> list[float]:
        """Merge heights in order; monotone for the supported linkages."""
        return [m.height for m in self._merges]

    def is_monotone(self, atol: float = 1e-9) -> bool:
        """Whether merge heights never decrease (no inversions)."""
        heights = self.heights
        return all(b >= a - atol for a, b in zip(heights, heights[1:]))

    def to_scipy_linkage(self) -> np.ndarray:
        """The ``(n-1, 4)`` linkage matrix scipy tooling expects."""
        out = np.zeros((len(self._merges), 4), dtype=np.float64)
        for i, merge in enumerate(self._merges):
            out[i] = (merge.left, merge.right, merge.height, merge.size)
        return out

    # -- cutting ----------------------------------------------------------

    def _labels_applying(self, selected: Sequence[bool]) -> list[int]:
        """Flat labels after applying exactly the ``selected`` merges.

        The selection must be downward closed: a selected merge's operand
        nodes must themselves be selected (or leaves), so every union
        joins fully-formed clusters.
        """
        parent = list(range(self._n + len(self._merges)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for step, merge in enumerate(self._merges):
            if not selected[step]:
                continue
            new_node = self._n + step
            parent[find(merge.left)] = new_node
            parent[find(merge.right)] = new_node
        roots: dict[int, int] = {}
        labels = []
        for leaf in range(self._n):
            root = find(leaf)
            if root not in roots:
                roots[root] = len(roots)
            labels.append(roots[root])
        return labels

    def _labels_after(self, num_merges: int) -> list[int]:
        """Flat labels after applying the first ``num_merges`` merges."""
        return self._labels_applying(
            [step < num_merges for step in range(len(self._merges))]
        )

    def cut_at_k(self, k: int) -> list[int]:
        """Flat clustering with exactly ``k`` clusters.

        Labels are numbered 0..k-1 in order of first appearance by leaf
        index, making results deterministic and comparable.
        """
        if not 1 <= k <= self._n:
            raise ClusteringError(f"k must be in [1, {self._n}], got {k}")
        return self._labels_after(self._n - k)

    def cut_at_height(self, height: float) -> list[int]:
        """Flat clustering keeping every merge with ``merge.height <= height``.

        The qualifying merges are applied together with their *structural
        closure* -- the merges that built their operands -- so the result
        is exactly the connected components of the "cophenetic distance
        <= height" graph.  For monotone dendrograms the closure is the
        plain prefix of qualifying merges; under height inversions
        (possible in hand-built or non-standard trees) applying a prefix
        of the qualifying *count* could pick the wrong subset, which is
        why the selection is per-merge.
        """
        selected = [m.height <= height for m in self._merges]
        for step in range(len(self._merges) - 1, -1, -1):
            if selected[step]:
                for node in (self._merges[step].left, self._merges[step].right):
                    if node >= self._n:
                        selected[node - self._n] = True
        return self._labels_applying(selected)

    def to_newick(self, leaf_labels: Sequence[str] | None = None) -> str:
        """Serialise the tree in Newick format (with branch lengths).

        The standard interchange format for phylogenetic tooling -- the
        natural export for the paper's bird-flu DNA scenario.  Branch
        length of a node is its parent's merge height minus its own
        (leaves have height 0), so root-to-leaf path lengths reproduce
        the merge heights.  Labels containing Newick metacharacters are
        quoted per the spec (single quotes, with embedded quotes doubled),
        so hostile labels round-trip through standard parsers.
        """
        if leaf_labels is None:
            leaf_labels = [str(i) for i in range(self._n)]
        if len(leaf_labels) != self._n:
            raise ClusteringError(
                f"{len(leaf_labels)} labels for {self._n} leaves"
            )
        leaf_labels = [_newick_label(label) for label in leaf_labels]
        if self._n == 1:
            return f"{leaf_labels[0]}:0;"
        heights: dict[int, float] = {leaf: 0.0 for leaf in range(self._n)}
        rendered: dict[int, str] = {
            leaf: leaf_labels[leaf] for leaf in range(self._n)
        }
        for step, merge in enumerate(self._merges):
            node = self._n + step
            heights[node] = merge.height
            left_branch = merge.height - heights[merge.left]
            right_branch = merge.height - heights[merge.right]
            rendered[node] = (
                f"({rendered.pop(merge.left)}:{left_branch:g},"
                f"{rendered.pop(merge.right)}:{right_branch:g})"
            )
        (root,) = rendered.values()
        return root + ";"

    def cophenetic_condensed(self) -> np.ndarray:
        """Cophenetic distances in condensed layout (pair ``(i, j)``,
        ``i > j``, at ``i*(i-1)/2 + j`` -- the
        :class:`~repro.distance.dissimilarity.DissimilarityMatrix` order).

        Each merge writes its height over the left-member x right-member
        pair block in one fancy-indexed scatter; every pair is written
        exactly once, so the whole walk is O(n^2) with no Python-level
        pair loop.
        """
        out = np.zeros(self._n * (self._n - 1) // 2, dtype=np.float64)
        members: dict[int, np.ndarray] = {
            leaf: np.array([leaf], dtype=np.int64) for leaf in range(self._n)
        }
        for step, merge in enumerate(self._merges):
            left = members.pop(merge.left)
            right = members.pop(merge.right)
            a = np.repeat(left, right.size)
            b = np.tile(right, left.size)
            out[condensed_position(a, b)] = merge.height
            members[self._n + step] = np.concatenate([left, right])
        return out

    def cophenetic_matrix(self) -> np.ndarray:
        """Square matrix of cophenetic distances (height of the lowest
        common merge of every leaf pair); a standard dendrogram invariant
        used by the property tests."""
        coph = np.zeros((self._n, self._n), dtype=np.float64)
        coph[np.tril_indices(self._n, -1)] = self.cophenetic_condensed()
        return coph + coph.T

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dendrogram(leaves={self._n}, top={self._merges[-1].height if self._merges else 0:.4g})"


def cut_at_k(dendrogram: Dendrogram, k: int) -> list[int]:
    """Module-level alias of :meth:`Dendrogram.cut_at_k`."""
    return dendrogram.cut_at_k(k)


def fcluster_by_height(dendrogram: Dendrogram, height: float) -> list[int]:
    """Module-level alias of :meth:`Dendrogram.cut_at_height`."""
    return dendrogram.cut_at_height(height)
