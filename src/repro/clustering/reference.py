"""Seed reference implementations of the clustering layer.

These are the original matrix-consuming algorithms, kept verbatim as the
executable specification of the clustering layer: the O(n^3) global-argmin
agglomerative loop, classic PAM (greedy BUILD + steepest-descent SWAP
re-scoring every medoid/candidate pair), the nested-Python-loop quality
metrics, and the per-pair cophenetic walk.  The production layer in
:mod:`repro.clustering.linkage`, :mod:`repro.clustering.kmedoids` and
:mod:`repro.clustering.quality` is rewritten around nearest-neighbor-chain
agglomeration, FasterPAM-style whole-candidate SWAP evaluation and
condensed-array metric formulations; its contract is to produce
*identical* dendrograms, medoids, labels and metric values.
``tests/test_clustering_equivalence.py`` asserts that equivalence, and
``benchmarks/test_bench_clustering.py`` measures the speedup against this
baseline.

Do not "optimise" this module: its value is being the slow, obviously
textbook-shaped version.
"""

from __future__ import annotations

from collections import Counter
from math import comb
from typing import Sequence

import numpy as np

from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.kmedoids import KMedoidsResult
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ClusteringError
from repro.types import LinkageMethod


# -- agglomerative clustering (seed: global argmin over the square) -----------


def _coefficients(
    method: LinkageMethod, size_i: int, size_j: int, size_k: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Lance-Williams coefficients (a_i, a_j, b, g) against every k."""
    ones = np.ones_like(size_k, dtype=np.float64)
    if method is LinkageMethod.SINGLE:
        return 0.5 * ones, 0.5 * ones, 0.0 * ones, -0.5
    if method is LinkageMethod.COMPLETE:
        return 0.5 * ones, 0.5 * ones, 0.0 * ones, 0.5
    if method is LinkageMethod.AVERAGE:
        total = float(size_i + size_j)
        return (size_i / total) * ones, (size_j / total) * ones, 0.0 * ones, 0.0
    if method is LinkageMethod.WEIGHTED:
        return 0.5 * ones, 0.5 * ones, 0.0 * ones, 0.0
    if method is LinkageMethod.WARD:
        total = size_i + size_j + size_k.astype(np.float64)
        return (
            (size_i + size_k) / total,
            (size_j + size_k) / total,
            -size_k / total,
            0.0,
        )
    raise ClusteringError(f"unsupported linkage method: {method}")


def reference_agglomerative(
    matrix: DissimilarityMatrix,
    method: LinkageMethod | str = LinkageMethod.AVERAGE,
) -> Dendrogram:
    """Seed agglomerative clustering: O(n^3) argmin over a dense square.

    Deterministic: ties are broken by the smallest flat index, so two runs
    on equal inputs produce identical trees.
    """
    if isinstance(method, str):
        try:
            method = LinkageMethod(method)
        except ValueError:
            raise ClusteringError(f"unknown linkage method {method!r}") from None
    n = matrix.num_objects
    if n == 1:
        return Dendrogram(1, [])

    working = matrix.to_square()
    if method is LinkageMethod.WARD:
        working = working ** 2

    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)
    node_ids = np.arange(n, dtype=np.int64)
    np.fill_diagonal(working, np.inf)
    inactive_fill = np.inf

    merges: list[Merge] = []
    for step in range(n - 1):
        flat = np.argmin(working)
        i, j = np.unravel_index(flat, working.shape)
        if i > j:
            i, j = j, i
        height = float(working[i, j])
        if method is LinkageMethod.WARD:
            height = float(np.sqrt(height))

        others = active.copy()
        others[i] = others[j] = False
        a_i, a_j, b, g = _coefficients(
            method, int(sizes[i]), int(sizes[j]), sizes[others]
        )
        d_ik = working[i, others]
        d_jk = working[j, others]
        d_ij = working[i, j]
        updated = a_i * d_ik + a_j * d_jk + b * d_ij + g * np.abs(d_ik - d_jk)

        merges.append(
            Merge(
                left=int(node_ids[i]),
                right=int(node_ids[j]),
                height=height,
                size=int(sizes[i] + sizes[j]),
            )
        )

        # Slot i becomes the merged cluster; slot j is retired.
        working[i, others] = updated
        working[others, i] = updated
        working[i, i] = np.inf
        working[j, :] = inactive_fill
        working[:, j] = inactive_fill
        sizes[i] = sizes[i] + sizes[j]
        sizes[j] = 0
        node_ids[i] = n + step
        active[j] = False

    return Dendrogram(n, merges)


# -- k-medoids (seed: classic PAM, full re-scoring per SWAP) -------------------


def _assignment_cost(square: np.ndarray, medoids: list[int]) -> tuple[np.ndarray, float]:
    """Nearest-medoid labels and the summed distance cost."""
    distances = square[:, medoids]
    nearest = distances.argmin(axis=1)
    cost = float(distances[np.arange(square.shape[0]), nearest].sum())
    return nearest, cost


def _build_init(square: np.ndarray, k: int) -> list[int]:
    """PAM BUILD: greedily add the medoid that most reduces total cost."""
    n = square.shape[0]
    first = int(square.sum(axis=1).argmin())
    medoids = [first]
    nearest = square[:, first].copy()
    while len(medoids) < k:
        best_gain = -np.inf
        best_candidate = -1
        for candidate in range(n):
            if candidate in medoids:
                continue
            gain = float(np.maximum(nearest - square[:, candidate], 0.0).sum())
            if gain > best_gain:
                best_gain = gain
                best_candidate = candidate
        medoids.append(best_candidate)
        nearest = np.minimum(nearest, square[:, best_candidate])
    return medoids


def reference_k_medoids(
    matrix: DissimilarityMatrix, k: int, max_iterations: int = 100
) -> KMedoidsResult:
    """Seed PAM: each SWAP iteration re-scores every medoid/candidate pair."""
    n = matrix.num_objects
    if not 1 <= k <= n:
        raise ClusteringError(f"k must be in [1, {n}], got {k}")
    square = matrix.to_square()
    medoids = _build_init(square, k)

    iterations = 0
    converged = False
    _, cost = _assignment_cost(square, medoids)
    while iterations < max_iterations:
        iterations += 1
        best_cost = cost
        best_swap: tuple[int, int] | None = None
        medoid_set = set(medoids)
        for mi, medoid in enumerate(medoids):
            for candidate in range(n):
                if candidate in medoid_set:
                    continue
                trial = medoids.copy()
                trial[mi] = candidate
                _, trial_cost = _assignment_cost(square, trial)
                if trial_cost < best_cost - 1e-12:
                    best_cost = trial_cost
                    best_swap = (mi, candidate)
        if best_swap is None:
            converged = True
            break
        medoids[best_swap[0]] = best_swap[1]
        cost = best_cost

    nearest, cost = _assignment_cost(square, medoids)
    # Renumber labels by first appearance so results are comparable.
    remap: dict[int, int] = {}
    labels = []
    for value in nearest:
        value = int(value)
        if value not in remap:
            remap[value] = len(remap)
        labels.append(remap[value])
    ordered_medoids = [medoids[old] for old in sorted(remap, key=remap.get)]
    return KMedoidsResult(
        labels=labels,
        medoids=ordered_medoids,
        cost=cost,
        iterations=iterations,
        converged=converged,
    )


# -- cophenetic distances (seed: per-pair Python walk) -------------------------


def reference_cophenetic_matrix(dendrogram: Dendrogram) -> np.ndarray:
    """Seed cophenetic matrix: nested Python loops over member lists."""
    n = dendrogram.num_leaves
    coph = np.zeros((n, n), dtype=np.float64)
    members: dict[int, list[int]] = {leaf: [leaf] for leaf in range(n)}
    for step, merge in enumerate(dendrogram.merges):
        left = members.pop(merge.left)
        right = members.pop(merge.right)
        for a in left:
            for b in right:
                coph[a, b] = coph[b, a] = merge.height
        members[n + step] = left + right
    return coph


# -- quality metrics (seed: nested Python loops) -------------------------------


def _validate_labels(matrix: DissimilarityMatrix | None, labels: Sequence[int]) -> list[int]:
    labels = list(labels)
    if matrix is not None and len(labels) != matrix.num_objects:
        raise ClusteringError(
            f"{len(labels)} labels for {matrix.num_objects} objects"
        )
    if not labels:
        raise ClusteringError("labels must be non-empty")
    return labels


def reference_average_square_distance(
    matrix: DissimilarityMatrix, labels: Sequence[int]
) -> dict[int, float]:
    """Seed per-cluster average squared member distance."""
    labels = _validate_labels(matrix, labels)
    result: dict[int, float] = {}
    for cluster in sorted(set(labels)):
        members = [i for i, l in enumerate(labels) if l == cluster]
        if len(members) < 2:
            result[cluster] = 0.0
            continue
        total = 0.0
        count = 0
        for a_idx, i in enumerate(members):
            for j in members[:a_idx]:
                total += matrix[i, j] ** 2
                count += 1
        result[cluster] = total / count
    return result


def reference_silhouette_score(
    matrix: DissimilarityMatrix, labels: Sequence[int]
) -> float:
    """Seed silhouette: one Python loop per object, one per other cluster."""
    labels = _validate_labels(matrix, labels)
    clusters = sorted(set(labels))
    if len(clusters) < 2:
        raise ClusteringError("silhouette requires at least two clusters")
    square = matrix.to_square()
    labels_arr = np.asarray(labels)
    scores = np.zeros(len(labels))
    for i in range(len(labels)):
        own = labels_arr == labels_arr[i]
        own[i] = False
        if not own.any():
            scores[i] = 0.0
            continue
        a = square[i, own].mean()
        b = np.inf
        for cluster in clusters:
            if cluster == labels_arr[i]:
                continue
            other = labels_arr == cluster
            b = min(b, square[i, other].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def reference_dunn_index(matrix: DissimilarityMatrix, labels: Sequence[int]) -> float:
    """Seed Dunn index: per-cluster-pair block scans."""
    labels = _validate_labels(matrix, labels)
    clusters = sorted(set(labels))
    if len(clusters) < 2:
        raise ClusteringError("Dunn index requires at least two clusters")
    square = matrix.to_square()
    labels_arr = np.asarray(labels)
    min_between = np.inf
    max_within = 0.0
    for ci_idx, ci in enumerate(clusters):
        members_i = labels_arr == ci
        block = square[np.ix_(members_i, members_i)]
        if block.size > 1:
            max_within = max(max_within, float(block.max()))
        for cj in clusters[ci_idx + 1 :]:
            members_j = labels_arr == cj
            min_between = min(
                min_between, float(square[np.ix_(members_i, members_j)].min())
            )
    if max_within == 0.0:
        return float("inf")
    return min_between / max_within


def reference_cophenetic_correlation(
    matrix: DissimilarityMatrix, dendrogram: Dendrogram
) -> float:
    """Seed cophenetic correlation: per-pair Python list building."""
    if dendrogram.num_leaves != matrix.num_objects:
        raise ClusteringError("dendrogram and matrix disagree on object count")
    n = matrix.num_objects
    if n < 3:
        raise ClusteringError("cophenetic correlation needs >= 3 objects")
    coph = reference_cophenetic_matrix(dendrogram)
    original = []
    tree = []
    for i in range(1, n):
        for j in range(i):
            original.append(matrix[i, j])
            tree.append(coph[i, j])
    original_arr = np.asarray(original)
    tree_arr = np.asarray(tree)
    if original_arr.std() == 0 or tree_arr.std() == 0:
        raise ClusteringError("degenerate distances: correlation undefined")
    return float(np.corrcoef(original_arr, tree_arr)[0, 1])


def reference_pair_counts(
    truth: Sequence[int], predicted: Sequence[int]
) -> tuple[int, int, int, int]:
    """Seed pair counts: the O(n^2) double loop over object pairs."""
    if len(truth) != len(predicted):
        raise ClusteringError("label vectors must have equal length")
    n = len(truth)
    ss = sd = ds = dd = 0
    for i in range(n):
        for j in range(i):
            same_truth = truth[i] == truth[j]
            same_pred = predicted[i] == predicted[j]
            if same_truth and same_pred:
                ss += 1
            elif same_truth:
                sd += 1
            elif same_pred:
                ds += 1
            else:
                dd += 1
    return ss, sd, ds, dd


def reference_rand_index(truth: Sequence[int], predicted: Sequence[int]) -> float:
    """Seed Rand index on the looped pair counts."""
    ss, sd, ds, dd = reference_pair_counts(truth, predicted)
    total = ss + sd + ds + dd
    if total == 0:
        return 1.0
    return (ss + dd) / total


def reference_adjusted_rand_index(
    truth: Sequence[int], predicted: Sequence[int]
) -> float:
    """Seed ARI via Counter-built contingency tables."""
    if len(truth) != len(predicted):
        raise ClusteringError("label vectors must have equal length")
    n = len(truth)
    if n == 0:
        raise ClusteringError("labels must be non-empty")
    contingency: Counter[tuple[int, int]] = Counter(zip(truth, predicted))
    sum_cells = sum(comb(c, 2) for c in contingency.values())
    sum_rows = sum(comb(c, 2) for c in Counter(truth).values())
    sum_cols = sum(comb(c, 2) for c in Counter(predicted).values())
    total_pairs = comb(n, 2)
    if total_pairs == 0:
        return 1.0
    expected = sum_rows * sum_cols / total_pairs
    maximum = (sum_rows + sum_cols) / 2
    if maximum == expected:
        return 1.0
    return (sum_cells - expected) / (maximum - expected)


def reference_purity(truth: Sequence[int], predicted: Sequence[int]) -> float:
    """Seed purity via per-cluster Counter majorities."""
    if len(truth) != len(predicted):
        raise ClusteringError("label vectors must have equal length")
    if not truth:
        raise ClusteringError("labels must be non-empty")
    correct = 0
    for cluster in set(predicted):
        members = [truth[i] for i in range(len(truth)) if predicted[i] == cluster]
        correct += Counter(members).most_common(1)[0][1]
    return correct / len(truth)
