"""Clustering on precomputed dissimilarity matrices.

"The global dissimilarity matrix is a generic data structure ... it can
be used by any standard clustering algorithm" (paper Section 1).  The
third party runs these algorithms locally once the matrix is built
(Section 5), so everything here consumes a
:class:`repro.distance.DissimilarityMatrix` and never touches raw data:

* :mod:`repro.clustering.linkage` -- agglomerative hierarchical
  clustering via nearest-neighbor chains over condensed storage (single,
  complete, average, weighted, ward; O(n^2) time, O(n^2/2) memory), the
  paper's primary downstream consumer,
* :mod:`repro.clustering.dendrogram` -- merge trees, cuts by cluster
  count or height, cophenetic distances,
* :mod:`repro.clustering.kmedoids` -- PAM with FasterPAM-style
  whole-candidate SWAP evaluation, the partitioning baseline for the
  hierarchical-vs-partitioning discussion of Section 2,
* :mod:`repro.clustering.quality` -- internal metrics the TP may publish
  (Section 5) and external accuracy metrics for the experiments, all in
  condensed-array form,
* :mod:`repro.clustering.reference` -- the seed implementations, kept
  verbatim; the equivalence suite holds the fast layer to their exact
  outputs.
"""

from repro.clustering.dendrogram import Dendrogram, cut_at_k, fcluster_by_height
from repro.clustering.kmedoids import KMedoidsResult, k_medoids
from repro.clustering.linkage import agglomerative
from repro.clustering.render import render_dendrogram
from repro.clustering.quality import (
    adjusted_rand_index,
    average_square_distance,
    cophenetic_correlation,
    dunn_index,
    purity,
    rand_index,
    silhouette_score,
)

__all__ = [
    "Dendrogram",
    "cut_at_k",
    "fcluster_by_height",
    "agglomerative",
    "render_dendrogram",
    "KMedoidsResult",
    "k_medoids",
    "silhouette_score",
    "average_square_distance",
    "dunn_index",
    "cophenetic_correlation",
    "rand_index",
    "adjusted_rand_index",
    "purity",
]
