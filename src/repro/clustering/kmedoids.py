"""k-medoids (PAM) on a dissimilarity matrix.

The partitioning counterpart used by the T-CLUST experiment.  The paper
argues for hierarchical methods because partitioning algorithms "tend to
result in spherical clusters" and "can not handle string data type for
which a 'mean' is not defined" (Section 2).  k-medoids is the *strongest*
partitioning contender under those constraints -- it needs only pairwise
distances, so it runs on the same private dissimilarity matrix -- which
makes the comparison fair: where even PAM fails (non-spherical shapes),
the paper's argument holds a fortiori against k-means.

Implementation: classic PAM -- greedy BUILD initialisation followed by
SWAP steps, each accepting the single best medoid/non-medoid exchange
until no exchange lowers total cost.  Deterministic throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ClusteringError


@dataclass(frozen=True)
class KMedoidsResult:
    """Outcome of a PAM run."""

    labels: list[int]
    medoids: list[int]
    cost: float
    iterations: int
    converged: bool


def _assignment_cost(square: np.ndarray, medoids: list[int]) -> tuple[np.ndarray, float]:
    """Nearest-medoid labels and the summed distance cost."""
    distances = square[:, medoids]
    nearest = distances.argmin(axis=1)
    cost = float(distances[np.arange(square.shape[0]), nearest].sum())
    return nearest, cost


def _build_init(square: np.ndarray, k: int) -> list[int]:
    """PAM BUILD: greedily add the medoid that most reduces total cost."""
    n = square.shape[0]
    first = int(square.sum(axis=1).argmin())
    medoids = [first]
    nearest = square[:, first].copy()
    while len(medoids) < k:
        best_gain = -np.inf
        best_candidate = -1
        for candidate in range(n):
            if candidate in medoids:
                continue
            gain = float(np.maximum(nearest - square[:, candidate], 0.0).sum())
            if gain > best_gain:
                best_gain = gain
                best_candidate = candidate
        medoids.append(best_candidate)
        nearest = np.minimum(nearest, square[:, best_candidate])
    return medoids


def k_medoids(
    matrix: DissimilarityMatrix, k: int, max_iterations: int = 100
) -> KMedoidsResult:
    """Partition objects into ``k`` clusters around medoids.

    Parameters
    ----------
    matrix:
        Pairwise dissimilarities (any metric or non-metric values work;
        only comparisons are used).
    k:
        Number of clusters, ``1 <= k <= num_objects``.
    max_iterations:
        Upper bound on SWAP iterations; PAM almost always converges far
        earlier, and ``converged`` reports whether it did.
    """
    n = matrix.num_objects
    if not 1 <= k <= n:
        raise ClusteringError(f"k must be in [1, {n}], got {k}")
    square = matrix.to_square()
    medoids = _build_init(square, k)

    iterations = 0
    converged = False
    _, cost = _assignment_cost(square, medoids)
    while iterations < max_iterations:
        iterations += 1
        best_cost = cost
        best_swap: tuple[int, int] | None = None
        medoid_set = set(medoids)
        for mi, medoid in enumerate(medoids):
            for candidate in range(n):
                if candidate in medoid_set:
                    continue
                trial = medoids.copy()
                trial[mi] = candidate
                _, trial_cost = _assignment_cost(square, trial)
                if trial_cost < best_cost - 1e-12:
                    best_cost = trial_cost
                    best_swap = (mi, candidate)
        if best_swap is None:
            converged = True
            break
        medoids[best_swap[0]] = best_swap[1]
        cost = best_cost

    nearest, cost = _assignment_cost(square, medoids)
    # Renumber labels by first appearance so results are comparable.
    remap: dict[int, int] = {}
    labels = []
    for value in nearest:
        value = int(value)
        if value not in remap:
            remap[value] = len(remap)
        labels.append(remap[value])
    ordered_medoids = [medoids[old] for old in sorted(remap, key=remap.get)]
    return KMedoidsResult(
        labels=labels,
        medoids=ordered_medoids,
        cost=cost,
        iterations=iterations,
        converged=converged,
    )
