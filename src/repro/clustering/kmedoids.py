"""k-medoids (PAM) on a dissimilarity matrix.

The partitioning counterpart used by the T-CLUST experiment.  The paper
argues for hierarchical methods because partitioning algorithms "tend to
result in spherical clusters" and "can not handle string data type for
which a 'mean' is not defined" (Section 2).  k-medoids is the *strongest*
partitioning contender under those constraints -- it needs only pairwise
distances, so it runs on the same private dissimilarity matrix -- which
makes the comparison fair: where even PAM fails (non-spherical shapes),
the paper's argument holds a fortiori against k-means.

Implementation
--------------
The seed implementation (preserved in
:func:`repro.clustering.reference.reference_k_medoids`) is textbook PAM:
greedy BUILD, then SWAP steps that re-assign every object for every
medoid/candidate pair -- O(k^2 n^2) per iteration.  This module keeps
PAM's steepest-descent *trajectory* (same swaps, same order, same
results) but evaluates it FasterPAM-style (Schubert & Rousseeuw):
cached nearest/second-nearest medoid distance arrays turn the cost delta
of swapping medoid m for candidate c into

    delta(m, c) =   sum_{i: nearest(i)=m}  min(d(i,c), dsecond(i)) - dnearest(i)
                  + sum_{i: nearest(i)!=m} min(d(i,c) - dnearest(i), 0)

so one whole-candidate numpy evaluation scores every (m, c) pair in
O(n^2 + n k) per iteration.  BUILD is likewise a single vectorized gain
computation per added medoid.  Deterministic throughout, and identical
to the reference trajectory (the winner selection replays the seed's
scan order and its 1e-12 strict-improvement rule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance.dissimilarity import (
    DissimilarityMatrix,
    condensed_offsets,
    condensed_row_gather,
)
from repro.exceptions import ClusteringError

#: Candidate columns are scored in blocks of this many to bound the
#: working set at O(n * block) instead of O(n^2) scratch.
_CANDIDATE_BLOCK = 512


class _StorePanels:
    """Row/column panels of the square matrix, streamed off a condensed store.

    The sharded PAM path never materialises ``to_square()``: a row panel
    for rows ``[r0, r1)`` is one contiguous condensed segment (all
    below-diagonal entries of those rows), a symmetric in-band fill, and
    one block-ascending gather for the columns beyond ``r1``.  Column
    blocks are the transposed panels copied C-contiguous, so every
    reduction downstream runs over temporaries with the exact shape,
    layout, and element order of the dense path's -- which is what keeps
    medoid selection bit-identical on the float64 memmap backend.
    """

    def __init__(self, matrix: DissimilarityMatrix) -> None:
        self.store = matrix.store
        self.n = matrix.num_objects
        self.offsets = condensed_offsets(self.n)
        self._scratch = np.empty(self.n, dtype=np.int64)

    def column(self, index: int) -> np.ndarray:
        """Column ``index`` of the square (== row, exactly: symmetry)."""
        return condensed_row_gather(
            self.store, int(index), self.n, self.offsets, scratch=self._scratch
        )

    def columns(self, indices: np.ndarray) -> np.ndarray:
        """Columns at ``indices`` as a C-contiguous ``(n, len(indices))``
        array -- the layout ``square[:, indices]`` fancy indexing yields."""
        out = np.empty((self.n, len(indices)), dtype=np.float64)
        for slot, index in enumerate(indices):
            out[:, slot] = self.column(int(index))
        return out

    def row_panel(self, r0: int, r1: int) -> np.ndarray:
        """Rows ``[r0, r1)`` of the square as a ``(r1 - r0, n)`` array."""
        n = self.n
        width = r1 - r0
        panel = np.zeros((width, n), dtype=np.float64)
        base = int(self.offsets[r0])
        segment = self.store.read(base, r1 * (r1 - 1) // 2)
        for a in range(width):
            row = r0 + a
            start = int(self.offsets[row]) - base
            panel[a, :row] = segment[start : start + row]
            # In-band symmetric fill: d(row, r0..row-1) is column `row`
            # of the earlier panel rows.
            panel[:a, row] = segment[start + r0 : start + row]
        if r1 < n:
            cols = np.arange(r0, r1, dtype=np.int64)
            positions = self.offsets[r1:, None] + cols[None, :]
            tail = self.store.gather(positions.reshape(-1)).reshape(n - r1, width)
            panel[:, r1:] = tail.T
        return panel

    def column_block(self, start: int, stop: int) -> np.ndarray:
        """Columns ``[start, stop)`` as C-contiguous ``(n, stop - start)``."""
        return np.ascontiguousarray(self.row_panel(start, stop).T)


@dataclass(frozen=True)
class KMedoidsResult:
    """Outcome of a PAM run."""

    labels: list[int]
    medoids: list[int]
    cost: float
    iterations: int
    converged: bool


def _assignment_cost(square: np.ndarray, medoids: list[int]) -> tuple[np.ndarray, float]:
    """Nearest-medoid labels and the summed distance cost."""
    distances = square[:, medoids]
    nearest = distances.argmin(axis=1)
    cost = float(distances[np.arange(square.shape[0]), nearest].sum())
    return nearest, cost


def _build_init(square: np.ndarray, k: int) -> list[int]:
    """PAM BUILD: greedily add the medoid that most reduces total cost.

    One numpy gain computation per added medoid: rows of
    ``nearest - square`` clipped at zero are exactly the per-candidate
    columns the seed loop evaluated one by one (the matrix is symmetric),
    summed along the contiguous axis so the reductions -- and therefore
    the greedy tie-breaking -- match the seed bit for bit.
    """
    n = square.shape[0]
    first = int(square.sum(axis=1).argmin())
    medoids = [first]
    is_medoid = np.zeros(n, dtype=bool)
    is_medoid[first] = True
    nearest = square[:, first].copy()
    while len(medoids) < k:
        gains = np.maximum(nearest[None, :] - square, 0.0).sum(axis=1)
        gains[is_medoid] = -np.inf
        best = int(gains.argmax())
        medoids.append(best)
        is_medoid[best] = True
        nearest = np.minimum(nearest, square[:, best])
    return medoids


def _store_build_init(source: _StorePanels, k: int) -> list[int]:
    """BUILD over a sharded matrix: :func:`_build_init` panel by panel.

    Each gain pass reduces per-row over contiguous panel rows -- the same
    pairwise-summation element order as the dense full-matrix temporary
    -- so the greedy choices (argmin/argmax over bit-identical vectors)
    match the dense path exactly on float64 backends.
    """
    n = source.n
    sums = np.empty(n, dtype=np.float64)
    for r0 in range(0, n, _CANDIDATE_BLOCK):
        r1 = min(n, r0 + _CANDIDATE_BLOCK)
        sums[r0:r1] = source.row_panel(r0, r1).sum(axis=1)
    first = int(sums.argmin())
    medoids = [first]
    is_medoid = np.zeros(n, dtype=bool)
    is_medoid[first] = True
    nearest = source.column(first)
    while len(medoids) < k:
        gains = np.empty(n, dtype=np.float64)
        for r0 in range(0, n, _CANDIDATE_BLOCK):
            r1 = min(n, r0 + _CANDIDATE_BLOCK)
            panel = source.row_panel(r0, r1)
            gains[r0:r1] = np.maximum(nearest[None, :] - panel, 0.0).sum(axis=1)
        gains[is_medoid] = -np.inf
        best = int(gains.argmax())
        medoids.append(best)
        is_medoid[best] = True
        nearest = np.minimum(nearest, source.column(best))
    return medoids


def _swap_deltas(
    square: np.ndarray,
    medoid_idx: np.ndarray,
    nearest: np.ndarray,
    dnearest: np.ndarray,
    dsecond: np.ndarray,
) -> np.ndarray:
    """Cost deltas of every (medoid position, candidate) swap, (k, n)."""
    n = square.shape[0]
    k = medoid_idx.shape[0]
    member = [nearest == m for m in range(k)]
    deltas = np.empty((k, n), dtype=np.float64)
    dnear_col = dnearest[:, None]
    dsecond_col = dsecond[:, None]
    for start in range(0, n, _CANDIDATE_BLOCK):
        block = slice(start, min(start + _CANDIDATE_BLOCK, n))
        d_c = square[:, block]
        reduction = np.minimum(d_c - dnear_col, 0.0)
        shared = reduction.sum(axis=0)
        # For points losing their nearest medoid, the reduction term is
        # replaced by min(d(i,c), dsecond(i)) - dnearest(i).
        correction = np.minimum(d_c, dsecond_col) - dnear_col - reduction
        for m in range(k):
            deltas[m, block] = shared + correction[member[m]].sum(axis=0)
    deltas[:, medoid_idx] = np.inf
    return deltas


def _store_swap_deltas(
    source: _StorePanels,
    medoid_idx: np.ndarray,
    nearest: np.ndarray,
    dnearest: np.ndarray,
    dsecond: np.ndarray,
) -> np.ndarray:
    """:func:`_swap_deltas` over streamed column blocks.

    The dense path's reductions all run on C-contiguous ``(n, block)``
    temporaries (the strided ``square[:, block]`` view is consumed by
    elementwise ops first), so feeding the same expressions a contiguous
    ``column_block`` copy reproduces every delta bit for bit.
    """
    n = source.n
    k = medoid_idx.shape[0]
    member = [nearest == m for m in range(k)]
    deltas = np.empty((k, n), dtype=np.float64)
    dnear_col = dnearest[:, None]
    dsecond_col = dsecond[:, None]
    for start in range(0, n, _CANDIDATE_BLOCK):
        stop = min(start + _CANDIDATE_BLOCK, n)
        block = slice(start, stop)
        d_c = source.column_block(start, stop)
        reduction = np.minimum(d_c - dnear_col, 0.0)
        shared = reduction.sum(axis=0)
        correction = np.minimum(d_c, dsecond_col) - dnear_col - reduction
        for m in range(k):
            deltas[m, block] = shared + correction[member[m]].sum(axis=0)
    deltas[:, medoid_idx] = np.inf
    return deltas


def _select_swap(deltas: np.ndarray) -> tuple[int, int] | None:
    """Replay the seed's scan over the delta table.

    The seed walks medoids (list order) then candidates (ascending) and
    accepts a swap only when it beats the incumbent by more than 1e-12.
    The accepted entries form a record chain (each acceptance lowers the
    incumbent by > 1e-12), so the full scan is reproduced exactly by
    jumping to the next improving entry until none remains -- one
    vectorized comparison per acceptance, and the chain is short (its
    length is bounded by the number of epsilon-separated records).
    """
    flat = deltas.ravel()
    if not flat.min() < -1e-12:
        return None
    best = 0.0
    winner = -1
    position = 0
    while position < flat.size:
        improving = flat[position:] < best - 1e-12
        step = int(np.argmax(improving))
        if not improving[step]:
            break
        winner = position + step
        best = float(flat[winner])
        position = winner + 1
    if winner < 0:
        return None
    return divmod(winner, deltas.shape[1])


def k_medoids(
    matrix: DissimilarityMatrix, k: int, max_iterations: int = 100
) -> KMedoidsResult:
    """Partition objects into ``k`` clusters around medoids.

    Parameters
    ----------
    matrix:
        Pairwise dissimilarities (any metric or non-metric values work;
        only comparisons are used).
    k:
        Number of clusters, ``1 <= k <= num_objects``.
    max_iterations:
        Upper bound on SWAP iterations; PAM almost always converges far
        earlier, and ``converged`` reports whether it did.
    """
    n = matrix.num_objects
    if not 1 <= k <= n:
        raise ClusteringError(f"k must be in [1, {n}], got {k}")
    values = matrix.store.array_view()
    if values is not None:
        square: np.ndarray | None = matrix.to_square()
        source: _StorePanels | None = None
        medoids = _build_init(square, k)
    else:
        # Sharded backend: stream panels, never materialise the square --
        # peak memory is O(n * _CANDIDATE_BLOCK) plus the store's cache.
        square = None
        source = _StorePanels(matrix)
        medoids = _store_build_init(source, k)

    iterations = 0
    converged = False
    row_index = np.arange(n)
    # Unlike the seed, no running cost is tracked: acceptance decisions
    # are made purely on deltas, and the final cost is recomputed below.
    while iterations < max_iterations:
        iterations += 1
        medoid_idx = np.asarray(medoids, dtype=np.int64)
        if square is not None:
            distances = square[:, medoid_idx]
        else:
            distances = source.columns(medoid_idx)
        nearest = distances.argmin(axis=1)
        dnearest = distances[row_index, nearest]
        if k > 1:
            distances[row_index, nearest] = np.inf
            dsecond = distances.min(axis=1)
        else:
            dsecond = np.full(n, np.inf)
        if square is not None:
            deltas = _swap_deltas(square, medoid_idx, nearest, dnearest, dsecond)
        else:
            deltas = _store_swap_deltas(
                source, medoid_idx, nearest, dnearest, dsecond
            )
        swap = _select_swap(deltas)
        if swap is None:
            converged = True
            break
        medoids[swap[0]] = int(swap[1])

    if square is not None:
        nearest, cost = _assignment_cost(square, medoids)
    else:
        distances = source.columns(np.asarray(medoids, dtype=np.int64))
        nearest = distances.argmin(axis=1)
        cost = float(distances[row_index, nearest].sum())
    # Renumber labels by first appearance so results are comparable.
    remap: dict[int, int] = {}
    labels = []
    for value in nearest:
        value = int(value)
        if value not in remap:
            remap[value] = len(remap)
        labels.append(remap[value])
    ordered_medoids = [medoids[old] for old in sorted(remap, key=remap.get)]
    return KMedoidsResult(
        labels=labels,
        medoids=ordered_medoids,
        cost=cost,
        iterations=iterations,
        converged=converged,
    )
