"""k-medoids (PAM) on a dissimilarity matrix.

The partitioning counterpart used by the T-CLUST experiment.  The paper
argues for hierarchical methods because partitioning algorithms "tend to
result in spherical clusters" and "can not handle string data type for
which a 'mean' is not defined" (Section 2).  k-medoids is the *strongest*
partitioning contender under those constraints -- it needs only pairwise
distances, so it runs on the same private dissimilarity matrix -- which
makes the comparison fair: where even PAM fails (non-spherical shapes),
the paper's argument holds a fortiori against k-means.

Implementation
--------------
The seed implementation (preserved in
:func:`repro.clustering.reference.reference_k_medoids`) is textbook PAM:
greedy BUILD, then SWAP steps that re-assign every object for every
medoid/candidate pair -- O(k^2 n^2) per iteration.  This module keeps
PAM's steepest-descent *trajectory* (same swaps, same order, same
results) but evaluates it FasterPAM-style (Schubert & Rousseeuw):
cached nearest/second-nearest medoid distance arrays turn the cost delta
of swapping medoid m for candidate c into

    delta(m, c) =   sum_{i: nearest(i)=m}  min(d(i,c), dsecond(i)) - dnearest(i)
                  + sum_{i: nearest(i)!=m} min(d(i,c) - dnearest(i), 0)

so one whole-candidate numpy evaluation scores every (m, c) pair in
O(n^2 + n k) per iteration.  BUILD is likewise a single vectorized gain
computation per added medoid.  Deterministic throughout, and identical
to the reference trajectory (the winner selection replays the seed's
scan order and its 1e-12 strict-improvement rule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ClusteringError

#: Candidate columns are scored in blocks of this many to bound the
#: working set at O(n * block) instead of O(n^2) scratch.
_CANDIDATE_BLOCK = 512


@dataclass(frozen=True)
class KMedoidsResult:
    """Outcome of a PAM run."""

    labels: list[int]
    medoids: list[int]
    cost: float
    iterations: int
    converged: bool


def _assignment_cost(square: np.ndarray, medoids: list[int]) -> tuple[np.ndarray, float]:
    """Nearest-medoid labels and the summed distance cost."""
    distances = square[:, medoids]
    nearest = distances.argmin(axis=1)
    cost = float(distances[np.arange(square.shape[0]), nearest].sum())
    return nearest, cost


def _build_init(square: np.ndarray, k: int) -> list[int]:
    """PAM BUILD: greedily add the medoid that most reduces total cost.

    One numpy gain computation per added medoid: rows of
    ``nearest - square`` clipped at zero are exactly the per-candidate
    columns the seed loop evaluated one by one (the matrix is symmetric),
    summed along the contiguous axis so the reductions -- and therefore
    the greedy tie-breaking -- match the seed bit for bit.
    """
    n = square.shape[0]
    first = int(square.sum(axis=1).argmin())
    medoids = [first]
    is_medoid = np.zeros(n, dtype=bool)
    is_medoid[first] = True
    nearest = square[:, first].copy()
    while len(medoids) < k:
        gains = np.maximum(nearest[None, :] - square, 0.0).sum(axis=1)
        gains[is_medoid] = -np.inf
        best = int(gains.argmax())
        medoids.append(best)
        is_medoid[best] = True
        nearest = np.minimum(nearest, square[:, best])
    return medoids


def _swap_deltas(
    square: np.ndarray,
    medoid_idx: np.ndarray,
    nearest: np.ndarray,
    dnearest: np.ndarray,
    dsecond: np.ndarray,
) -> np.ndarray:
    """Cost deltas of every (medoid position, candidate) swap, (k, n)."""
    n = square.shape[0]
    k = medoid_idx.shape[0]
    member = [nearest == m for m in range(k)]
    deltas = np.empty((k, n), dtype=np.float64)
    dnear_col = dnearest[:, None]
    dsecond_col = dsecond[:, None]
    for start in range(0, n, _CANDIDATE_BLOCK):
        block = slice(start, min(start + _CANDIDATE_BLOCK, n))
        d_c = square[:, block]
        reduction = np.minimum(d_c - dnear_col, 0.0)
        shared = reduction.sum(axis=0)
        # For points losing their nearest medoid, the reduction term is
        # replaced by min(d(i,c), dsecond(i)) - dnearest(i).
        correction = np.minimum(d_c, dsecond_col) - dnear_col - reduction
        for m in range(k):
            deltas[m, block] = shared + correction[member[m]].sum(axis=0)
    deltas[:, medoid_idx] = np.inf
    return deltas


def _select_swap(deltas: np.ndarray) -> tuple[int, int] | None:
    """Replay the seed's scan over the delta table.

    The seed walks medoids (list order) then candidates (ascending) and
    accepts a swap only when it beats the incumbent by more than 1e-12.
    The accepted entries form a record chain (each acceptance lowers the
    incumbent by > 1e-12), so the full scan is reproduced exactly by
    jumping to the next improving entry until none remains -- one
    vectorized comparison per acceptance, and the chain is short (its
    length is bounded by the number of epsilon-separated records).
    """
    flat = deltas.ravel()
    if not flat.min() < -1e-12:
        return None
    best = 0.0
    winner = -1
    position = 0
    while position < flat.size:
        improving = flat[position:] < best - 1e-12
        step = int(np.argmax(improving))
        if not improving[step]:
            break
        winner = position + step
        best = float(flat[winner])
        position = winner + 1
    if winner < 0:
        return None
    return divmod(winner, deltas.shape[1])


def k_medoids(
    matrix: DissimilarityMatrix, k: int, max_iterations: int = 100
) -> KMedoidsResult:
    """Partition objects into ``k`` clusters around medoids.

    Parameters
    ----------
    matrix:
        Pairwise dissimilarities (any metric or non-metric values work;
        only comparisons are used).
    k:
        Number of clusters, ``1 <= k <= num_objects``.
    max_iterations:
        Upper bound on SWAP iterations; PAM almost always converges far
        earlier, and ``converged`` reports whether it did.
    """
    n = matrix.num_objects
    if not 1 <= k <= n:
        raise ClusteringError(f"k must be in [1, {n}], got {k}")
    square = matrix.to_square()
    medoids = _build_init(square, k)

    iterations = 0
    converged = False
    row_index = np.arange(n)
    # Unlike the seed, no running cost is tracked: acceptance decisions
    # are made purely on deltas, and the final cost is recomputed below.
    while iterations < max_iterations:
        iterations += 1
        medoid_idx = np.asarray(medoids, dtype=np.int64)
        distances = square[:, medoid_idx]
        nearest = distances.argmin(axis=1)
        dnearest = distances[row_index, nearest]
        if k > 1:
            distances[row_index, nearest] = np.inf
            dsecond = distances.min(axis=1)
        else:
            dsecond = np.full(n, np.inf)
        deltas = _swap_deltas(square, medoid_idx, nearest, dnearest, dsecond)
        swap = _select_swap(deltas)
        if swap is None:
            converged = True
            break
        medoids[swap[0]] = int(swap[1])

    nearest, cost = _assignment_cost(square, medoids)
    # Renumber labels by first appearance so results are comparable.
    remap: dict[int, int] = {}
    labels = []
    for value in nearest:
        value = int(value)
        if value not in remap:
            remap[value] = len(remap)
        labels.append(remap[value])
    ordered_medoids = [medoids[old] for old in sorted(remap, key=remap.get)]
    return KMedoidsResult(
        labels=labels,
        medoids=ordered_medoids,
        cost=cost,
        iterations=iterations,
        converged=converged,
    )
