"""Agglomerative hierarchical clustering via nearest-neighbor chains.

The paper deliberately outputs a dissimilarity matrix rather than wiring
the protocol to one algorithm: "The main advantage of our method is its
generality in applicability to different clustering methods such as
hierarchical clustering" (Section 6).  This module is the hierarchical
family: single, complete, average (UPGMA), weighted (WPGMA) and Ward
linkage, all driven purely by the matrix.

Every method is expressed through the Lance-Williams recurrence

    d(i∪j, k) = a_i·d(i,k) + a_j·d(j,k) + b·d(i,j) + g·|d(i,k) − d(j,k)|

(Ward works on squared distances with a final square root, matching the
convention of ``scipy.cluster.hierarchy.linkage``, against which the test
suite cross-validates merge heights and flat cuts.)

Algorithm
---------
The seed implementation (preserved in
:func:`repro.clustering.reference.reference_agglomerative`) re-scans a
dense n x n square for the global minimum before every merge: O(n^3)
time, O(n^2) full-square memory.  This module works **in place on the
condensed vector** (O(n^2/2) floats, the matrix's native storage) and
never materialises a square.  Two discovery strategies feed one shared
emission pass:

* **Nearest-neighbor chain** (Murtagh), the default: follow
  nearest-neighbor links until two clusters are mutually nearest, merge
  them, and keep the remaining chain -- valid because every supported
  method is *reducible* (merging two mutually-nearest clusters never
  brings any third cluster closer than their merge distance).  O(n^2)
  worst-case total work.
* **Cached-argmin replay**, used when the input contains duplicate
  distances: ties make the mutual-nearest-neighbor relation ambiguous,
  and NN-chain may legitimately resolve it differently from the seed's
  global argmin.  This path replays the seed's selection rule exactly
  (smallest ``(distance, i, j)`` key) with Anderberg-style per-row
  nearest-neighbor caches, typically O(n^2) -- only rows whose cached
  neighbor was consumed are rescanned.

NN-chain discovers merges out of height order, and its intermediate
Lance-Williams evaluations associate floats in discovery order, so a
canonicalization pass finishes the job: order the discovered merges by
the seed's argmin key (heap-Kahn over the cluster-dependency partial
order), then *replay* them on a fresh condensed copy so every update is
evaluated in the seed's association order.  The emitted dendrogram is
merge-for-merge identical to the seed's -- bit-equal heights included
(``tests/test_clustering_equivalence.py`` holds the layer to that; the
one reservation is adversarial inputs whose *distinct* distances
collide bitwise only after repeated update arithmetic, which no
condensed-time tie check can see).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.clustering.dendrogram import Dendrogram, Merge
from repro.distance.dissimilarity import (
    DissimilarityMatrix,
    condensed_has_duplicates,
    condensed_offsets,
    condensed_row_gather,
)
from repro.distance.store import CondensedStore
from repro.exceptions import ClusteringError
from repro.types import LinkageMethod


class _Workspace:
    """Condensed working state plus reusable buffers for the hot loops.

    Rows are read as a contiguous below-diagonal slice plus one strided
    above-diagonal gather, and merge updates are written back the same
    way *unmasked*: retired pairs' condensed slots receive stale garbage,
    which is safe because every reader either indexes active slots only
    or masks inactive entries to infinity afterwards.

    The working buffer is either a plain condensed ndarray (``condensed``
    is copied -- the dense path, bit-identical to the seed) or a
    :class:`~repro.distance.store.CondensedStore` working copy the
    workspace takes ownership of (the sharded path); the ``value_at`` /
    ``values_at`` / ``write_span`` / ``scatter`` helpers dispatch so the
    merge arithmetic -- which only ever sees gathered float64 rows -- is
    shared verbatim between both.
    """

    def __init__(self, condensed: np.ndarray | CondensedStore, n: int) -> None:
        self.n = n
        self.offsets = condensed_offsets(n)
        if isinstance(condensed, np.ndarray):
            self.working: np.ndarray | CondensedStore = condensed.copy()
            self._view: np.ndarray | None = self.working
        else:
            self.working = condensed
            self._view = condensed.array_view()
        self.active = np.ones(n, dtype=bool)
        self.sizes = np.ones(n, dtype=np.int64)
        # inf where retired, 0.0 where active: adding it to a gathered row
        # masks retired slots without allocating a boolean inverse.
        self.inactive_inf = np.zeros(n, dtype=np.float64)
        self._row_i = np.empty(n, dtype=np.float64)
        self._row_j = np.empty(n, dtype=np.float64)
        self._delta = np.empty(n, dtype=np.float64)
        self._tail = np.empty(n, dtype=np.int64)

    def _tail_positions(self, index: int) -> np.ndarray:
        tail = self._tail[: self.n - index - 1]
        np.add(self.offsets[index + 1 :], index, out=tail)
        return tail

    def value_at(self, position: int) -> float:
        """One condensed working entry."""
        if self._view is not None:
            return float(self._view[position])
        return float(self.working.read(position, position + 1)[0])

    def values_at(self, positions: np.ndarray) -> np.ndarray:
        """Working entries at ``positions`` (the Anderberg column reads)."""
        if self._view is not None:
            return self._view[positions]
        return self.working.gather(positions)

    def write_span(self, start: int, values: np.ndarray) -> None:
        if self._view is not None:
            self._view[start : start + values.size] = values
        else:
            self.working.write(start, values)

    def scatter(self, positions: np.ndarray, values: np.ndarray) -> None:
        if self._view is not None:
            self._view[positions] = values
        else:
            self.working.scatter(positions, values)

    def close(self) -> None:
        """Release an owned working store (no-op on the dense path)."""
        if isinstance(self.working, CondensedStore):
            self.working.close()

    def gather_row(self, index: int, out: np.ndarray) -> np.ndarray:
        """Row ``index`` of the square, read off the condensed vector
        (diagonal entry fixed at 0.0)."""
        return condensed_row_gather(
            self.working, index, self.n, self.offsets, out=out, scratch=self._tail
        )

    def merge(self, i: int, j: int, method: LinkageMethod) -> float:
        """Merge slot ``j`` into slot ``i`` (``i < j``) in place.

        One Lance-Williams row update against every other cluster,
        evaluated with the seed loop's exact per-element operations (and
        operand order) so the produced values are bit-identical to a
        seed run performing the same merges in the same order.  Returns
        the raw merge height (squared scale for Ward).
        """
        sizes = self.sizes
        height = self.value_at(int(self.offsets[j]) + i)
        d_ik = self.gather_row(i, self._row_i)
        d_jk = self.gather_row(j, self._row_j)

        size_i = int(sizes[i])
        size_j = int(sizes[j])
        if method is LinkageMethod.SINGLE or method is LinkageMethod.COMPLETE:
            sign = -0.5 if method is LinkageMethod.SINGLE else 0.5
            delta = np.subtract(d_ik, d_jk, out=self._delta)
            np.abs(delta, out=delta)
            delta *= sign
            updated = np.multiply(d_ik, 0.5, out=d_ik)
            updated += np.multiply(d_jk, 0.5, out=d_jk)
            updated += delta
        elif method is LinkageMethod.AVERAGE:
            total = float(size_i + size_j)
            updated = np.multiply(d_ik, size_i / total, out=d_ik)
            updated += np.multiply(d_jk, size_j / total, out=d_jk)
        elif method is LinkageMethod.WEIGHTED:
            updated = np.multiply(d_ik, 0.5, out=d_ik)
            updated += np.multiply(d_jk, 0.5, out=d_jk)
        elif method is LinkageMethod.WARD:
            size_k = sizes.astype(np.float64)
            total = size_i + size_j + size_k
            updated = ((size_i + size_k) / total) * d_ik
            updated += ((size_j + size_k) / total) * d_jk
            updated += (-size_k / total) * height
        else:
            raise ClusteringError(f"unsupported linkage method: {method}")

        # Unmasked write-back: the diagonal entry has no condensed slot,
        # and retired pairs' slots may take garbage (never read again).
        start = int(self.offsets[i])
        self.write_span(start, updated[:i])
        if i + 1 < self.n:
            self.scatter(self._tail_positions(i), updated[i + 1 :])
        self.active[j] = False
        self.inactive_inf[j] = np.inf
        sizes[i] = size_i + size_j
        sizes[j] = 0
        return height


def _nn_chain_pairs(
    workspace: _Workspace, method: LinkageMethod
) -> list[tuple[int, int, float]]:
    """NN-chain discovery pass, mutating the workspace in place.

    Returns the discovered merges in chronological order as
    ``(rep_i, rep_j, raw_height)`` with ``rep_i < rep_j``; representatives
    are minimum leaf indices (the merged cluster keeps the smaller slot,
    mirroring the seed loop's bookkeeping).
    """
    n = workspace.n
    active = workspace.active
    row = np.empty(n, dtype=np.float64)
    chain: list[int] = []
    merges: list[tuple[int, int, float]] = []

    for _ in range(n - 1):
        if not chain:
            chain.append(int(np.argmax(active)))  # smallest active index
        while True:
            x = chain[-1]
            workspace.gather_row(x, row)
            row += workspace.inactive_inf
            row[x] = np.inf
            if len(chain) > 1:
                y = chain[-2]
                best = row[y]
            else:
                y = -1
                best = np.inf
            candidate = int(np.argmin(row))
            # Ties prefer the chain predecessor, guaranteeing progress:
            # the chain only extends on a strict improvement.
            if row[candidate] < best:
                y = candidate
            if len(chain) > 1 and y == chain[-2]:
                break
            chain.append(y)

        # x and y are mutually nearest: merge, keep the remaining chain.
        chain.pop()
        chain.pop()
        i, j = (x, y) if x < y else (y, x)
        height = workspace.merge(i, j, method)
        merges.append((i, j, height))

    return merges


def _argmin_pairs(
    workspace: _Workspace, method: LinkageMethod
) -> list[tuple[int, int, float]]:
    """Exact seed-order discovery: global argmin with per-row NN caches.

    ``nn_distance[i]`` / ``nn_partner[i]`` cache the smallest distance
    from cluster ``i`` to any active cluster ``j > i`` (smallest such
    ``j`` on ties), so the global minimum pair under the seed's
    ``(distance, i, j)`` key is one O(n) argmin per step.  After a merge
    only the merged row and rows whose cached partner was touched are
    rescanned (Anderberg's scheme); everything else is a vectorized
    compare-and-update against the freshly written column.  Because this
    path discovers merges in the seed's chronological order, its heights
    are already bit-identical to the seed's -- no replay needed.
    """
    n = workspace.n
    offsets = workspace.offsets
    active = workspace.active
    nn_distance = np.full(n, np.inf)
    nn_partner = np.full(n, -1, dtype=np.int64)

    def rescan(row: int) -> None:
        partners = np.flatnonzero(active[row + 1 :]) + row + 1
        if partners.size == 0:
            nn_distance[row] = np.inf
            nn_partner[row] = -1
            return
        values = workspace.values_at(offsets[partners] + row)
        best = int(np.argmin(values))
        nn_distance[row] = values[best]
        nn_partner[row] = int(partners[best])

    for row in range(n - 1):
        rescan(row)

    merges: list[tuple[int, int, float]] = []
    for _ in range(n - 1):
        i = int(np.argmin(nn_distance))
        j = int(nn_partner[i])
        height = workspace.merge(i, j, method)
        merges.append((i, j, height))
        nn_distance[j] = np.inf
        nn_partner[j] = -1
        if i > 0:
            rows = np.flatnonzero(active[:i])
            fresh = workspace.values_at(offsets[i] + rows)
            cached_partner = nn_partner[rows]
            stale = (cached_partner == i) | (cached_partner == j)
            better = ~stale & (
                (fresh < nn_distance[rows])
                | ((fresh == nn_distance[rows]) & (i < cached_partner))
            )
            nn_distance[rows[better]] = fresh[better]
            nn_partner[rows[better]] = i
            for row in rows[stale]:
                rescan(int(row))
        # Rows between i and j never pair with slot i (partners are always
        # larger than the row), but lose slot j from their partner set.
        between = np.flatnonzero(active[i + 1 : j]) + i + 1
        for row in between[nn_partner[between] == j]:
            rescan(int(row))
        rescan(i)

    return merges


def _canonical_order(
    raw_merges: list[tuple[int, int, float]]
) -> list[tuple[int, int]]:
    """Order discovered merges by the seed loop's deterministic rule.

    Emits the ready merge (both operand clusters formed) with the
    smallest ``(raw_height, rep_i, rep_j)`` key -- the seed's global
    argmin selection restricted to the discovered merge set.  Dependency
    tracking is by representative: merges touching the same cluster
    representative must replay in discovery order.
    """
    touching: dict[int, list[int]] = {}
    for step, (rep_i, rep_j, _) in enumerate(raw_merges):
        touching.setdefault(rep_i, []).append(step)
        touching.setdefault(rep_j, []).append(step)
    frontier = {rep: 0 for rep in touching}

    def ready(step: int) -> bool:
        rep_i, rep_j, _ = raw_merges[step]
        return (
            touching[rep_i][frontier[rep_i]] == step
            and touching[rep_j][frontier[rep_j]] == step
        )

    heap: list[tuple[float, int, int, int]] = []
    for step, (rep_i, rep_j, height) in enumerate(raw_merges):
        if ready(step):
            heapq.heappush(heap, (height, rep_i, rep_j, step))

    ordered: list[tuple[int, int]] = []
    while heap:
        _, rep_i, rep_j, step = heapq.heappop(heap)
        ordered.append((rep_i, rep_j))
        frontier[rep_i] += 1
        frontier[rep_j] += 1
        # rep_j is consumed; only rep_i can unlock a successor merge.
        queue = touching[rep_i]
        if frontier[rep_i] < len(queue):
            successor = queue[frontier[rep_i]]
            if ready(successor):
                si, sj, sh = raw_merges[successor]
                heapq.heappush(heap, (sh, si, sj, successor))
    return ordered


def _replay(
    workspace: _Workspace,
    method: LinkageMethod,
    ordered_pairs: list[tuple[int, int]],
) -> list[tuple[int, int, float]]:
    """Re-apply ordered merges on a fresh workspace.

    The replay exists for bit-equality: Lance-Williams updates associate
    floats in evaluation order, so heights must be produced by applying
    the merges in their final (canonical) order -- exactly what the seed
    loop does -- not in NN-chain discovery order.
    """
    return [
        (i, j, workspace.merge(i, j, method)) for i, j in ordered_pairs
    ]


def _spawn_working(
    source: CondensedStore, method: LinkageMethod
) -> CondensedStore:
    """Pristine working copy of a sharded condensed vector.

    The working store gets a cache budget covering every block: the merge
    loop revisits all rows constantly, and an undersized cache would turn
    each row gather into a munmap/remap refault storm.  Peak RSS for the
    sharded linkage path is therefore ~one condensed triangle (plus O(n)
    buffers) -- half the square-matrix footprint, and the source matrix's
    own cache budget still holds for every other consumer.
    """
    working = source.spawn(
        source.size,
        cache_bytes=source.size * 8 + source.block_entries * 8,
    )
    for start, stop in source.block_ranges():
        block = source.read(start, stop)
        if method is LinkageMethod.WARD:
            block = block ** 2
        working.write(start, block)
    return working


def _emit(
    chronological: list[tuple[int, int, float]], n: int, method: LinkageMethod
) -> list[Merge]:
    """Turn ``(rep_i, rep_j, raw_height)`` triples into numbered Merges."""
    node_of = np.arange(n, dtype=np.int64)
    leaf_count = np.ones(n, dtype=np.int64)
    merges: list[Merge] = []
    for step, (i, j, raw_height) in enumerate(chronological):
        height = (
            float(np.sqrt(raw_height))
            if method is LinkageMethod.WARD
            else float(raw_height)
        )
        merges.append(
            Merge(
                left=int(node_of[i]),
                right=int(node_of[j]),
                height=height,
                size=int(leaf_count[i] + leaf_count[j]),
            )
        )
        node_of[i] = n + step
        leaf_count[i] += leaf_count[j]
    return merges


def agglomerative(
    matrix: DissimilarityMatrix,
    method: LinkageMethod | str = LinkageMethod.AVERAGE,
) -> Dendrogram:
    """Cluster a dissimilarity matrix bottom-up into a full dendrogram.

    O(n^2) time via nearest-neighbor chains over the condensed vector
    (cached-argmin replay for tied inputs); deterministic, and
    merge-for-merge identical to the preserved seed implementation (ties
    break by the smallest flat square index), so two runs on equal
    inputs produce identical trees -- a property the zero-accuracy-loss
    experiments rely on.
    """
    if isinstance(method, str):
        try:
            method = LinkageMethod(method)
        except ValueError:
            raise ClusteringError(f"unknown linkage method {method!r}") from None
    n = matrix.num_objects
    if n == 1:
        return Dendrogram(1, [])

    values = matrix.store.array_view()
    if values is not None:
        condensed = np.array(values, dtype=np.float64)
        if method is LinkageMethod.WARD:
            condensed = condensed ** 2
        ordered_values = np.sort(condensed)
        has_ties = bool(np.any(ordered_values[1:] == ordered_values[:-1]))

        def make() -> _Workspace:
            return _Workspace(condensed, n)

    else:
        ready = [_spawn_working(matrix.store, method)]
        has_ties = condensed_has_duplicates(ready[0])

        def make() -> _Workspace:
            working = ready.pop() if ready else _spawn_working(matrix.store, method)
            return _Workspace(working, n)

    if has_ties:
        workspace = make()
        chronological = _argmin_pairs(workspace, method)
        workspace.close()
    else:
        workspace = make()
        discovered = _nn_chain_pairs(workspace, method)
        workspace.close()
        workspace = make()
        chronological = _replay(workspace, method, _canonical_order(discovered))
        workspace.close()
    return Dendrogram(n, _emit(chronological, n, method))
