"""Agglomerative hierarchical clustering via Lance-Williams updates.

The paper deliberately outputs a dissimilarity matrix rather than wiring
the protocol to one algorithm: "The main advantage of our method is its
generality in applicability to different clustering methods such as
hierarchical clustering" (Section 6).  This module is the hierarchical
family: single, complete, average (UPGMA), weighted (WPGMA) and Ward
linkage, all driven purely by the matrix.

Every method is expressed through the Lance-Williams recurrence

    d(i∪j, k) = a_i·d(i,k) + a_j·d(j,k) + b·d(i,j) + g·|d(i,k) − d(j,k)|

(Ward works on squared distances with a final square root, matching the
convention of ``scipy.cluster.hierarchy.linkage``, against which the test
suite cross-validates merge heights and flat cuts.)
"""

from __future__ import annotations

import numpy as np

from repro.clustering.dendrogram import Dendrogram, Merge
from repro.distance.dissimilarity import DissimilarityMatrix
from repro.exceptions import ClusteringError
from repro.types import LinkageMethod


def _coefficients(
    method: LinkageMethod, size_i: int, size_j: int, size_k: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Lance-Williams coefficients (a_i, a_j, b, g) against every k."""
    ones = np.ones_like(size_k, dtype=np.float64)
    if method is LinkageMethod.SINGLE:
        return 0.5 * ones, 0.5 * ones, 0.0 * ones, -0.5
    if method is LinkageMethod.COMPLETE:
        return 0.5 * ones, 0.5 * ones, 0.0 * ones, 0.5
    if method is LinkageMethod.AVERAGE:
        total = float(size_i + size_j)
        return (size_i / total) * ones, (size_j / total) * ones, 0.0 * ones, 0.0
    if method is LinkageMethod.WEIGHTED:
        return 0.5 * ones, 0.5 * ones, 0.0 * ones, 0.0
    if method is LinkageMethod.WARD:
        total = size_i + size_j + size_k.astype(np.float64)
        return (
            (size_i + size_k) / total,
            (size_j + size_k) / total,
            -size_k / total,
            0.0,
        )
    raise ClusteringError(f"unsupported linkage method: {method}")


def agglomerative(
    matrix: DissimilarityMatrix,
    method: LinkageMethod | str = LinkageMethod.AVERAGE,
) -> Dendrogram:
    """Cluster a dissimilarity matrix bottom-up into a full dendrogram.

    Deterministic: ties are broken by the smallest flat index, so two runs
    on equal inputs produce identical trees -- a property the
    zero-accuracy-loss experiments rely on.
    """
    if isinstance(method, str):
        try:
            method = LinkageMethod(method)
        except ValueError:
            raise ClusteringError(f"unknown linkage method {method!r}") from None
    n = matrix.num_objects
    if n == 1:
        return Dendrogram(1, [])

    working = matrix.to_square()
    if method is LinkageMethod.WARD:
        working = working ** 2

    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)
    node_ids = np.arange(n, dtype=np.int64)
    np.fill_diagonal(working, np.inf)
    inactive_fill = np.inf

    merges: list[Merge] = []
    for step in range(n - 1):
        flat = np.argmin(working)
        i, j = np.unravel_index(flat, working.shape)
        if i > j:
            i, j = j, i
        height = float(working[i, j])
        if method is LinkageMethod.WARD:
            height = float(np.sqrt(height))

        others = active.copy()
        others[i] = others[j] = False
        a_i, a_j, b, g = _coefficients(
            method, int(sizes[i]), int(sizes[j]), sizes[others]
        )
        d_ik = working[i, others]
        d_jk = working[j, others]
        d_ij = working[i, j]
        updated = a_i * d_ik + a_j * d_jk + b * d_ij + g * np.abs(d_ik - d_jk)

        merges.append(
            Merge(
                left=int(node_ids[i]),
                right=int(node_ids[j]),
                height=height,
                size=int(sizes[i] + sizes[j]),
            )
        )

        # Slot i becomes the merged cluster; slot j is retired.
        working[i, others] = updated
        working[others, i] = updated
        working[i, i] = np.inf
        working[j, :] = inactive_fill
        working[:, j] = inactive_fill
        sizes[i] = sizes[i] + sizes[j]
        sizes[j] = 0
        node_ids[i] = n + step
        active[j] = False

    return Dendrogram(n, merges)
